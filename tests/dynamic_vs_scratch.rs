//! Incremental maintenance must equal from-scratch computation: after any
//! number of slides, the maintained estimate and a fresh engine fed the
//! final window as one batch are both ε-close to the same exact vector.

use dppr::core::{
    exact_ppr, DynamicPprEngine, ParallelEngine, PprConfig, PushVariant,
};
use dppr::graph::presets;
use dppr::graph::{DynamicGraph, EdgeUpdate};
use dppr::stream::{pick_top_degree_source, StreamDriver};

#[test]
fn dynamic_equals_scratch_on_directed_stream() {
    let ds = presets::toy();
    let eps = 1e-4;

    // Incremental run.
    let mut driver = StreamDriver::new(ds.stream(9), 0.2);
    // Source choice requires the warmed window.
    let mut probe = DynamicGraph::new();
    {
        let w = dppr::graph::SlidingWindow::new(ds.stream(9), 0.2);
        for u in w.initial_updates() {
            probe.apply(u);
        }
    }
    let source = pick_top_degree_source(&probe, 5, 3);
    let cfg = PprConfig::new(source, 0.15, eps);
    let mut dynamic = ParallelEngine::new(cfg, PushVariant::OPT);
    driver.bootstrap(&mut dynamic);
    driver.run_slides(&mut dynamic, 20, 15);

    // From-scratch run on the final window content.
    let mut scratch = ParallelEngine::new(cfg, PushVariant::OPT);
    let mut g2 = DynamicGraph::new();
    let batch: Vec<EdgeUpdate> = driver
        .window()
        .window_edges()
        .map(|(u, v)| EdgeUpdate::insert(u, v))
        .collect();
    scratch.apply_batch(&mut g2, &batch);

    assert_eq!(driver.graph().num_edges(), g2.num_edges());
    let truth = exact_ppr(driver.graph(), source, 0.15, 1e-13);
    let n = driver.graph().num_vertices().max(g2.num_vertices());
    for v in 0..n as u32 {
        let t = truth.get(v as usize).copied().unwrap_or(0.0);
        assert!(
            (dynamic.estimate(v) - t).abs() <= eps + 1e-10,
            "dynamic err at {v}"
        );
        assert!(
            (scratch.estimate(v) - t).abs() <= eps + 1e-10,
            "scratch err at {v}"
        );
    }
}

#[test]
fn dynamic_equals_scratch_on_undirected_stream() {
    let ds = presets::small_sim(); // undirected preset
    let eps = 1e-4;
    let mut probe = DynamicGraph::new();
    {
        let w = dppr::graph::SlidingWindow::new(ds.stream(4), 0.1);
        for u in w.initial_updates() {
            probe.apply(u);
        }
    }
    let source = pick_top_degree_source(&probe, 10, 8);
    let cfg = PprConfig::new(source, 0.15, eps);

    let mut driver = StreamDriver::new(ds.stream(4), 0.1);
    let mut dynamic = ParallelEngine::new(cfg, PushVariant::OPT);
    driver.bootstrap(&mut dynamic);
    driver.run_slides(&mut dynamic, 100, 8);

    // Window edges expand to both arcs in the rebuilt batch.
    let mut scratch = ParallelEngine::new(cfg, PushVariant::OPT);
    let mut g2 = DynamicGraph::new();
    let mut batch = Vec::new();
    for (u, v) in driver.window().window_edges() {
        batch.push(EdgeUpdate::insert(u, v));
        batch.push(EdgeUpdate::insert(v, u));
    }
    scratch.apply_batch(&mut g2, &batch);

    assert_eq!(driver.graph().num_edges(), g2.num_edges());
    let truth = exact_ppr(driver.graph(), source, 0.15, 1e-13);
    for (v, &t) in truth.iter().enumerate() {
        assert!((dynamic.estimate(v as u32) - t).abs() <= eps + 1e-10);
        assert!((scratch.estimate(v as u32) - t).abs() <= eps + 1e-10);
    }
}
