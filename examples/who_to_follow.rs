//! "Who to follow": PPR-based user recommendation on an evolving social
//! network (the application of Gupta et al., WWW'13 — reference [19] of the
//! paper — reproduced at laptop scale).
//!
//! Maintains PPR vectors for a handful of hub users while follow/unfollow
//! events stream in, and recommends the highest-PPR non-neighbors.
//!
//! ```text
//! cargo run --release --example who_to_follow
//! ```

use dppr::core::multi::MultiSourcePpr;
use dppr::core::PushVariant;
use dppr::graph::generators::{barabasi_albert, undirected_to_directed};
use dppr::graph::{DynamicGraph, EdgeUpdate, GraphStream, SlidingWindow};

fn recommend(
    multi: &MultiSourcePpr,
    idx: usize,
    user: u32,
    g: &DynamicGraph,
    k: usize,
) -> Vec<(u32, f64)> {
    // Highest-PPR vertices the user does not already follow.
    multi
        .top_k(idx, k + 1 + g.out_degree(user))
        .into_iter()
        .filter(|&(v, _)| v != user && !g.has_edge(user, v))
        .take(k)
        .collect()
}

fn main() {
    // A follower graph: preferential attachment gives the usual celebrity
    // hubs. Undirected friendship edges become two follow arcs.
    // DPPR_EXAMPLE_N shrinks the graph (the CI smoke test runs tiny).
    let n: u32 = match std::env::var("DPPR_EXAMPLE_N") {
        Ok(s) => s.parse().expect("DPPR_EXAMPLE_N must be a vertex count"),
        Err(_) => 3_000,
    };
    let edges = undirected_to_directed(&barabasi_albert(n, 5, 99));
    let stream = GraphStream::directed(edges).permuted(1);
    let mut window = SlidingWindow::new(stream, 0.2);

    let mut graph = DynamicGraph::new();
    // Warm the graph with the initial window (no PPR yet — we choose the
    // tracked users from the warmed topology).
    let init = window.initial_updates();
    for upd in &init {
        graph.apply(*upd);
    }
    let hubs = graph.top_out_degree_vertices(3);
    println!("tracking PPR for hub users {hubs:?}");

    // Track the hubs' PPR vectors; replay the window so their state covers
    // the current graph (bootstrapping from an empty graph is exact).
    let mut fresh = DynamicGraph::new();
    let mut multi = MultiSourcePpr::new(&hubs, 0.15, 1e-5, PushVariant::OPT);
    multi.apply_batch(&mut fresh, &init);
    let mut graph = fresh;

    // Follow/unfollow events arrive in batches of 200.
    let mut slides = 0;
    while let Some(batch) = window.slide(200) {
        multi.apply_batch(&mut graph, &batch);
        slides += 1;
        if slides == 10 {
            break;
        }
    }
    println!(
        "processed {slides} batches; graph now has {} arcs over {} vertices\n",
        graph.num_edges(),
        graph.num_vertices()
    );

    for (idx, &user) in hubs.iter().enumerate() {
        let recs = recommend(&multi, idx, user, &graph, 5);
        println!("user {user} (follows {}):", graph.out_degree(user));
        for (v, score) in recs {
            println!("  follow {v:>5}?  ppr {score:.6}");
        }
    }

    // Events keep arriving: a burst of unfollows for the top hub, then
    // fresh recommendations — all incremental, no recomputation.
    let top_hub = hubs[0];
    let victims: Vec<EdgeUpdate> = graph
        .out_neighbors(top_hub)
        .iter()
        .take(10)
        .map(|&v| EdgeUpdate::delete(top_hub, v))
        .collect();
    multi.apply_batch(&mut graph, &victims);
    println!(
        "\nafter user {top_hub} unfollowed {} accounts:",
        victims.len()
    );
    for (v, score) in recommend(&multi, 0, top_hub, &graph, 5) {
        println!("  follow {v:>5}?  ppr {score:.6}");
    }
}
