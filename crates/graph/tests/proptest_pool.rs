//! Equivalence suite for the adjacency-pool substrate.
//!
//! Drives a random insert/delete/query script, in batches, against three
//! [`DynamicGraph`] configurations — the default degree-adaptive store, a
//! tiny-threshold store (so the hub hash path is exercised on small random
//! graphs), and the linear-scan bench baseline — and checks every one of
//! them after every batch against a trivial `HashSet<(u, v)>` model:
//! return values, edge set, degrees, neighbor multisets, `num_edges`,
//! `active_vertices`, `inv_dout == 1/dout` for every vertex, membership
//! queries over the full id square, and `check_consistency`.

use dppr_graph::{DynamicGraph, EdgeOp, EdgeUpdate, VertexId};
use proptest::prelude::*;
use std::collections::HashSet;

const N: u32 = 16;

fn update_script(n: u32, len: usize) -> impl Strategy<Value = Vec<EdgeUpdate>> {
    prop::collection::vec(
        (0..n, 0..n, prop::bool::weighted(0.7)).prop_map(|(u, v, ins)| EdgeUpdate {
            src: u,
            dst: v,
            op: if ins { EdgeOp::Insert } else { EdgeOp::Delete },
        }),
        len,
    )
}

/// The reference: a plain set of directed edges.
#[derive(Default)]
struct ModelGraph {
    edges: HashSet<(VertexId, VertexId)>,
}

impl ModelGraph {
    fn apply(&mut self, upd: EdgeUpdate) -> bool {
        if upd.src == upd.dst {
            return false;
        }
        match upd.op {
            EdgeOp::Insert => self.edges.insert((upd.src, upd.dst)),
            EdgeOp::Delete => self.edges.remove(&(upd.src, upd.dst)),
        }
    }

    fn out_degree(&self, u: VertexId) -> usize {
        self.edges.iter().filter(|&&(a, _)| a == u).count()
    }

    fn in_degree(&self, v: VertexId) -> usize {
        self.edges.iter().filter(|&&(_, b)| b == v).count()
    }

    fn active_vertices(&self) -> usize {
        let mut touched: HashSet<VertexId> = HashSet::new();
        for &(u, v) in &self.edges {
            touched.insert(u);
            touched.insert(v);
        }
        touched.len()
    }
}

/// Full cross-check of one graph against the model.
fn assert_matches_model(g: &DynamicGraph, model: &ModelGraph) -> Result<(), TestCaseError> {
    g.check_consistency().map_err(TestCaseError::fail)?;
    prop_assert_eq!(g.num_edges(), model.edges.len());
    prop_assert_eq!(g.active_vertices(), model.active_vertices());

    let mut actual: Vec<_> = g.edges().collect();
    actual.sort_unstable();
    let mut expect: Vec<_> = model.edges.iter().copied().collect();
    expect.sort_unstable();
    prop_assert_eq!(actual, expect);

    // Query every pair in the id square (ids beyond the allocated vertex
    // set included), plus per-vertex degree and reciprocal bookkeeping.
    for u in 0..N + 2 {
        for v in 0..N + 2 {
            prop_assert_eq!(
                g.has_edge(u, v),
                model.edges.contains(&(u, v)),
                "membership of ({}, {})",
                u,
                v
            );
        }
        let dout = model.out_degree(u);
        prop_assert_eq!(g.out_degree(u), dout);
        prop_assert_eq!(g.in_degree(u), model.in_degree(u));
        let inv = if dout == 0 { 0.0 } else { 1.0 / dout as f64 };
        // Exact bit equality: inv_dout is defined as literally 1.0/dout.
        prop_assert_eq!(g.inv_out_degree(u), inv, "inv_dout at {}", u);

        // Neighbor multisets (the graphs are simple, so sorted vectors).
        let mut outs = g.out_neighbors(u).to_vec();
        outs.sort_unstable();
        let mut want_outs: Vec<VertexId> = model
            .edges
            .iter()
            .filter(|&&(a, _)| a == u)
            .map(|&(_, b)| b)
            .collect();
        want_outs.sort_unstable();
        prop_assert_eq!(outs, want_outs, "out-neighbors of {}", u);

        let mut ins = g.in_neighbors(u).to_vec();
        ins.sort_unstable();
        let mut want_ins: Vec<VertexId> = model
            .edges
            .iter()
            .filter(|&&(_, b)| b == u)
            .map(|&(a, _)| a)
            .collect();
        want_ins.sort_unstable();
        prop_assert_eq!(ins, want_ins, "in-neighbors of {}", u);
    }
    Ok(())
}

proptest! {
    // Case count pinned (the stub runner is already seed-deterministic)
    // so tier-1 wall time is stable in CI.
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Every store configuration behaves exactly like the set model under
    /// arbitrary batched scripts.
    #[test]
    fn pool_store_matches_set_model(script in update_script(N, 240)) {
        let mut graphs = [
            DynamicGraph::new(),                  // default threshold
            DynamicGraph::with_dup_threshold(3),  // hub path on tiny degrees
            DynamicGraph::new_linear_scan(),      // bench baseline
        ];
        let mut model = ModelGraph::default();
        for batch in script.chunks(24) {
            for &upd in batch {
                let want = model.apply(upd);
                for g in &mut graphs {
                    prop_assert_eq!(g.apply(upd), want, "return value on {:?}", upd);
                }
            }
            for g in &graphs {
                assert_matches_model(g, &model)?;
            }
        }
    }

    /// `top_out_degree_vertices` (select_nth path) agrees with a naive
    /// full sort for every k, including k = 0, ties, and k > n.
    #[test]
    fn top_out_degree_matches_naive_sort(
        script in update_script(N, 120),
        k in 0usize..20,
    ) {
        let mut g = DynamicGraph::new();
        for upd in script {
            g.apply(upd);
        }
        let mut ids: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
        ids.sort_by(|&a, &b| {
            g.out_degree(b).cmp(&g.out_degree(a)).then(a.cmp(&b))
        });
        ids.truncate(k);
        prop_assert_eq!(g.top_out_degree_vertices(k), ids);
    }

    /// Interleaved growth forces span relocation and arena compaction;
    /// aggregates and adjacency must survive both.
    #[test]
    fn relocation_stress_preserves_equivalence(
        seed in 0u64..500,
        rounds in 8usize..40,
    ) {
        let mut g = DynamicGraph::with_dup_threshold(4);
        let mut model = ModelGraph::default();
        let n = 24u32;
        let mut x = seed;
        for _ in 0..rounds {
            for u in 0..n {
                // xorshift-ish deterministic churn
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let v = (x % n as u64) as u32;
                let del = x % 11 == 0;
                let upd = if del {
                    EdgeUpdate::delete(u, v)
                } else {
                    EdgeUpdate::insert(u, v)
                };
                prop_assert_eq!(g.apply(upd), model.apply(upd));
            }
        }
        g.check_consistency().map_err(TestCaseError::fail)?;
        prop_assert_eq!(g.num_edges(), model.edges.len());
        prop_assert_eq!(g.active_vertices(), model.active_vertices());
        for u in 0..n {
            let dout = model.out_degree(u);
            prop_assert_eq!(g.out_degree(u), dout);
            let inv = if dout == 0 { 0.0 } else { 1.0 / dout as f64 };
            prop_assert_eq!(g.inv_out_degree(u), inv);
        }
    }
}
