//! Figure 4 — effect of the push optimizations.
//!
//! Runs the four parallel-push variants of Table 3 (`Opt`, `Eager`,
//! `DupDetect`, `Vanilla`) over each dataset's sliding window and reports
//! the average slide latency, mirroring the paper's bar chart. The paper
//! observes ~2.5× between `Opt` and `Vanilla` on the larger graphs, with
//! each optimization contributing.
//!
//! Usage: `fig4_optimizations [--full]`

use dppr_bench::{ms, run_engine, EngineKind, ExperimentScale, Workload};
use dppr_core::PushVariant;
use std::time::Duration;

fn main() {
    let scale = ExperimentScale::from_args();
    let (batch, budget) = match scale {
        ExperimentScale::Quick => (1_000usize, Duration::from_secs(3)),
        ExperimentScale::Full => (10_000usize, Duration::from_secs(20)),
    };
    println!("# Figure 4: effect of optimizations (mean slide latency, batch = {batch})");
    println!("dataset\tvariant\tslides\tmean_ms\tpushes\ttraversals\tspeedup_vs_vanilla");
    for ds in scale.datasets() {
        let eps = ds.default_epsilon;
        let workload = Workload::prepare(ds, 1, 0.1, 10);
        let mut vanilla_ms = None;
        // Vanilla first so the speedup column can reference it.
        for variant in [
            PushVariant::VANILLA,
            PushVariant::DUP_DETECT,
            PushVariant::EAGER,
            PushVariant::OPT,
        ] {
            let summary = run_engine(
                EngineKind::CpuMt(variant),
                &workload,
                eps,
                batch,
                scale.slides(),
                budget,
            );
            let mean = ms(summary.mean_latency());
            if variant == PushVariant::VANILLA {
                vanilla_ms = Some(mean);
            }
            let c = summary.total_counters();
            println!(
                "{}\t{}\t{}\t{:.3}\t{}\t{}\t{:.2}",
                workload.name,
                variant,
                summary.slides,
                mean,
                c.pushes,
                c.edge_traversals,
                vanilla_ms.unwrap_or(mean) / mean.max(1e-9),
            );
        }
    }
}
