//! Criterion companion to Figure 5: per-slide latency of each engine at a
//! fixed batch size.

use criterion::{criterion_group, criterion_main, Criterion};
use dppr_bench::{build_engine, time_slides, EngineKind, Workload};
use dppr_core::PushVariant;
use dppr_graph::presets;

fn bench_engines(c: &mut Criterion) {
    let workload = Workload::prepare(presets::small_sim(), 2, 0.1, 1_000);
    let eps = 1e-5;
    let batch = 500usize;
    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    for kind in [
        EngineKind::CpuSeq,
        EngineKind::CpuMt(PushVariant::OPT),
        EngineKind::Ligra,
        EngineKind::MonteCarlo { walks_per_vertex: 2 },
    ] {
        let cfg = workload.config(eps);
        group.bench_function(kind.label(), |b| {
            b.iter_custom(|iters| {
                time_slides(
                    || build_engine(kind, cfg, workload.num_vertices, 2),
                    &workload,
                    batch,
                    iters,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
