//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small API-compatible shim instead (see `vendor/README.md`).
//! Unlike a pure sequential fake, the hot combinators (`for_each`, `map`,
//! `filter`, `fold`) really do fan out across OS threads via
//! [`std::thread::scope`] once the input is large enough to amortize
//! thread spawning; below [`PARALLEL_THRESHOLD`] they run inline, which
//! keeps the many small pushes in the test suites fast.
//!
//! Differences from real rayon that callers should know about:
//!
//! * There is no work-stealing pool: threads are spawned per call, so
//!   [`ThreadPool::install`] cannot cap the parallelism of shim
//!   combinators (it just runs the closure). The thread-scaling
//!   experiments are therefore flat until real rayon is swapped back in
//!   — the manifests keep the real crate's API so that swap is a
//!   one-line change once a registry is reachable.
//! * `fold` produces one accumulator per chunk (as real rayon produces
//!   one per split), so `fold(..).reduce(..)` call sites keep their
//!   semantics, including merge-order nondeterminism above the
//!   threshold.

use std::thread;

pub mod iter;
pub mod prelude;

pub use iter::ParIter;

/// Inputs shorter than this run inline; longer ones fan out. Chosen so
/// the per-call `thread::scope` cost (~tens of µs) stays well under 1% of
/// the chunk work for the workloads in `crates/bench`.
pub const PARALLEL_THRESHOLD: usize = 4096;

/// Number of worker threads a fanned-out call uses.
pub fn current_num_threads() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `a` and `b`, in parallel when both sides are worth it. Provided
/// for API compatibility; the shim always runs them on two threads.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        };
        (ra, rb)
    })
}

/// Stand-in for `rayon::ThreadPool`. Holds the requested thread count for
/// introspection but cannot cap shim combinators (see module docs).
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` on the calling thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Stand-in for `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type of [`ThreadPoolBuilder::build`]; the shim never fails.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error (unreachable in the rayon shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}
