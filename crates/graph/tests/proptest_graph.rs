//! Property-based tests for the graph substrate.

use dppr_graph::generators::{
    barabasi_albert, erdos_renyi, rmat, undirected_to_directed, RmatParams,
};
use dppr_graph::{CsrGraph, DynamicGraph, EdgeOp, EdgeUpdate, GraphStream, SlidingWindow};
use proptest::prelude::*;
use std::collections::HashSet;

fn update_script(n: u32, len: usize) -> impl Strategy<Value = Vec<EdgeUpdate>> {
    prop::collection::vec(
        (0..n, 0..n, prop::bool::ANY).prop_map(|(u, v, ins)| EdgeUpdate {
            src: u,
            dst: v,
            op: if ins { EdgeOp::Insert } else { EdgeOp::Delete },
        }),
        len,
    )
}

/// A reference graph implementation: a plain edge set.
#[derive(Default)]
struct ModelGraph {
    edges: HashSet<(u32, u32)>,
}

impl ModelGraph {
    fn apply(&mut self, upd: EdgeUpdate) -> bool {
        if upd.src == upd.dst {
            return false;
        }
        match upd.op {
            EdgeOp::Insert => self.edges.insert((upd.src, upd.dst)),
            EdgeOp::Delete => self.edges.remove(&(upd.src, upd.dst)),
        }
    }
}

proptest! {
    // Case count pinned (the stub runner is already seed-deterministic)
    // so tier-1 wall time is stable in CI.
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The dynamic graph behaves exactly like a set-of-edges model under
    /// arbitrary scripts.
    #[test]
    fn dynamic_graph_matches_set_model(script in update_script(24, 300)) {
        let mut g = DynamicGraph::new();
        let mut model = ModelGraph::default();
        for upd in script {
            let a = g.apply(upd);
            let b = model.apply(upd);
            prop_assert_eq!(a, b, "disagreement on {:?}", upd);
        }
        prop_assert_eq!(g.num_edges(), model.edges.len());
        let mut actual: Vec<_> = g.edges().collect();
        actual.sort_unstable();
        let mut expect: Vec<_> = model.edges.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(actual, expect);
        g.check_consistency().unwrap();
    }

    /// Degrees always equal adjacency lengths and sum to the edge count.
    #[test]
    fn degree_bookkeeping(script in update_script(16, 200)) {
        let mut g = DynamicGraph::new();
        for upd in script {
            g.apply(upd);
        }
        let out_sum: usize = (0..g.num_vertices() as u32).map(|v| g.out_degree(v)).sum();
        let in_sum: usize = (0..g.num_vertices() as u32).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
        for v in 0..g.num_vertices() as u32 {
            prop_assert_eq!(g.out_neighbors(v).len(), g.out_degree(v));
            prop_assert_eq!(g.in_neighbors(v).len(), g.in_degree(v));
        }
    }

    /// CSR snapshots are lossless and agree with the dynamic graph.
    #[test]
    fn csr_roundtrip(script in update_script(16, 150)) {
        let mut g = DynamicGraph::new();
        for upd in script {
            g.apply(upd);
        }
        let csr = CsrGraph::from_dynamic(&g);
        prop_assert_eq!(csr.num_edges(), g.num_edges());
        for v in 0..g.num_vertices() as u32 {
            prop_assert_eq!(csr.out_degree(v), g.out_degree(v));
            prop_assert_eq!(csr.in_degree(v), g.in_degree(v));
            for &w in csr.out_neighbors(v) {
                prop_assert!(g.has_edge(v, w));
            }
        }
        let back = csr.to_dynamic();
        let csr2 = CsrGraph::from_dynamic(&back);
        prop_assert_eq!(csr, csr2);
    }

    /// The in/out adjacency of every edge agrees (transpose symmetry).
    #[test]
    fn transpose_symmetry(script in update_script(16, 150)) {
        let mut g = DynamicGraph::new();
        for upd in script {
            g.apply(upd);
        }
        for (u, v) in g.edges() {
            prop_assert!(g.in_neighbors(v).contains(&u));
        }
        for v in 0..g.num_vertices() as u32 {
            for &u in g.in_neighbors(v) {
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    /// ER generators: requested size, simplicity, determinism, bounds.
    #[test]
    fn er_properties(n in 2u32..64, m in 0usize..400, seed in 0u64..1000) {
        let max = n as usize * (n as usize - 1);
        let edges = erdos_renyi(n, m, seed);
        prop_assert_eq!(edges.len(), m.min(max));
        let set: HashSet<_> = edges.iter().collect();
        prop_assert_eq!(set.len(), edges.len(), "duplicates");
        for &(u, v) in &edges {
            prop_assert!(u < n && v < n && u != v);
        }
        prop_assert_eq!(edges, erdos_renyi(n, m, seed));
    }

    /// BA generators: connectivity-ish (every vertex has degree ≥ m) and
    /// simplicity.
    #[test]
    fn ba_properties(n in 10u32..120, m in 1usize..5, seed in 0u64..100) {
        let edges = barabasi_albert(n, m, seed);
        let set: HashSet<_> = edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        prop_assert_eq!(set.len(), edges.len(), "parallel undirected edge");
        let g = DynamicGraph::from_edges(undirected_to_directed(&edges));
        for v in 0..n {
            prop_assert!(
                g.out_degree(v) >= m.min(n as usize - 1),
                "vertex {} degree {} < {}", v, g.out_degree(v), m
            );
        }
    }

    /// R-MAT: size, simplicity, vertex bounds, determinism.
    #[test]
    fn rmat_properties(scale in 3u32..10, m in 1usize..300, seed in 0u64..100) {
        let p = RmatParams::default();
        let edges = rmat(scale, m, p, seed);
        let n = 1u32 << scale;
        let set: HashSet<_> = edges.iter().collect();
        prop_assert_eq!(set.len(), edges.len());
        for &(u, v) in &edges {
            prop_assert!(u < n && v < n && u != v);
        }
        prop_assert_eq!(edges, rmat(scale, m, p, seed));
    }

    /// Sliding windows conserve edges: graph == window content after any
    /// number of slides, for both directed and undirected streams.
    #[test]
    fn window_conservation(
        n in 4u32..40,
        m in 20usize..200,
        k in 1usize..20,
        undirected in prop::bool::ANY,
        seed in 0u64..50,
    ) {
        let mut logical = erdos_renyi(n, m, seed);
        if undirected {
            // Undirected streams require logical edges to be distinct as
            // *unordered* pairs (see GraphStream docs).
            let mut seen = HashSet::new();
            logical.retain(|&(u, v)| seen.insert((u.min(v), u.max(v))));
        }
        let stream = if undirected {
            GraphStream::undirected(logical)
        } else {
            GraphStream::directed(logical)
        }
        .permuted(seed ^ 7);
        let mut w = SlidingWindow::new(stream, 0.3);
        let mut g = DynamicGraph::new();
        for upd in w.initial_updates() {
            g.apply(upd);
        }
        while let Some(batch) = w.slide(k) {
            for upd in batch {
                g.apply(upd);
            }
        }
        let mut have: Vec<_> = g.edges().collect();
        have.sort_unstable();
        let mut want: Vec<(u32, u32)> = Vec::new();
        for (u, v) in w.window_edges() {
            want.push((u, v));
            if undirected {
                want.push((v, u));
            }
        }
        want.sort_unstable();
        prop_assert_eq!(have, want);
    }
}
