//! Online accuracy auditing, the metrics time-series sampler, and SLO
//! burn-rate evaluation — one observer thread per instance.
//!
//! The paper's contract is `|π(v) − Ps(v)| ≤ ε` for every vertex at
//! every published epoch; this module *checks it in production* instead
//! of trusting the algebra. Every tick the observer:
//!
//! 1. (optionally) asks one write shard — round-robin — for an
//!    [`AuditJob`]: the shard's graph plus up to `--audit-sample` live
//!    sessions' published snapshots and live states, all captured
//!    between batches so they are mutually consistent. The observer
//!    then recomputes ground truth with the *sequential* Gauss–Jacobi
//!    solver ([`dppr_core::exact_ppr_seq`], so the audit never steals
//!    the rayon pool from the write path) and reports L1/L∞ error,
//!    top-k overlap, and the Eq. 2 invariant residual as
//!    `dppr_audit_*` metric families.
//! 2. samples selected counters, gauges, and windowed percentiles into
//!    the in-process time-series ring ([`dppr_obs::SeriesRing`],
//!    served by `GET /series`).
//! 3. evaluates the configured SLOs as fast/slow burn-rate windows
//!    over that series; a fast-window latency breach flips the shed
//!    flag the query path consults, and every breach shows up in
//!    `/metrics` (`dppr_slo_*`) and `/healthz`.
//!
//! The expensive ground-truth solve runs on the observer thread; the
//! write loop only pays for cloning state, which keeps audit overhead
//! on the serving path small and measurable (`dppr_audit_solve_seconds`
//! and the BENCH_10 on/off comparison quantify it).

use crate::server::{Control, Ctx, ServeConfig};
use crate::snapshot::QuerySnapshot;
use dppr_core::multi::top_k_of;
use dppr_core::{exact_ppr_seq, max_invariant_violation, PprState};
use dppr_graph::{DynamicGraph, VertexId};
use dppr_obs::{HistSnapshot, ProcessStats, SeriesRing};
use std::collections::HashSet;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Burn-rate window sizes in observer ticks. With the default 500ms
/// interval the fast window spans ~2.5s (page-now signal) and the slow
/// window ~30s (sustained-burn signal).
pub(crate) const FAST_TICKS: usize = 5;
pub(crate) const SLOW_TICKS: usize = 60;

/// Rows retained by the metrics time-series ring (~4 minutes at the
/// default tick).
const SERIES_CAP: usize = 512;

/// The fixed column set of the in-process time-series. Push order in
/// the observer must match this list.
pub(crate) const SERIES_NAMES: [&str; 13] = [
    "http_requests_total",
    "queries_total",
    "shed_total",
    "slides_total",
    "epoch",
    "sessions",
    "http_request_p50_seconds",
    "http_request_p99_seconds",
    "audit_linf_error",
    "audit_topk_overlap_10",
    "process_rss_bytes",
    "process_open_fds",
    "process_threads",
];

pub(crate) fn new_series_ring() -> SeriesRing {
    SeriesRing::new(SERIES_NAMES.to_vec(), SERIES_CAP)
}

// --- audit data flow ------------------------------------------------------

/// One session's audit inputs, captured by the owning write loop.
pub(crate) struct AuditSession {
    pub(crate) source: VertexId,
    /// The published snapshot readers are answering from.
    pub(crate) snapshot: Arc<QuerySnapshot>,
    /// The live `(Ps, Rs)` state, for the invariant residual.
    pub(crate) state: PprState,
}

/// What a write shard hands the observer: a consistent `(graph, epoch,
/// sessions)` capture taken between batches.
pub(crate) struct AuditJob {
    pub(crate) epoch: u64,
    pub(crate) graph: DynamicGraph,
    pub(crate) sessions: Vec<AuditSession>,
}

/// Lock-free f64 cell (bit-cast through an `AtomicU64`).
pub(crate) struct F64Cell(AtomicU64);

impl F64Cell {
    pub(crate) fn new(v: f64) -> Self {
        F64Cell(AtomicU64::new(v.to_bits()))
    }
    pub(crate) fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Relaxed);
    }
    pub(crate) fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Relaxed))
    }
}

/// Audit scalars published by the observer, read by `/metrics`,
/// `/stats`, and the accuracy SLO.
pub(crate) struct AuditShared {
    /// Whether accuracy audits run at all (`--audit-sample > 0`).
    pub(crate) enabled: bool,
    /// Sessions probed per audit tick.
    pub(crate) sample: usize,
    /// Audit ticks completed.
    pub(crate) runs: AtomicU64,
    /// Sessions audited, cumulative.
    pub(crate) sessions_audited: AtomicU64,
    /// Sessions whose audited L∞ error exceeded the ε contract.
    pub(crate) bound_violations: AtomicU64,
    /// Observer CPU spent auditing (solve + scoring), nanos.
    pub(crate) cpu_nanos: AtomicU64,
    /// Epoch lag of the last audit: shard epoch at report time minus
    /// the audited epoch.
    pub(crate) staleness_epochs: AtomicU64,
    /// Epoch of the newest completed audit.
    pub(crate) last_epoch: AtomicU64,
    pub(crate) last_l1: F64Cell,
    pub(crate) last_linf: F64Cell,
    /// Largest L∞ error ever audited (the headline accuracy number).
    pub(crate) max_linf: F64Cell,
    pub(crate) last_overlap10: F64Cell,
    pub(crate) last_overlap50: F64Cell,
    /// Largest Eq. 2 invariant residual in the last audit.
    pub(crate) last_residual: F64Cell,
}

impl AuditShared {
    pub(crate) fn new(cfg: &ServeConfig) -> Self {
        AuditShared {
            enabled: cfg.audit_sample > 0,
            sample: cfg.audit_sample,
            runs: AtomicU64::new(0),
            sessions_audited: AtomicU64::new(0),
            bound_violations: AtomicU64::new(0),
            cpu_nanos: AtomicU64::new(0),
            staleness_epochs: AtomicU64::new(0),
            last_epoch: AtomicU64::new(0),
            last_l1: F64Cell::new(0.0),
            last_linf: F64Cell::new(0.0),
            max_linf: F64Cell::new(0.0),
            // Overlap defaults to perfect so the accuracy SLO does not
            // burn before the first audit lands.
            last_overlap10: F64Cell::new(1.0),
            last_overlap50: F64Cell::new(1.0),
            last_residual: F64Cell::new(0.0),
        }
    }
}

// --- SLO engine -----------------------------------------------------------

/// What quantity an SLO constrains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SloKind {
    /// Per-tick windowed HTTP p99 must stay under the target (seconds).
    LatencyP99,
    /// Served fraction `1 − shed/requests` must stay above the target.
    Availability,
    /// Audited top-10 overlap must stay above the target.
    TopkOverlap,
}

pub(crate) struct SloSpec {
    pub(crate) name: &'static str,
    pub(crate) kind: SloKind,
    pub(crate) target: f64,
}

/// One SLO's live evaluation state.
pub(crate) struct SloStatus {
    pub(crate) burn_fast: F64Cell,
    pub(crate) burn_slow: F64Cell,
    pub(crate) breaching: AtomicBool,
    /// Healthy→breaching transitions (a page count, not a tick count).
    pub(crate) breaches: AtomicU64,
}

/// Declarative SLO targets plus their burn-rate evaluation state. A
/// burn rate of 1.0 means "consuming the error budget exactly at the
/// allowed rate"; ≥ 1.0 over the fast window is a breach.
pub(crate) struct SloEngine {
    pub(crate) specs: Vec<SloSpec>,
    pub(crate) status: Vec<SloStatus>,
    /// Set while the latency SLO breaches its fast window; the query
    /// path sheds load until the burn drops back under 1.
    pub(crate) shed: AtomicBool,
}

impl SloEngine {
    pub(crate) fn new(cfg: &ServeConfig) -> Self {
        let mut specs = Vec::new();
        if !cfg.slo_p99.is_zero() {
            specs.push(SloSpec {
                name: "latency_p99",
                kind: SloKind::LatencyP99,
                target: cfg.slo_p99.as_secs_f64(),
            });
        }
        if cfg.slo_availability > 0.0 {
            specs.push(SloSpec {
                name: "availability",
                kind: SloKind::Availability,
                target: cfg.slo_availability.min(1.0 - 1e-9),
            });
        }
        if cfg.slo_topk_overlap > 0.0 {
            specs.push(SloSpec {
                name: "topk_overlap",
                kind: SloKind::TopkOverlap,
                target: cfg.slo_topk_overlap.min(1.0 - 1e-9),
            });
        }
        let status = specs
            .iter()
            .map(|_| SloStatus {
                burn_fast: F64Cell::new(0.0),
                burn_slow: F64Cell::new(0.0),
                breaching: AtomicBool::new(false),
                breaches: AtomicU64::new(0),
            })
            .collect();
        SloEngine { specs, status, shed: AtomicBool::new(false) }
    }

    pub(crate) fn any_breaching(&self) -> bool {
        self.status.iter().any(|s| s.breaching.load(Relaxed))
    }

    /// `"SLO <name> fast burn <x.xx>"` for the first breaching SLO.
    pub(crate) fn breach_reason(&self) -> Option<String> {
        self.specs.iter().zip(&self.status).find_map(|(spec, st)| {
            st.breaching.load(Relaxed).then(|| {
                format!("SLO {} fast burn {:.2}", spec.name, st.burn_fast.get())
            })
        })
    }
}

// --- the observer thread --------------------------------------------------

/// Spawns the audit/series/SLO observer. Always spawned — series
/// sampling and SLO evaluation are unconditional; the accuracy audit
/// only runs when `--audit-sample > 0`.
pub(crate) fn spawn_observer(
    ctx: Arc<Ctx>,
    ctl_txs: Vec<mpsc::Sender<Control>>,
    _cfg: &ServeConfig,
) -> io::Result<JoinHandle<()>> {
    thread::Builder::new()
        .name("dppr-observer".into())
        .spawn(move || observer_loop(&ctx, &ctl_txs))
}

fn observer_loop(ctx: &Ctx, ctl_txs: &[mpsc::Sender<Control>]) {
    let interval = ctx.audit_interval;
    let mut prev_http: HistSnapshot = ctx.metrics.http_request.snapshot();
    let mut next_shard = 0usize;
    loop {
        // Sleep in short chunks so shutdown is honored promptly even
        // with long tick intervals.
        let mut slept = Duration::ZERO;
        while slept < interval {
            if ctx.shutdown.load(SeqCst) {
                return;
            }
            let chunk = (interval - slept).min(Duration::from_millis(50));
            thread::sleep(chunk);
            slept += chunk;
        }
        if ctx.shutdown.load(SeqCst) {
            return;
        }
        if ctx.audit.sample > 0 {
            audit_tick(ctx, ctl_txs, &mut next_shard);
        }
        let http = ctx.metrics.http_request.snapshot();
        let (p50, p99) = tick_percentiles(&prev_http, &http);
        prev_http = http;
        push_series_row(ctx, p50, p99);
        evaluate_slos(ctx);
    }
}

/// Per-tick windowed percentiles: the delta of the cumulative HTTP
/// histogram against the previous tick's snapshot. A tick with no
/// requests reads as 0 (nothing served, nothing slow).
fn tick_percentiles(prev: &HistSnapshot, cur: &HistSnapshot) -> (f64, f64) {
    let mut delta = cur.clone();
    for (slot, &p) in delta.buckets.iter_mut().zip(&prev.buckets) {
        *slot = slot.saturating_sub(p);
    }
    delta.count = delta.count.saturating_sub(prev.count);
    delta.sum = delta.sum.saturating_sub(prev.sum);
    if delta.count == 0 {
        return (0.0, 0.0);
    }
    (delta.p50() as f64 / 1e9, delta.p99() as f64 / 1e9)
}

fn push_series_row(ctx: &Ctx, p50: f64, p99: f64) {
    let proc = ProcessStats::sample();
    let at = ctx.start.elapsed().as_nanos() as u64;
    // Column order must match SERIES_NAMES.
    let values = vec![
        ctx.conn.requests.load(Relaxed) as f64,
        ctx.stats.queries.load(Relaxed) as f64,
        ctx.stats.shed.load(Relaxed) as f64,
        ctx.stats.slides.load(Relaxed) as f64,
        ctx.epoch_min() as f64,
        ctx.sessions_len() as f64,
        p50,
        p99,
        ctx.audit.last_linf.get(),
        ctx.audit.last_overlap10.get(),
        proc.rss_bytes as f64,
        proc.open_fds as f64,
        proc.threads as f64,
    ];
    ctx.series.push(at, values);
}

// --- accuracy audit -------------------------------------------------------

/// One audit tick: ask the next write shard (round-robin) for a
/// consistent capture, then grade it against ground truth.
fn audit_tick(ctx: &Ctx, ctl_txs: &[mpsc::Sender<Control>], next_shard: &mut usize) {
    let ws = *next_shard % ctx.shards.len();
    *next_shard = (*next_shard + 1) % ctx.shards.len();
    let (reply, rx) = mpsc::sync_channel(1);
    if ctl_txs[ws].send(Control::Audit { max_sessions: ctx.audit.sample, reply }).is_err() {
        return;
    }
    // The write loop applies controls between batches; a shard mired in
    // a long slide just skips this tick.
    let job = match rx.recv_timeout(Duration::from_secs(5)) {
        Ok(job) => job,
        Err(_) => return,
    };
    run_audit(ctx, ws, job);
}

fn run_audit(ctx: &Ctx, ws: usize, job: AuditJob) {
    let a = &ctx.audit;
    let m = &ctx.metrics;
    let tick_start = Instant::now();
    let mut max_residual = 0.0f64;
    for sess in &job.sessions {
        let snap = &sess.snapshot;
        let eps = snap.epsilon();
        // Solve well past the contract so solver error cannot mask (or
        // fake) an estimate-error violation.
        let tol = (eps * 1e-3).clamp(1e-12, 1e-6);
        let solve_start = Instant::now();
        let exact = exact_ppr_seq(&job.graph, sess.source, snap.alpha(), tol);
        m.audit_solve.record(solve_start.elapsed().as_nanos() as u64);
        let est = snap.estimates();
        let (mut l1, mut linf) = (0.0f64, 0.0f64);
        for v in 0..exact.len().max(est.len()) {
            let d = (exact.get(v).copied().unwrap_or(0.0)
                - est.get(v).copied().unwrap_or(0.0))
            .abs();
            l1 += d;
            linf = linf.max(d);
        }
        let o10 = topk_overlap(&exact, est, 10);
        let o50 = topk_overlap(&exact, est, 50);
        max_residual = max_residual.max(max_invariant_violation(&job.graph, &sess.state));
        // Errors and overlaps are recorded ×1e9 into nanos-unit
        // histograms so the rendered bucket bounds are natural units.
        m.audit_l1.record((l1 * 1e9) as u64);
        m.audit_linf.record((linf * 1e9) as u64);
        m.audit_overlap10.record((o10 * 1e9) as u64);
        m.audit_overlap50.record((o50 * 1e9) as u64);
        if linf > eps + tol {
            a.bound_violations.fetch_add(1, Relaxed);
        }
        a.last_l1.set(l1);
        a.last_linf.set(linf);
        a.max_linf.set(a.max_linf.get().max(linf));
        a.last_overlap10.set(o10);
        a.last_overlap50.set(o50);
    }
    if !job.sessions.is_empty() {
        a.last_residual.set(max_residual);
    }
    a.runs.fetch_add(1, Relaxed);
    a.sessions_audited.fetch_add(job.sessions.len() as u64, Relaxed);
    a.cpu_nanos.fetch_add(tick_start.elapsed().as_nanos() as u64, Relaxed);
    a.last_epoch.store(job.epoch, Relaxed);
    a.staleness_epochs
        .store(ctx.shards[ws].domain.epoch().saturating_sub(job.epoch), Relaxed);
}

/// `|top-k(exact) ∩ top-k(estimate)| / |top-k(exact)|`; 1.0 when the
/// exact top-k is empty (nothing to miss).
fn topk_overlap(exact: &[f64], est: &[f64], k: usize) -> f64 {
    let truth = top_k_of(exact, k);
    if truth.is_empty() {
        return 1.0;
    }
    let want: HashSet<VertexId> = truth.iter().map(|&(v, _)| v).collect();
    let hit = top_k_of(est, k).iter().filter(|&&(v, _)| want.contains(&v)).count();
    hit as f64 / truth.len() as f64
}

// --- SLO evaluation -------------------------------------------------------

/// Burn rate of one SLO over the newest `ticks` series rows. 1.0 =
/// consuming the error budget exactly at the allowed rate.
fn burn(ctx: &Ctx, spec: &SloSpec, ticks: usize) -> f64 {
    match spec.kind {
        SloKind::LatencyP99 => ctx
            .series
            .last_n("http_request_p99_seconds", ticks)
            .map(|w| w.max / spec.target.max(1e-12))
            .unwrap_or(0.0),
        SloKind::Availability => {
            let (Some(shed), Some(reqs)) = (
                ctx.series.last_n("shed_total", ticks),
                ctx.series.last_n("http_requests_total", ticks),
            ) else {
                return 0.0;
            };
            let d_shed = shed.last - shed.points.first().map_or(0.0, |p| p.1);
            let d_reqs = reqs.last - reqs.points.first().map_or(0.0, |p| p.1);
            if d_reqs <= 0.0 {
                return 0.0;
            }
            (d_shed / d_reqs) / (1.0 - spec.target)
        }
        SloKind::TopkOverlap => {
            // Without auditing there is no overlap signal to burn on.
            if !ctx.audit.enabled {
                return 0.0;
            }
            ctx.series
                .last_n("audit_topk_overlap_10", ticks)
                .map(|w| (1.0 - w.min) / (1.0 - spec.target))
                .unwrap_or(0.0)
        }
    }
}

fn evaluate_slos(ctx: &Ctx) {
    let mut latency_breach = false;
    for (spec, st) in ctx.slo.specs.iter().zip(&ctx.slo.status) {
        let fast = burn(ctx, spec, FAST_TICKS);
        let slow = burn(ctx, spec, SLOW_TICKS);
        st.burn_fast.set(fast);
        st.burn_slow.set(slow);
        let breaching = fast >= 1.0;
        if breaching && !st.breaching.swap(true, Relaxed) {
            st.breaches.fetch_add(1, Relaxed);
        }
        if !breaching {
            st.breaching.store(false, Relaxed);
        }
        if breaching && spec.kind == SloKind::LatencyP99 {
            latency_breach = true;
        }
    }
    // Self-recovering: a shed-quiet fast window reads p99 = 0, the burn
    // drops under 1, and the flag clears.
    ctx.slo.shed.store(latency_breach, Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cfg_with(f: impl FnOnce(&mut ServeConfig)) -> ServeConfig {
        let mut cfg = ServeConfig::default();
        f(&mut cfg);
        cfg
    }

    #[test]
    fn slo_engine_registers_only_configured_targets() {
        let none = SloEngine::new(&ServeConfig::default());
        assert!(none.specs.is_empty());
        assert!(!none.any_breaching());
        assert!(none.breach_reason().is_none());

        let all = SloEngine::new(&cfg_with(|c| {
            c.slo_p99 = Duration::from_millis(50);
            c.slo_availability = 0.999;
            c.slo_topk_overlap = 0.9;
        }));
        let names: Vec<&str> = all.specs.iter().map(|s| s.name).collect();
        assert_eq!(names, ["latency_p99", "availability", "topk_overlap"]);
        assert_eq!(all.status.len(), 3);
        assert!((all.specs[0].target - 0.05).abs() < 1e-12);
    }

    #[test]
    fn breach_reason_names_the_breaching_slo() {
        let e = SloEngine::new(&cfg_with(|c| c.slo_p99 = Duration::from_millis(10)));
        e.status[0].breaching.store(true, Relaxed);
        e.status[0].burn_fast.set(2.5);
        assert_eq!(e.breach_reason().as_deref(), Some("SLO latency_p99 fast burn 2.50"));
    }

    #[test]
    fn topk_overlap_counts_intersection() {
        let exact = [0.5, 0.3, 0.1, 0.05, 0.02];
        // Estimate swaps ranks 3/4 but keeps the same top-2 set.
        let est = [0.5, 0.3, 0.04, 0.06, 0.02];
        assert_eq!(topk_overlap(&exact, &est, 2), 1.0);
        assert_eq!(topk_overlap(&exact, &exact, 5), 1.0);
        assert_eq!(topk_overlap(&[], &est, 10), 1.0);
        // Disjoint top-1.
        assert_eq!(topk_overlap(&[1.0, 0.0], &[0.0, 1.0], 1), 0.0);
    }

    #[test]
    fn tick_percentiles_use_bucket_deltas() {
        let h = dppr_obs::Histogram::new();
        h.record(1_000_000); // 1ms, "previous tick"
        let prev = h.snapshot();
        assert_eq!(tick_percentiles(&prev, &prev), (0.0, 0.0));
        h.record(100_000_000); // 100ms lands in this tick only
        let cur = h.snapshot();
        let (p50, p99) = tick_percentiles(&prev, &cur);
        // The old 1ms sample must not drag the windowed percentiles
        // down: only the 100ms one is in the delta.
        assert!(p50 >= 0.1, "windowed p50 {p50}");
        assert!(p99 >= 0.1, "windowed p99 {p99}");
    }

    #[test]
    fn f64_cell_round_trips() {
        let c = F64Cell::new(1.5);
        assert_eq!(c.get(), 1.5);
        c.set(-0.25);
        assert_eq!(c.get(), -0.25);
    }
}
