//! Figure 9 / Table 4 — resource consumption with varying batch size.
//!
//! The paper reads hardware counters (GPU warp occupancy & load
//! efficiency; CPU L2/L3 miss rates and stall cycles) to show that larger
//! batches (a) raise parallel utilization and (b) slightly worsen memory
//! locality. Our software counters expose the same causal quantities:
//!
//! * mean/max frontier size and work per iteration → utilization (the
//!   paper's warp occupancy analog);
//! * atomic adds, CAS retries per million adds → contention (stall-cycle
//!   analog);
//! * traversals per push → irregular access volume (the load-efficiency /
//!   cache-miss analog);
//! * duplicate-enqueues avoided → the synchronization the frontier scheme
//!   saves.
//!
//! Usage: `fig9_profiling [--full]`

use dppr_bench::{run_engine, EngineKind, ExperimentScale, Workload};
use dppr_core::PushVariant;
use std::time::Duration;

fn main() {
    let scale = ExperimentScale::from_args();
    let (batches, budget): (&[usize], Duration) = match scale {
        ExperimentScale::Quick => (&[100, 1_000, 10_000], Duration::from_secs(3)),
        ExperimentScale::Full => (&[1_000, 10_000, 100_000], Duration::from_secs(20)),
    };
    println!("# Figure 9: resource profile of CPU-MT[Opt] vs batch size");
    println!(
        "dataset\tbatch\tslides\titer_per_slide\tmean_frontier\tmax_frontier\tatomic_adds\tcas_retries_per_M\ttraversals_per_push\tdup_avoided"
    );
    for ds in scale.datasets() {
        let eps = ds.default_epsilon;
        let workload = Workload::prepare(ds, 6, 0.1, 10);
        for &batch in batches {
            let summary = run_engine(
                EngineKind::CpuMt(PushVariant::OPT),
                &workload,
                eps,
                batch,
                scale.slides(),
                budget,
            );
            if summary.slides == 0 {
                continue;
            }
            let c = summary.total_counters();
            println!(
                "{}\t{}\t{}\t{:.1}\t{:.1}\t{}\t{}\t{:.1}\t{:.2}\t{}",
                workload.name,
                batch,
                summary.slides,
                c.iterations as f64 / summary.slides as f64,
                c.mean_frontier(),
                c.max_frontier,
                c.atomic_adds,
                if c.atomic_adds == 0 {
                    0.0
                } else {
                    c.cas_retries as f64 * 1e6 / c.atomic_adds as f64
                },
                if c.pushes == 0 {
                    0.0
                } else {
                    c.edge_traversals as f64 / c.pushes as f64
                },
                c.dup_avoided,
            );
        }
    }
}
