//! `prop::num` — numeric strategy helpers.
//!
//! Ranges themselves already implement [`crate::strategy::Strategy`];
//! this module only hosts the full-domain constants mirroring the real
//! crate's `prop::num::<type>::ANY`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

macro_rules! any_mod {
    ($($m:ident : $t:ty),*) => {$(
        pub mod $m {
            use super::*;

            #[derive(Clone, Copy, Debug)]
            pub struct Any;

            pub const ANY: Any = Any;

            impl Strategy for Any {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        }
    )*};
}

any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i32: i32, i64: i64);
