//! Empirical validation of Lemma 4 (parallel loss): with the same initial
//! residual distribution, the lock-step *parallel* push carries at least as
//! much total residual as the lock-step *sequential* push at every
//! iteration — and consequently performs at least as many operations.
//!
//! The lemma is an ε→0 statement on graphs satisfying the friendship-
//! paradox condition; we test on scale-free (BA) graphs with a small ε and
//! allow the documented O(ε) slack.

use dppr::core::par::parallel_push_lockstep;
use dppr::core::seq::sequential_push_lockstep;
use dppr::core::{PprConfig, PprState};
use dppr::graph::generators::{barabasi_albert, undirected_to_directed};
use dppr::graph::DynamicGraph;

fn ba_graph(n: u32, m: usize, seed: u64) -> DynamicGraph {
    DynamicGraph::from_edges(undirected_to_directed(&barabasi_albert(n, m, seed)))
}

/// Runs both lock-step pushes from a unit residual at `hub` and compares
/// the per-iteration ‖R‖₁ traces.
fn compare(g: &DynamicGraph, hub: u32, eps: f64) -> (Vec<f64>, Vec<f64>, u64, u64) {
    let cfg = PprConfig::new(hub, 0.2, eps);
    let mk = || {
        let mut st = PprState::new(cfg);
        st.ensure_len(g.num_vertices());
        st.set_p(hub, 0.0);
        st.set_r(hub, 1.0);
        st
    };
    let stp = mk();
    let tp = parallel_push_lockstep(g, &stp, &[hub]);
    let stq = mk();
    let tq = sequential_push_lockstep(g, &stq, &[hub]);
    (tp.l1_after_iteration, tq.l1_after_iteration, tp.pushes, tq.pushes)
}

#[test]
fn lemma4_l1_dominance_on_scale_free_graphs() {
    for seed in [1u64, 2, 3] {
        let g = ba_graph(300, 4, seed);
        let hub = g.top_out_degree_vertices(1)[0];
        let eps = 1e-6;
        let (lp, lq, pp, pq) = compare(&g, hub, eps);
        // Parallel performs at least as many pushes (parallel loss).
        assert!(
            pp >= pq,
            "seed {seed}: parallel pushes {pp} < sequential {pq}"
        );
        // Per-iteration dominance with O(ε)-scale slack. Traces can have
        // different lengths; compare the common prefix.
        let slack = 64.0 * eps * g.num_vertices() as f64;
        for (i, (p, q)) in lp.iter().zip(&lq).enumerate() {
            assert!(
                *p >= *q - slack,
                "seed {seed} iteration {i}: ‖R^p‖₁ = {p} < ‖R^q‖₁ = {q}"
            );
        }
    }
}

#[test]
fn parallel_loss_shrinks_with_eager_propagation() {
    // The operational claim behind §4.1: across random workloads, the
    // eager variant needs no more pushes than vanilla in aggregate.
    use dppr::core::par::{parallel_local_push, ParPushBuffers};
    use dppr::core::Counters;
    use dppr::core::PushVariant;

    let mut vanilla_total = 0u64;
    let mut eager_total = 0u64;
    for seed in 0..5u64 {
        let g = ba_graph(300, 4, seed + 10);
        let hub = g.top_out_degree_vertices(1)[0];
        for variant in [PushVariant::VANILLA, PushVariant::OPT] {
            let cfg = PprConfig::new(hub, 0.2, 1e-6);
            let mut st = PprState::new(cfg);
            st.ensure_len(g.num_vertices());
            st.set_p(hub, 0.0);
            st.set_r(hub, 1.0);
            let c = Counters::new();
            let mut bufs = ParPushBuffers::new();
            parallel_local_push(&g, &st, variant, &[hub], &c, &mut bufs);
            assert!(st.converged());
            if variant == PushVariant::VANILLA {
                vanilla_total += c.snapshot().pushes;
            } else {
                eager_total += c.snapshot().pushes;
            }
        }
    }
    assert!(
        eager_total <= vanilla_total,
        "eager {eager_total} pushes vs vanilla {vanilla_total}"
    );
}

#[test]
fn lockstep_traces_converge_to_same_estimates() {
    let g = ba_graph(200, 3, 77);
    let hub = g.top_out_degree_vertices(1)[0];
    let cfg = PprConfig::new(hub, 0.2, 1e-5);
    let mk = || {
        let mut st = PprState::new(cfg);
        st.ensure_len(g.num_vertices());
        st.set_p(hub, 0.0);
        st.set_r(hub, 1.0);
        st
    };
    let stp = mk();
    parallel_push_lockstep(&g, &stp, &[hub]);
    let stq = mk();
    sequential_push_lockstep(&g, &stq, &[hub]);
    for v in 0..g.num_vertices() as u32 {
        assert!((stp.p(v) - stq.p(v)).abs() <= 2e-5 + 1e-12, "vertex {v}");
    }
}
