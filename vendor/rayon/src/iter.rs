//! The parallel-iterator shim.
//!
//! [`ParIter`] is eager: every adaptor materializes its input, and the
//! work-performing combinators (`map`, `filter`, `for_each`, `fold`)
//! execute immediately — across scoped threads when the input is large
//! enough (see [`crate::PARALLEL_THRESHOLD`]), inline otherwise. The
//! closure bounds mirror real rayon's (`Fn + Sync`, items `Send`) so code
//! written against the real crate compiles unchanged.

use crate::{current_num_threads, PARALLEL_THRESHOLD};

/// An eagerly-evaluated stand-in for rayon's parallel iterators.
pub struct ParIter<T> {
    items: Vec<T>,
    min_len: usize,
}

/// Splits `items` into `parts` contiguous chunks of near-equal size,
/// preserving order.
fn split<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let mut out = Vec::with_capacity(parts);
    // Peel chunks off the back so each split_off is O(chunk).
    let mut remaining = n;
    let mut sizes = Vec::with_capacity(parts);
    for i in 0..parts {
        let size = remaining / (parts - i);
        sizes.push(size);
        remaining -= size;
    }
    for &size in sizes.iter().rev() {
        out.push(items.split_off(items.len() - size));
    }
    out.reverse();
    out
}

/// Runs `work` over each chunk on its own scoped thread, preserving
/// chunk order in the result.
fn run_chunks<T, R, W>(chunks: Vec<Vec<T>>, work: W) -> Vec<R>
where
    T: Send,
    R: Send,
    W: Fn(Vec<T>) -> R + Sync,
{
    let work = &work;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || work(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    })
}

impl<T> ParIter<T> {
    pub(crate) fn from_vec(items: Vec<T>) -> Self {
        ParIter { items, min_len: 1 }
    }

    /// Number of chunks to fan out into; 1 means "run inline".
    fn fanout(&self) -> usize {
        let n = self.items.len();
        if n < PARALLEL_THRESHOLD.max(2 * self.min_len) {
            return 1;
        }
        (n / self.min_len.max(1)).clamp(1, current_num_threads())
    }

    /// Sets the minimum chunk granularity, as in rayon.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Parallel map; preserves input order like rayon's `map().collect()`.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        let parts = self.fanout();
        let min_len = self.min_len;
        let mapped = if parts <= 1 {
            self.items.into_iter().map(f).collect()
        } else {
            run_chunks(split(self.items, parts), |chunk| {
                chunk.into_iter().map(&f).collect::<Vec<R>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };
        ParIter {
            items: mapped,
            min_len,
        }
    }

    /// Parallel filter; preserves order.
    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        T: Send,
        F: Fn(&T) -> bool + Sync + Send,
    {
        let parts = self.fanout();
        let min_len = self.min_len;
        let kept = if parts <= 1 {
            self.items.into_iter().filter(|x| f(x)).collect()
        } else {
            run_chunks(split(self.items, parts), |chunk| {
                chunk.into_iter().filter(|x| f(x)).collect::<Vec<T>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };
        ParIter {
            items: kept,
            min_len,
        }
    }

    /// Parallel side-effecting visit.
    pub fn for_each<F>(self, f: F)
    where
        T: Send,
        F: Fn(T) + Sync + Send,
    {
        let parts = self.fanout();
        if parts <= 1 {
            self.items.into_iter().for_each(f);
        } else {
            run_chunks(split(self.items, parts), |chunk| {
                chunk.into_iter().for_each(&f)
            });
        }
    }

    /// Parallel fold: one accumulator per chunk, exactly like rayon
    /// produces one accumulator per split. Pair with [`ParIter::reduce`].
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> ParIter<A>
    where
        T: Send,
        A: Send,
        ID: Fn() -> A + Sync + Send,
        F: Fn(A, T) -> A + Sync + Send,
    {
        let parts = self.fanout();
        let min_len = self.min_len;
        let accs = if parts <= 1 {
            vec![self.items.into_iter().fold(identity(), fold_op)]
        } else {
            run_chunks(split(self.items, parts), |chunk| {
                chunk.into_iter().fold(identity(), &fold_op)
            })
        };
        ParIter {
            items: accs,
            min_len,
        }
    }

    /// Reduces the remaining items (typically per-chunk accumulators from
    /// [`ParIter::fold`]) with `op`, seeded by `identity`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        let min_len = self.min_len;
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
            min_len,
        }
    }

    /// Zips with another parallel iterator (rayon's `IndexedParallelIterator::zip`).
    pub fn zip<U>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        let min_len = self.min_len;
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
            min_len,
        }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }

    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().min()
    }
}

impl<'a, U: Copy + 'a> ParIter<&'a U> {
    /// rayon's `copied()`.
    pub fn copied(self) -> ParIter<U> {
        let min_len = self.min_len;
        ParIter {
            items: self.items.into_iter().copied().collect(),
            min_len,
        }
    }

    /// rayon's `cloned()` (for `Copy` types the two coincide).
    pub fn cloned(self) -> ParIter<U> {
        self.copied()
    }
}

/// `into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    type Item;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;

    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter::from_vec(self.into_iter().collect())
    }
}

/// `par_iter()` on `&C`.
pub trait IntoParallelRefIterator<'a> {
    type Item;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;

    fn par_iter(&'a self) -> ParIter<Self::Item> {
        ParIter::from_vec(self.into_iter().collect())
    }
}

/// `par_iter_mut()` on `&mut C`.
pub trait IntoParallelRefMutIterator<'a> {
    type Item;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Item = <&'a mut C as IntoIterator>::Item;

    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item> {
        ParIter::from_vec(self.into_iter().collect())
    }
}

/// `par_chunks()` on slices.
pub trait ParallelSlice<T> {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter::from_vec(self.chunks(chunk_size).collect())
    }
}

/// Sorting members of rayon's `ParallelSliceMut`. The shim delegates to
/// the standard library's (sequential) sorts — pattern-defeating
/// quicksort is fast enough for every workload in this workspace.
pub trait ParallelSliceMut<T> {
    fn par_sort(&mut self)
    where
        T: Ord;

    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F);

    fn par_sort_unstable_by<F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(&mut self, f: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F) {
        self.sort_unstable_by_key(f);
    }

    fn par_sort_unstable_by<F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(&mut self, f: F) {
        self.sort_unstable_by(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order_above_threshold() {
        let n = PARALLEL_THRESHOLD * 4;
        let out: Vec<usize> = (0..n).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..n).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_everything_in_parallel() {
        let n = PARALLEL_THRESHOLD * 4;
        let counter = AtomicUsize::new(0);
        (0..n)
            .into_par_iter()
            .for_each(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        assert_eq!(counter.load(Ordering::Relaxed), n);
    }

    #[test]
    fn fold_reduce_matches_sequential_sum() {
        let v: Vec<u64> = (0..(PARALLEL_THRESHOLD as u64 * 3)).collect();
        let total = v
            .par_iter()
            .with_min_len(64)
            .fold(|| 0u64, |acc, &x| acc + x)
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(total, v.iter().sum::<u64>());
    }

    #[test]
    fn filter_and_copied() {
        let v: Vec<u32> = (0..100).collect();
        let evens: Vec<u32> = v.par_iter().filter(|&&x| x % 2 == 0).copied().collect();
        assert_eq!(evens, (0..100).filter(|x| x % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn zip_and_mut_refs() {
        let a = vec![1u32, 2, 3];
        let mut b = vec![10u32, 20, 30];
        a.par_iter()
            .zip(b.par_iter_mut())
            .for_each(|(x, slot)| *slot += *x);
        assert_eq!(b, vec![11, 22, 33]);
    }

    #[test]
    fn par_chunks_covers_slice() {
        let v: Vec<u32> = (0..10).collect();
        let sizes: Vec<usize> = v.par_chunks(4).map(|c| c.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn panics_propagate() {
        let r = std::panic::catch_unwind(|| {
            (0..PARALLEL_THRESHOLD * 2)
                .into_par_iter()
                .for_each(|x| assert!(x < PARALLEL_THRESHOLD, "boom"));
        });
        assert!(r.is_err());
    }
}
