//! Hand-rolled JSON rendering (the build environment is offline; no serde).
//!
//! Only what the HTTP responses need: objects, arrays, numbers, strings,
//! booleans, null. `f64` renders via Rust's shortest-roundtrip `Display`,
//! which is valid JSON for every finite value; non-finite values render as
//! `null` (they cannot occur in converged estimates, but a renderer must
//! not emit invalid JSON under any input).

use std::fmt::Write as _;

/// Incremental JSON object/array writer.
///
/// ```
/// use dppr_serve::json::JsonBuf;
/// let mut j = JsonBuf::new();
/// j.begin_obj();
/// j.key("ok").bool(true);
/// j.key("count").num(2.0);
/// j.key("name").str("a \"b\"");
/// j.end_obj();
/// assert_eq!(j.finish(), r#"{"ok":true,"count":2,"name":"a \"b\""}"#);
/// ```
#[derive(Default)]
pub struct JsonBuf {
    out: String,
    /// Whether the next element at the current nesting level needs a comma.
    need_comma: Vec<bool>,
}

impl JsonBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        JsonBuf::default()
    }

    fn elem(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    /// Opens an object value.
    pub fn begin_obj(&mut self) -> &mut Self {
        self.elem();
        self.out.push('{');
        self.need_comma.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push('}');
        self
    }

    /// Opens an array value.
    pub fn begin_arr(&mut self) -> &mut Self {
        self.elem();
        self.out.push('[');
        self.need_comma.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push(']');
        self
    }

    /// Writes an object key; the next call writes its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.elem();
        write_escaped(&mut self.out, k);
        self.out.push(':');
        // The value that follows must not add its own comma.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
        self
    }

    /// Writes a number (integers render without a trailing `.0`).
    pub fn num(&mut self, v: f64) -> &mut Self {
        self.elem();
        if v.is_finite() {
            write!(self.out, "{v}").unwrap();
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Writes an unsigned integer exactly.
    pub fn uint(&mut self, v: u64) -> &mut Self {
        self.elem();
        write!(self.out, "{v}").unwrap();
        self
    }

    /// Writes a string value.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.elem();
        write_escaped(&mut self.out, s);
        self
    }

    /// Writes a boolean.
    pub fn bool(&mut self, b: bool) -> &mut Self {
        self.elem();
        self.out.push_str(if b { "true" } else { "false" });
        self
    }

    /// Writes `null`.
    pub fn null(&mut self) -> &mut Self {
        self.elem();
        self.out.push_str("null");
        self
    }

    /// The rendered JSON.
    pub fn finish(self) -> String {
        self.out
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap()
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a one-field error object.
pub fn error_body(msg: &str) -> String {
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.key("error").str(msg);
    j.end_obj();
    j.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures_and_escapes() {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("xs").begin_arr();
        j.num(1.5).num(2.0).null();
        j.begin_obj();
        j.key("s").str("line\nbreak \"q\" \\ \u{1}");
        j.end_obj();
        j.end_arr();
        j.key("e").num(1e-5);
        j.key("inf").num(f64::INFINITY);
        j.end_obj();
        assert_eq!(
            j.finish(),
            r#"{"xs":[1.5,2,null,{"s":"line\nbreak \"q\" \\ \u0001"}],"e":0.00001,"inf":null}"#
        );
    }

    #[test]
    fn error_body_shape() {
        assert_eq!(error_body("no session"), r#"{"error":"no session"}"#);
    }
}
