//! Sequence helpers (`rand::seq`).

use crate::{Rng, RngCore};

/// Slice extensions; only the members this workspace uses.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` when empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With overwhelming probability the order changed.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
