//! Cross-shard behaviour of `--write-shards N`: routing stability,
//! merged `/stats`, per-shard eviction budgets, and the core equivalence
//! guarantee — a sharded instance answers bit-identically to an
//! unsharded one, because every shard applies the same full update
//! stream and only the session *ownership* is partitioned.

use dppr_graph::generators::erdos_renyi;
use dppr_graph::{GraphStream, VertexId};
use dppr_serve::{shard_data_dir, shard_of, start, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(conn, "GET {target} HTTP/1.0\r\nHost: dppr\r\n\r\n").unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw.split_whitespace().nth(1).expect("status").parse().expect("numeric");
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn the_stream() -> GraphStream {
    GraphStream::directed(erdos_renyi(200, 6_000, 21)).permuted(5)
}

/// Waits until every write shard has published at least `epoch`. (With
/// `max_slides: N` each shard freezes at epoch `N + 1` without marking
/// the stream done, so tests wait on the published epochs directly.)
fn wait_epochs(handle: &dppr_serve::ServerHandle, epoch: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let n = handle.write_shard_count();
        if (0..n).all(|i| handle.shard_epoch(i) >= epoch) {
            return;
        }
        assert!(Instant::now() < deadline, "write loops never reached epoch {epoch}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The shard hash is a pure function of the source id: the same source
/// lands on the same shard across calls, instances, and process
/// restarts — that is what makes per-shard WAL directories replayable.
#[test]
fn shard_mapping_is_stable_and_total() {
    for n in [1usize, 2, 3, 4, 8] {
        for s in 0..500u32 {
            let w = shard_of(s, n);
            assert!(w < n.max(1));
            assert_eq!(w, shard_of(s, n), "mapping must be deterministic");
        }
    }
    // n <= 1 is the unsharded identity.
    assert_eq!(shard_of(12345, 0), 0);
    assert_eq!(shard_of(12345, 1), 0);
    // The mapping actually spreads: 500 sources over 4 shards must not
    // collapse onto fewer than 4.
    let mut hit = [false; 4];
    for s in 0..500u32 {
        hit[shard_of(s, 4)] = true;
    }
    assert!(hit.iter().all(|&h| h), "splitmix64 must populate every shard: {hit:?}");

    // Durable layout: unsharded keeps the historical root, sharded gets
    // one subdirectory per shard.
    let root = Path::new("/data/dppr");
    assert_eq!(shard_data_dir(root, 0, 1), root);
    assert_eq!(shard_data_dir(root, 2, 4), root.join("shard-2"));
}

/// Session open/close routes to the owning shard and reports it; the
/// same source re-opens onto the same shard.
#[test]
fn session_routing_is_stable_across_reopen() {
    let n = 4usize;
    let handle = start(
        the_stream(),
        0.1,
        &[0, 1, 2, 3],
        ServeConfig {
            threads: 2,
            batch: 500,
            epsilon: 1e-3,
            max_slides: 1,
            write_shards: n,
            session_capacity: 16,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    for source in [7u32, 42, 99] {
        let want = format!("\"write_shard\":{}", shard_of(source, n));
        let (status, body) = get(addr, &format!("/session/open?source={source}"));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains(&want), "open must land on the hash-owned shard: {body}");
        let (status, body) = get(addr, &format!("/session/close?source={source}"));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains(&want), "close must route to the same shard: {body}");
        let (status, body) = get(addr, &format!("/session/open?source={source}"));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains(&want), "reopen must land on the same shard again: {body}");
    }
    handle.shutdown();
    handle.join();
}

/// `/stats` merges the per-shard engines into the familiar global block
/// and exposes one `write_shards` entry per shard; `/sessions` reports
/// the union.
#[test]
fn stats_and_sessions_merge_across_shards() {
    let handle = start(
        the_stream(),
        0.1,
        &[0, 1, 2, 3, 4, 5],
        ServeConfig {
            threads: 2,
            batch: 500,
            epsilon: 1e-3,
            max_slides: 2,
            write_shards: 3,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();
    wait_epochs(&handle, 3);

    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    for i in 0..3 {
        assert!(body.contains(&format!("\"shard\":{i}")), "missing shard {i} block: {body}");
    }
    // Every shard applied the whole stream, so the merged epoch equals
    // each shard's epoch and all six sessions are visible.
    assert!(body.contains("\"sessions\":6"), "{body}");
    assert!(body.contains("\"write_shards\":["), "{body}");
    assert!(body.contains("\"stale_purged\":"), "{body}");

    let (status, body) = get(addr, "/sessions");
    assert_eq!(status, 200);
    assert!(body.contains("\"sessions\":[0,1,2,3,4,5]"), "merged sorted union: {body}");

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"write_shards\":["), "{body}");
    assert!(body.contains("\"lagging\":false"), "{body}");

    handle.shutdown();
    handle.join();
}

/// Session capacity is a per-shard budget: filling shard A far past its
/// slice evicts only within A — sessions owned by other shards survive
/// untouched.
#[test]
fn eviction_budgets_are_per_shard() {
    let n = 2usize;
    // Pick seeds per shard so we control exactly where pressure lands.
    let mut by_shard: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for s in 0..200u32 {
        by_shard[shard_of(s, n)].push(s);
    }
    let survivor = by_shard[1][0];
    let crowd: Vec<VertexId> = by_shard[0].iter().copied().take(8).collect();

    // capacity 4 over 2 shards → 2 per shard (div_ceil), floored at each
    // shard's bootstrap source count (1 here).
    let handle = start(
        the_stream(),
        0.1,
        &[crowd[0], survivor],
        ServeConfig {
            threads: 2,
            batch: 500,
            epsilon: 1e-3,
            max_slides: 1,
            write_shards: n,
            session_capacity: 4,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    // Crowd shard 0 with six more opens than its budget of 2. Opens are
    // acknowledged on acceptance and applied by the write loop between
    // batches, so wait for the last one to land before inspecting.
    for s in &crowd[1..7] {
        let (status, body) = get(addr, &format!("/session/open?source={s}"));
        assert_eq!(status, 200, "{body}");
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while !handle.shard_registry(0).sources().contains(&crowd[6]) {
        assert!(Instant::now() < deadline, "write loop never applied the opens");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (_, body) = get(addr, "/sessions");
    // The first shard-0 session was the LRU victim of the crowd.
    assert!(
        !handle.shard_registry(0).sources().contains(&crowd[0]),
        "LRU session must have been evicted under per-shard pressure: {body}"
    );
    // Shard 1 was never pressured: its lone session is still there.
    assert!(
        handle.shard_registry(1).sources().contains(&survivor),
        "shard 1 session evicted by shard 0 pressure: {body}"
    );
    assert_eq!(handle.shard_registry(1).len(), 1, "{body}");
    // Shard 0 stayed within its own slice of the budget.
    assert!(handle.shard_registry(0).len() <= 2, "{body}");

    handle.shutdown();
    handle.join();
}

/// The headline equivalence: because every shard applies the identical
/// update stream to its own graph replica, a 4-shard instance serves
/// *bit-identical* estimates, rankings, and epochs to a 1-shard one.
#[test]
fn four_shards_answer_bit_identically_to_one() {
    let sources: Vec<VertexId> = vec![0, 1, 2, 3, 4, 5, 6, 7];
    let cfg = |n: usize| ServeConfig {
        threads: 2,
        batch: 400,
        epsilon: 1e-3,
        max_slides: 4,
        write_shards: n,
        ..ServeConfig::default()
    };
    let one = start(the_stream(), 0.1, &sources, cfg(1)).expect("1-shard starts");
    let four = start(the_stream(), 0.1, &sources, cfg(4)).expect("4-shard starts");
    wait_epochs(&one, 5);
    wait_epochs(&four, 5);

    for s in &sources {
        for target in [
            format!("/topk?source={s}&k=10"),
            format!("/score?source={s}&v=1"),
            format!("/score?source={s}&v=17"),
            format!("/threshold?source={s}&delta=0.001"),
            format!("/compare?source={s}&a=1&b=2"),
        ] {
            let (st1, b1) = get(one.addr(), &target);
            let (st4, b4) = get(four.addr(), &target);
            assert_eq!(st1, 200, "{target}: {b1}");
            assert_eq!(st4, 200, "{target}: {b4}");
            assert_eq!(b1, b4, "sharded answer diverged on {target}");
        }
    }

    one.shutdown();
    four.shutdown();
    one.join();
    four.join();
}

/// `/compare_sessions` crosses shard boundaries: both sources resolve on
/// their own shards and the interval order comes out of the merged view.
#[test]
fn compare_sessions_crosses_shards() {
    let handle = start(
        the_stream(),
        0.1,
        &[0, 1, 2, 3],
        ServeConfig {
            threads: 2,
            batch: 500,
            epsilon: 1e-3,
            max_slides: 2,
            write_shards: 4,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();
    wait_epochs(&handle, 3);

    let (status, body) = get(addr, "/compare_sessions?a=0&b=1&v=2");
    assert_eq!(status, 200, "{body}");
    for key in ["\"a\":0", "\"b\":1", "\"v\":2", "\"estimate_a\":", "\"estimate_b\":", "\"order\":"] {
        assert!(body.contains(key), "missing {key}: {body}");
    }
    // A source crossed with itself is never decidable in either strict
    // direction — the intervals coincide.
    let (status, body) = get(addr, "/compare_sessions?a=3&b=3&v=5");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"order\":\"undecidable\""), "{body}");

    // Unknown sessions 404.
    let (status, _) = get(addr, "/compare_sessions?a=0&b=999999&v=2");
    assert_eq!(status, 404);

    handle.shutdown();
    handle.join();
}
