//! Software profiling counters.
//!
//! The paper profiles its kernels with nvprof (GPU warp occupancy, global
//! load efficiency) and PAPI (cache miss rates, stall cycles) — Table 4 and
//! Figure 9. Those hardware counters are unavailable here, so the engines
//! expose the *causal* quantities those metrics proxy: how much work each
//! iteration carries (pushes, edge traversals, frontier sizes), how much
//! synchronization it costs (atomic adds, CAS retries, duplicate-enqueue
//! attempts), and how many iterations the push takes.
//!
//! Hot loops accumulate into a plain [`LocalCounters`] and flush once per
//! rayon task, so profiling adds no per-edge atomic traffic.

use std::fmt;
use std::ops::Sub;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters, updated by flushing [`LocalCounters`].
#[derive(Debug, Default)]
pub struct Counters {
    pushes: AtomicU64,
    edge_traversals: AtomicU64,
    atomic_adds: AtomicU64,
    cas_retries: AtomicU64,
    enqueued: AtomicU64,
    dup_avoided: AtomicU64,
    iterations: AtomicU64,
    max_frontier: AtomicU64,
    frontier_total: AtomicU64,
    restore_ops: AtomicU64,
    batches: AtomicU64,
}

impl Counters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one processed batch.
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one `RestoreInvariant` call.
    pub fn record_restore(&self) {
        self.restore_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` `RestoreInvariant` calls at once.
    pub fn record_restores(&self, n: u64) {
        self.restore_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one push iteration over a frontier of the given size.
    pub fn record_iteration(&self, frontier_len: usize) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
        self.frontier_total
            .fetch_add(frontier_len as u64, Ordering::Relaxed);
        self.max_frontier
            .fetch_max(frontier_len as u64, Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            pushes: self.pushes.load(Ordering::Relaxed),
            edge_traversals: self.edge_traversals.load(Ordering::Relaxed),
            atomic_adds: self.atomic_adds.load(Ordering::Relaxed),
            cas_retries: self.cas_retries.load(Ordering::Relaxed),
            enqueued: self.enqueued.load(Ordering::Relaxed),
            dup_avoided: self.dup_avoided.load(Ordering::Relaxed),
            iterations: self.iterations.load(Ordering::Relaxed),
            max_frontier: self.max_frontier.load(Ordering::Relaxed),
            frontier_total: self.frontier_total.load(Ordering::Relaxed),
            restore_ops: self.restore_ops.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        for c in [
            &self.pushes,
            &self.edge_traversals,
            &self.atomic_adds,
            &self.cas_retries,
            &self.enqueued,
            &self.dup_avoided,
            &self.iterations,
            &self.max_frontier,
            &self.frontier_total,
            &self.restore_ops,
            &self.batches,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Per-task accumulator; merge into [`Counters`] with
/// [`LocalCounters::flush`].
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalCounters {
    /// Push operations (one per frontier vertex processed).
    pub pushes: u64,
    /// In-neighbor edges walked during neighbor-propagation.
    pub edge_traversals: u64,
    /// Atomic residual updates issued.
    pub atomic_adds: u64,
    /// CAS retries inside atomic adds (contention).
    pub cas_retries: u64,
    /// Vertices enqueued into the next frontier.
    pub enqueued: u64,
    /// Enqueue attempts suppressed as duplicates.
    pub dup_avoided: u64,
}

impl LocalCounters {
    /// Adds `other` into `self` (used when rayon reduces accumulators).
    pub fn merge(&mut self, other: &LocalCounters) {
        self.pushes += other.pushes;
        self.edge_traversals += other.edge_traversals;
        self.atomic_adds += other.atomic_adds;
        self.cas_retries += other.cas_retries;
        self.enqueued += other.enqueued;
        self.dup_avoided += other.dup_avoided;
    }

    /// Publishes the accumulated values.
    pub fn flush(&self, to: &Counters) {
        if self.pushes > 0 {
            to.pushes.fetch_add(self.pushes, Ordering::Relaxed);
        }
        if self.edge_traversals > 0 {
            to.edge_traversals
                .fetch_add(self.edge_traversals, Ordering::Relaxed);
        }
        if self.atomic_adds > 0 {
            to.atomic_adds.fetch_add(self.atomic_adds, Ordering::Relaxed);
        }
        if self.cas_retries > 0 {
            to.cas_retries.fetch_add(self.cas_retries, Ordering::Relaxed);
        }
        if self.enqueued > 0 {
            to.enqueued.fetch_add(self.enqueued, Ordering::Relaxed);
        }
        if self.dup_avoided > 0 {
            to.dup_avoided.fetch_add(self.dup_avoided, Ordering::Relaxed);
        }
    }
}

/// Plain-value snapshot; supports subtraction for per-interval deltas.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub pushes: u64,
    pub edge_traversals: u64,
    pub atomic_adds: u64,
    pub cas_retries: u64,
    pub enqueued: u64,
    pub dup_avoided: u64,
    pub iterations: u64,
    pub max_frontier: u64,
    pub frontier_total: u64,
    pub restore_ops: u64,
    pub batches: u64,
}

impl CounterSnapshot {
    /// Total "operations" in the sense of Theorems 1 and 3: invariant
    /// repairs plus push work (pushes and the edges they traverse).
    pub fn total_operations(&self) -> u64 {
        self.restore_ops + self.pushes + self.edge_traversals
    }

    /// Mean frontier size across iterations (0 if none ran).
    pub fn mean_frontier(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.frontier_total as f64 / self.iterations as f64
        }
    }

    /// Every quantity by stable name, for telemetry layers that render
    /// the full set without hand-listing the fields.
    pub fn fields(&self) -> [(&'static str, u64); 11] {
        [
            ("pushes", self.pushes),
            ("edge_traversals", self.edge_traversals),
            ("atomic_adds", self.atomic_adds),
            ("cas_retries", self.cas_retries),
            ("enqueued", self.enqueued),
            ("dup_avoided", self.dup_avoided),
            ("iterations", self.iterations),
            ("max_frontier", self.max_frontier),
            ("frontier_total", self.frontier_total),
            ("restore_ops", self.restore_ops),
            ("batches", self.batches),
        ]
    }
}

impl Sub for CounterSnapshot {
    type Output = CounterSnapshot;

    /// Component-wise difference; `max_frontier` keeps the newer value
    /// (maxima are not interval-decomposable).
    fn sub(self, rhs: CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            pushes: self.pushes - rhs.pushes,
            edge_traversals: self.edge_traversals - rhs.edge_traversals,
            atomic_adds: self.atomic_adds - rhs.atomic_adds,
            cas_retries: self.cas_retries - rhs.cas_retries,
            enqueued: self.enqueued - rhs.enqueued,
            dup_avoided: self.dup_avoided - rhs.dup_avoided,
            iterations: self.iterations - rhs.iterations,
            max_frontier: self.max_frontier,
            frontier_total: self.frontier_total - rhs.frontier_total,
            restore_ops: self.restore_ops - rhs.restore_ops,
            batches: self.batches - rhs.batches,
        }
    }
}

impl fmt::Display for CounterSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pushes={} traversals={} atomics={} cas_retries={} enq={} dup_avoided={} iters={} max_fq={} mean_fq={:.1} restores={} batches={}",
            self.pushes,
            self.edge_traversals,
            self.atomic_adds,
            self.cas_retries,
            self.enqueued,
            self.dup_avoided,
            self.iterations,
            self.max_frontier,
            self.mean_frontier(),
            self.restore_ops,
            self.batches,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_and_snapshot() {
        let c = Counters::new();
        let l = LocalCounters {
            pushes: 3,
            edge_traversals: 10,
            enqueued: 2,
            ..Default::default()
        };
        l.flush(&c);
        l.flush(&c);
        c.record_iteration(5);
        c.record_iteration(9);
        c.record_restore();
        c.record_batch();
        let s = c.snapshot();
        assert_eq!(s.pushes, 6);
        assert_eq!(s.edge_traversals, 20);
        assert_eq!(s.enqueued, 4);
        assert_eq!(s.iterations, 2);
        assert_eq!(s.max_frontier, 9);
        assert_eq!(s.frontier_total, 14);
        assert_eq!(s.mean_frontier(), 7.0);
        assert_eq!(s.restore_ops, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.total_operations(), 1 + 6 + 20);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LocalCounters { pushes: 1, edge_traversals: 2, ..Default::default() };
        let b = LocalCounters { pushes: 10, cas_retries: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.pushes, 11);
        assert_eq!(a.edge_traversals, 2);
        assert_eq!(a.cas_retries, 5);
    }

    #[test]
    fn reset_zeroes() {
        let c = Counters::new();
        c.record_iteration(3);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn snapshot_delta() {
        let c = Counters::new();
        let l = LocalCounters { pushes: 4, ..Default::default() };
        l.flush(&c);
        let before = c.snapshot();
        l.flush(&c);
        c.record_iteration(1);
        let delta = c.snapshot() - before;
        assert_eq!(delta.pushes, 4);
        assert_eq!(delta.iterations, 1);
    }

    #[test]
    fn display_is_humane() {
        let s = CounterSnapshot { pushes: 1, ..Default::default() };
        let text = s.to_string();
        assert!(text.contains("pushes=1"));
    }
}
