//! Forward (source-side) local push and the conductance sweep cut.
//!
//! The paper's Algorithms 1–4 maintain the *reverse* formulation (see the
//! crate docs). Two of its motivating applications — community detection
//! and graph partitioning [6] — consume the *forward* vector `πs`, the
//! stationary distribution of an α-teleporting walk from `s` (Eq. 1):
//!
//! ```text
//! πs(v) = α·1{v=s} + (1−α) · Σ_{u: u→v} πs(u)/dout(u)
//! ```
//!
//! This module implements the classic Andersen–Chung–Lang forward push for
//! a static snapshot, plus the sweep cut used by the community-detection
//! example. On undirected graphs the two formulations are related by
//! `πs(v)·d(s) = πv(s)·d(v)`, which the tests exploit to cross-validate the
//! reverse engines.

use crate::config::PprConfig;
use dppr_graph::{DynamicGraph, VertexId};
use std::collections::VecDeque;

/// Result of a forward push: estimates `p` and residuals `r` with the ACL
/// guarantee `r(v) < ε·dout(v)` for all `v`.
#[derive(Debug, Clone)]
pub struct ForwardPush {
    /// Approximate forward PPR values.
    pub p: Vec<f64>,
    /// Leftover residuals.
    pub r: Vec<f64>,
    /// Push operations performed.
    pub pushes: u64,
}

/// Andersen–Chung–Lang forward push from `source` on the current graph.
/// `epsilon` is the per-degree residual threshold: vertex `u` is pushed
/// while `r(u) ≥ ε·dout(u)`.
pub fn forward_push(
    g: &DynamicGraph,
    source: VertexId,
    alpha: f64,
    epsilon: f64,
) -> ForwardPush {
    assert!(alpha > 0.0 && alpha < 1.0);
    assert!(epsilon > 0.0);
    let n = g.num_vertices().max(source as usize + 1);
    let mut p = vec![0.0f64; n];
    let mut r = vec![0.0f64; n];
    r[source as usize] = 1.0;
    let mut pushes = 0u64;

    let mut queue: VecDeque<VertexId> = VecDeque::new();
    let mut in_queue = vec![false; n];
    if g.out_degree(source) > 0 && r[source as usize] >= epsilon * g.out_degree(source) as f64
    {
        queue.push_back(source);
        in_queue[source as usize] = true;
    } else {
        // Degenerate source: all mass stays local.
        p[source as usize] = r[source as usize];
        r[source as usize] = 0.0;
    }

    while let Some(u) = queue.pop_front() {
        in_queue[u as usize] = false;
        let dout = g.out_degree(u);
        if dout == 0 {
            continue;
        }
        let ru = r[u as usize];
        if ru < epsilon * dout as f64 {
            continue;
        }
        pushes += 1;
        p[u as usize] += alpha * ru;
        r[u as usize] = 0.0;
        // dout > 0 was checked above, so the maintained 1/dout is non-zero.
        let share = (1.0 - alpha) * ru * g.inv_out_degree(u);
        for &v in g.out_neighbors(u) {
            r[v as usize] += share;
            let dv = g.out_degree(v);
            if dv > 0 && r[v as usize] >= epsilon * dv as f64 && !in_queue[v as usize] {
                in_queue[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    ForwardPush { p, r, pushes }
}

/// A sweep-cut result: the prefix of the degree-normalized PPR ordering
/// with the smallest conductance.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCut {
    /// Vertices of the best community, in sweep order.
    pub community: Vec<VertexId>,
    /// Conductance of that community.
    pub conductance: f64,
}

/// Sweep cut over a forward-PPR vector on an **undirected** graph (arcs in
/// both directions): sorts vertices by `p(v)/deg(v)`, scans prefixes, and
/// returns the one minimizing conductance `cut(S)/min(vol(S), vol(V∖S))`.
/// Prefixes are capped at half the total volume.
pub fn sweep_cut(g: &DynamicGraph, p: &[f64]) -> Option<SweepCut> {
    let total_vol: usize = (0..g.num_vertices() as VertexId)
        .map(|v| g.out_degree(v))
        .sum();
    if total_vol == 0 {
        return None;
    }
    let mut order: Vec<VertexId> = (0..g.num_vertices() as VertexId)
        .filter(|&v| p.get(v as usize).copied().unwrap_or(0.0) > 0.0 && g.out_degree(v) > 0)
        .collect();
    if order.is_empty() {
        return None;
    }
    order.sort_by(|&a, &b| {
        let ka = p[a as usize] * g.inv_out_degree(a);
        let kb = p[b as usize] * g.inv_out_degree(b);
        kb.partial_cmp(&ka).unwrap().then(a.cmp(&b))
    });

    let mut in_set = vec![false; g.num_vertices()];
    let mut cut = 0i64; // edges crossing the boundary
    let mut vol = 0usize;
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in order.iter().enumerate() {
        in_set[v as usize] = true;
        vol += g.out_degree(v);
        // Adding v: every incident edge flips its crossing status.
        for &w in g.out_neighbors(v) {
            if in_set[w as usize] {
                cut -= 1;
            } else {
                cut += 1;
            }
        }
        // (On an undirected graph in/out neighbor sets coincide; using the
        // out-direction for both endpoints counts each undirected edge once
        // from each side, consistently.)
        if 2 * vol > total_vol {
            break;
        }
        let denom = vol.min(total_vol - vol).max(1) as f64;
        let phi = cut.max(0) as f64 / denom;
        if best.is_none_or(|(_, b)| phi < b) {
            best = Some((i, phi));
        }
    }
    best.map(|(i, phi)| SweepCut {
        community: order[..=i].to_vec(),
        conductance: phi,
    })
}

/// Convenience wrapper: forward PPR then sweep cut, using the config's
/// parameters.
pub fn local_community(g: &DynamicGraph, cfg: &PprConfig) -> Option<SweepCut> {
    let fp = forward_push(g, cfg.source, cfg.alpha, cfg.epsilon);
    sweep_cut(g, &fp.p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dppr_graph::generators::undirected_to_directed;

    #[test]
    fn forward_push_conserves_mass() {
        let g = DynamicGraph::from_edges([(0, 1), (1, 2), (2, 0), (1, 0)]);
        let fp = forward_push(&g, 0, 0.15, 1e-6);
        let total: f64 = fp.p.iter().sum::<f64>() + fp.r.iter().sum::<f64>();
        // p absorbs α of each pushed residual; (1−α) is passed on, so
        // p + r accounts only for... actually mass is conserved in the
        // sense Σp/α·... — the simple conserved quantity is Σp + Σr ≤ 1
        // with equality iff no mass is lost; forward push loses nothing.
        assert!(total <= 1.0 + 1e-12);
        assert!(fp.p[0] > 0.0);
        for (v, &r) in fp.r.iter().enumerate() {
            let dv = g.out_degree(v as VertexId) as f64;
            assert!(r < 1e-6 * dv.max(1.0) + 1e-15, "residual guarantee at {v}");
        }
    }

    #[test]
    fn dangling_source_keeps_all_mass() {
        let g = DynamicGraph::with_vertices(3);
        let fp = forward_push(&g, 1, 0.15, 1e-4);
        assert_eq!(fp.p[1], 1.0);
        assert_eq!(fp.pushes, 0);
    }

    #[test]
    fn undirected_duality_links_forward_and_reverse() {
        // On an undirected graph: πs(v)·d(s) = πv(s)·d(v). The reverse
        // vector for target s (what the paper's engines maintain) gives
        // πv(s) for all v; check against an accurate forward push.
        use crate::ground_truth::exact_ppr;
        let und = vec![(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)];
        let g = DynamicGraph::from_edges(undirected_to_directed(&und));
        let s: VertexId = 2;
        let alpha = 0.3;
        let reverse = exact_ppr(&g, s, alpha, 1e-14); // reverse[v] = πv(s)
        let fwd = forward_push(&g, s, alpha, 1e-10).p; // ≈ πs(v)
        let ds = g.out_degree(s) as f64;
        for v in 0..g.num_vertices() as VertexId {
            let dv = g.out_degree(v) as f64;
            let lhs = fwd[v as usize] * ds;
            let rhs = reverse[v as usize] * dv;
            assert!(
                (lhs - rhs).abs() < 1e-5,
                "duality failed at {v}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn sweep_cut_finds_planted_community() {
        // Two 6-cliques joined by a single bridge edge: the sweep from
        // inside one clique must recover (a superset of) that clique with
        // low conductance.
        let mut und = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                und.push((a, b));
                und.push((a + 6, b + 6));
            }
        }
        und.push((0, 6)); // bridge
        let g = DynamicGraph::from_edges(undirected_to_directed(&und));
        let fp = forward_push(&g, 3, 0.1, 1e-7);
        let cut = sweep_cut(&g, &fp.p).expect("community expected");
        let mut community = cut.community.clone();
        community.sort_unstable();
        assert_eq!(community, vec![0, 1, 2, 3, 4, 5]);
        // One bridge edge over volume 5·6+1 = 31.
        assert!((cut.conductance - 1.0 / 31.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_cut_empty_graph() {
        let g = DynamicGraph::with_vertices(4);
        assert!(sweep_cut(&g, &[0.0; 4]).is_none());
    }
}
