//! `serve_load` — closed-loop load generator for the serving subsystem.
//!
//! Starts a `dppr-serve` instance in-process on an ephemeral port over a
//! generated stream, then hammers it with mixed query traffic (top-k 40%,
//! score 40%, threshold 10%, compare 10%) from several closed-loop client
//! threads **while the write loop slides the update window** — the
//! serving-layer analogue of the paper's "edges consumed per second under
//! load" methodology. Reports queries/sec, p50/p99 query latency, cache
//! hit rate, and the update throughput sustained under read load, as JSON
//! (default `BENCH_3.json` at the repo root; `--pr N` / `--out PATH`
//! relabel it, `--full` scales the run up).

use dppr_bench::ExperimentScale;
use dppr_graph::generators::{rmat_stream, RmatParams};
use dppr_graph::GraphStream;
use dppr_serve::{start, ServeConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const MIX: &str = "topk 0.4, score 0.4, threshold 0.1, compare 0.1";

struct LoadSpec {
    clients: usize,
    duration: Duration,
    scale: u32,
    edges: usize,
    sessions: usize,
    threads: usize,
    batch: usize,
}

fn one_query(
    addr: SocketAddr,
    rng: &mut SmallRng,
    sources: &[u32],
    n: usize,
) -> Result<Duration, String> {
    let source = sources[rng.gen_range(0..sources.len())];
    let roll: f64 = rng.gen_range(0.0..1.0);
    let target = if roll < 0.4 {
        format!("/topk?source={source}&k={}", rng.gen_range(5..25usize))
    } else if roll < 0.8 {
        format!("/score?source={source}&v={}", rng.gen_range(0..n as u32))
    } else if roll < 0.9 {
        // A handful of distinct deltas so the cache sees repeats.
        format!("/threshold?source={source}&delta=0.00{}", rng.gen_range(1..5u32))
    } else {
        format!(
            "/compare?source={source}&a={}&b={}",
            rng.gen_range(0..n as u32),
            rng.gen_range(0..n as u32)
        )
    };
    let t = Instant::now();
    let mut conn = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    write!(conn, "GET {target} HTTP/1.0\r\nHost: dppr\r\n\r\n").map_err(|e| e.to_string())?;
    let mut resp = String::new();
    conn.read_to_string(&mut resp).map_err(|e| e.to_string())?;
    if !resp.starts_with("HTTP/1.0 200") {
        return Err(format!("non-200 for {target}: {}", resp.lines().next().unwrap_or("")));
    }
    Ok(t.elapsed())
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 * 1e-6 // ns → ms
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = ExperimentScale::from_args();
    let pr: u32 = match args.iter().position(|a| a == "--pr") {
        Some(i) => args
            .get(i + 1)
            .expect("--pr requires a number")
            .parse()
            .expect("--pr requires a number"),
        None => 3,
    };
    let out_path: PathBuf = match args.iter().position(|a| a == "--out") {
        Some(i) => PathBuf::from(args.get(i + 1).expect("--out requires a path argument")),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../BENCH_{pr}.json")),
    };
    let spec = match scale {
        ExperimentScale::Quick => LoadSpec {
            clients: 4,
            duration: Duration::from_secs(2),
            scale: 12,
            edges: 60_000,
            sessions: 8,
            threads: 4,
            batch: 500,
        },
        ExperimentScale::Full => LoadSpec {
            clients: 8,
            duration: Duration::from_secs(10),
            scale: 15,
            edges: 400_000,
            sessions: 16,
            threads: 8,
            batch: 1_000,
        },
    };

    // --- server -----------------------------------------------------------
    let raw = rmat_stream(spec.scale, spec.edges, RmatParams::default(), 0xBEEF);
    let stream = GraphStream::directed(raw).permuted(7);
    let sources = dppr_serve::pick_top_degree_sources(&stream, 0.1, spec.sessions);
    let n = stream.vertex_bound();
    let handle = start(
        stream,
        0.1,
        &sources,
        ServeConfig {
            threads: spec.threads,
            batch: spec.batch,
            epsilon: 1e-4,
            cache_capacity: 4_096,
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr = handle.addr();
    eprintln!(
        "serving {} sessions over n={n} at {addr}; {} clients for {:?}",
        sources.len(),
        spec.clients,
        spec.duration
    );

    // --- closed-loop clients ---------------------------------------------
    let clients: Vec<_> = (0..spec.clients)
        .map(|c| {
            let sources = sources.clone();
            let duration = spec.duration;
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xAB00 + c as u64);
                let mut latencies_ns: Vec<u64> = Vec::new();
                let mut errors = 0u64;
                let until = Instant::now() + duration;
                while Instant::now() < until {
                    match one_query(addr, &mut rng, &sources, n) {
                        Ok(lat) => latencies_ns.push(lat.as_nanos() as u64),
                        Err(e) => {
                            errors += 1;
                            eprintln!("client {c}: {e}");
                        }
                    }
                }
                (latencies_ns, errors)
            })
        })
        .collect();

    let mut latencies: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for c in clients {
        let (mut l, e) = c.join().expect("client thread");
        latencies.append(&mut l);
        errors += e;
    }
    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let qps = total as f64 / spec.duration.as_secs_f64();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    // --- server-side numbers ---------------------------------------------
    let report = handle.join();
    eprintln!(
        "{total} queries ({qps:.0}/s, p50 {p50:.3} ms, p99 {p99:.3} ms, {errors} errors); \
         {} slides, {:.0} updates/s under load; cache hit rate {:.3}",
        report.slides,
        report.updates_per_sec,
        report.cache.hit_rate()
    );

    // --- JSON -------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"dppr-serve-load/v1\",\n");
    json.push_str(&format!("  \"pr\": {pr},\n"));
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            ExperimentScale::Quick => "quick",
            ExperimentScale::Full => "full",
        }
    ));
    json.push_str(&format!(
        "  \"server\": {{ \"stream\": \"rmat_stream(scale={}, m={}, seed=0xBEEF)\", \"vertices\": {n}, \"sessions\": {}, \"threads\": {}, \"batch\": {}, \"epsilon\": 1e-4, \"cache_capacity\": 4096 }},\n",
        spec.scale,
        spec.edges,
        sources.len(),
        spec.threads,
        spec.batch
    ));
    json.push_str(&format!(
        "  \"load\": {{ \"clients\": {}, \"duration_secs\": {}, \"mix\": \"{MIX}\" }},\n",
        spec.clients,
        spec.duration.as_secs()
    ));
    json.push_str(&format!(
        "  \"queries\": {{ \"total\": {total}, \"per_sec\": {qps:.0}, \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}, \"errors\": {errors} }},\n"
    ));
    json.push_str(&format!(
        "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.4} }},\n",
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
        report.cache.hit_rate()
    ));
    json.push_str(&format!(
        "  \"updates_under_load\": {{ \"slides\": {}, \"offered\": {}, \"applied\": {}, \"updates_per_sec\": {:.0}, \"stream_done\": {} }},\n",
        report.slides,
        report.updates_offered,
        report.updates_applied,
        report.updates_per_sec, report.stream_done
    ));
    json.push_str(&format!("  \"epoch\": {}\n", report.epoch));
    json.push_str("}\n");

    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", out_path.display()));
    println!("{json}");
    eprintln!("wrote {}", out_path.display());

    assert!(errors == 0, "{errors} failed queries during the load run");
}
