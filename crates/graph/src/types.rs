//! Shared vertex/edge types for the dynamic graph model (paper §2.2).

/// Vertex identifier. The paper's largest graph (Twitter) has 41.6M vertices,
/// well within `u32`; using 32-bit ids halves adjacency memory traffic, which
/// matters for the push kernels (see the Rust perf-book notes on smaller
/// integer types).
pub type VertexId = u32;

/// The operation carried by one element of an update batch `ΔEt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeOp {
    /// Insert the directed edge `src → dst`.
    Insert,
    /// Delete the directed edge `src → dst`.
    Delete,
}

impl EdgeOp {
    /// The `op` scalar of the paper's Lemma 3: `+1` for insertion, `−1` for
    /// deletion.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            EdgeOp::Insert => 1.0,
            EdgeOp::Delete => -1.0,
        }
    }
}

/// One edge update `(u, v, op)` of the dynamic graph model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeUpdate {
    /// Tail of the directed edge (`u` in the paper).
    pub src: VertexId,
    /// Head of the directed edge (`v` in the paper).
    pub dst: VertexId,
    /// Insert or delete.
    pub op: EdgeOp,
}

impl EdgeUpdate {
    /// Convenience constructor for an insertion.
    #[inline]
    pub fn insert(src: VertexId, dst: VertexId) -> Self {
        EdgeUpdate { src, dst, op: EdgeOp::Insert }
    }

    /// Convenience constructor for a deletion.
    #[inline]
    pub fn delete(src: VertexId, dst: VertexId) -> Self {
        EdgeUpdate { src, dst, op: EdgeOp::Delete }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_signs_match_lemma_3() {
        assert_eq!(EdgeOp::Insert.sign(), 1.0);
        assert_eq!(EdgeOp::Delete.sign(), -1.0);
    }

    #[test]
    fn update_constructors() {
        let i = EdgeUpdate::insert(1, 2);
        assert_eq!(i, EdgeUpdate { src: 1, dst: 2, op: EdgeOp::Insert });
        let d = EdgeUpdate::delete(3, 4);
        assert_eq!(d, EdgeUpdate { src: 3, dst: 4, op: EdgeOp::Delete });
    }
}
