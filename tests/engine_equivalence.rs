//! Cross-engine equivalence over full sliding-window runs: every
//! local-update engine (sequential, all four parallel variants, Ligra)
//! must maintain an ε-accurate estimate of the same exact vector, hence
//! pairwise within 2ε.

use dppr::core::{
    exact_ppr, max_invariant_violation, DynamicPprEngine, ParallelEngine, PprConfig,
    PushVariant, SeqEngine, UpdateMode,
};
use dppr::graph::generators::{barabasi_albert, undirected_to_directed};
use dppr::graph::GraphStream;
use dppr::stream::StreamDriver;
use dppr::vc::LigraEngine;

const EPS: f64 = 1e-4;

fn stream() -> GraphStream {
    let edges = undirected_to_directed(&barabasi_albert(400, 4, 31));
    GraphStream::directed(edges).permuted(5)
}

fn run(engine: &mut dyn DynamicPprEngine) -> (Vec<f64>, dppr::graph::DynamicGraph) {
    let mut driver = StreamDriver::new(stream(), 0.1);
    driver.bootstrap(engine);
    let summary = driver.run_slides(engine, 100, 12);
    assert_eq!(summary.slides, 12);
    (engine.estimates(), driver.graph().clone())
}

#[test]
fn all_engines_agree_and_match_ground_truth() {
    let cfg = PprConfig::new(0, 0.15, EPS);
    let mut engines: Vec<Box<dyn DynamicPprEngine>> = vec![
        Box::new(SeqEngine::new(cfg, UpdateMode::Batched)),
        Box::new(ParallelEngine::new(cfg, PushVariant::OPT)),
        Box::new(ParallelEngine::new(cfg, PushVariant::EAGER)),
        Box::new(ParallelEngine::new(cfg, PushVariant::DUP_DETECT)),
        Box::new(ParallelEngine::new(cfg, PushVariant::VANILLA)),
        Box::new(LigraEngine::new(cfg)),
    ];
    let mut results = Vec::new();
    for engine in &mut engines {
        let name = engine.name();
        let (est, graph) = run(engine.as_mut());
        results.push((name, est, graph));
    }

    // Every engine saw the same stream, so the final graphs coincide.
    let (_, ref_est, ref_graph) = &results[0];
    let truth = exact_ppr(ref_graph, 0, 0.15, 1e-13);
    for (name, est, graph) in &results {
        assert_eq!(
            graph.num_edges(),
            ref_graph.num_edges(),
            "{name} diverged in graph state"
        );
        for (v, &t) in truth.iter().enumerate() {
            let e = est.get(v).copied().unwrap_or(0.0);
            assert!(
                (e - t).abs() <= EPS + 1e-10,
                "{name}: vertex {v} err {} > ε",
                (e - t).abs()
            );
            assert!(
                (e - ref_est.get(v).copied().unwrap_or(0.0)).abs() <= 2.0 * EPS + 1e-10,
                "{name}: vertex {v} disagrees with reference beyond 2ε"
            );
        }
    }
}

#[test]
fn parallel_engine_state_passes_invariant_check_after_every_slide() {
    let cfg = PprConfig::new(3, 0.15, EPS);
    let mut engine = ParallelEngine::new(cfg, PushVariant::OPT);
    let mut driver = StreamDriver::new(stream(), 0.1);
    driver.bootstrap(&mut engine);
    for _ in 0..10 {
        let summary = driver.run_slides(&mut engine, 50, 1);
        if summary.slides == 0 {
            break;
        }
        assert!(max_invariant_violation(driver.graph(), engine.state()) < 1e-9);
        assert!(engine.state().converged());
    }
}

#[test]
fn dedicated_pools_match_global_pool() {
    let cfg = PprConfig::new(0, 0.15, EPS);
    let mut a = ParallelEngine::new(cfg, PushVariant::OPT);
    let mut b = ParallelEngine::with_threads(cfg, PushVariant::OPT, 3);
    let (ea, _) = run(&mut a);
    let (eb, _) = run(&mut b);
    for v in 0..ea.len().max(eb.len()) {
        let x = ea.get(v).copied().unwrap_or(0.0);
        let y = eb.get(v).copied().unwrap_or(0.0);
        assert!((x - y).abs() <= 2.0 * EPS + 1e-10, "vertex {v}");
    }
}
