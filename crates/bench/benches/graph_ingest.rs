//! Duplicate-checked ingest of a power-law (R-MAT) edge stream:
//! degree-adaptive membership (the production path) vs the old-style
//! linear scan at every degree ([`DynamicGraph::new_linear_scan`]).
//!
//! The stream is a **raw** R-MAT sample stream ([`rmat_stream`]):
//! duplicates are kept, as in real edge arrival (the update model treats a
//! re-inserted edge as a no-op, so ingest must check every arrival). The
//! parameterization is source-skewed and destination-broad — the
//! "celebrity" regime of follower graphs, where a handful of accounts
//! receive a large share of all arrivals — which is precisely where the
//! linear scan goes quadratic: every arrival at a hub re-scans the hub's
//! whole neighbor span. The adaptive path promotes hubs to hash
//! membership and stays amortized O(1) per arrival.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dppr_graph::generators::{rmat_stream, RmatParams};
use dppr_graph::DynamicGraph;

const SCALE: u32 = 14; // 16384 vertices
const EDGES: usize = 100_000;

/// Source-skewed, destination-broad quadrants: the per-level source-0
/// probability is a+b = 0.97 (hub sources dominate arrivals) while the
/// destination marginal stays close to uniform, so hub out-spans grow to
/// >10k distinct neighbors instead of being capped by destination dedup.
const SKEW: RmatParams = RmatParams { a: 0.57, b: 0.40, c: 0.02, d: 0.01 };

fn edge_stream() -> Vec<(u32, u32)> {
    rmat_stream(SCALE, EDGES, SKEW, 0xD0D0)
}

fn ingest(mut g: DynamicGraph, edges: &[(u32, u32)]) -> DynamicGraph {
    for &(u, v) in edges {
        g.insert_edge(u, v);
    }
    g
}

fn bench_graph_ingest(c: &mut Criterion) {
    let edges = edge_stream();
    let mut group = c.benchmark_group("graph_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges.len() as u64));

    group.bench_function("degree_adaptive", |b| {
        b.iter_batched(
            DynamicGraph::new,
            |g| ingest(g, &edges),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("linear_scan", |b| {
        b.iter_batched(
            DynamicGraph::new_linear_scan,
            |g| ingest(g, &edges),
            BatchSize::LargeInput,
        )
    });

    // All-duplicate replay: isolates the membership check (nothing is
    // mutated, every arrival is already present).
    group.bench_function("reinsert_degree_adaptive", |b| {
        b.iter_batched(
            || ingest(DynamicGraph::new(), &edges),
            |g| ingest(g, &edges),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("reinsert_linear_scan", |b| {
        b.iter_batched(
            || ingest(DynamicGraph::new_linear_scan(), &edges),
            |g| ingest(g, &edges),
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_graph_ingest);
criterion_main!(benches);
