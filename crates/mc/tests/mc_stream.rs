//! Statistical and structural tests for the Monte-Carlo engine across
//! full sliding-window runs.

use dppr_core::{DynamicPprEngine, PprConfig};
use dppr_graph::generators::erdos_renyi;
use dppr_graph::{DynamicGraph, EdgeUpdate, GraphStream, SlidingWindow};
use dppr_mc::{endpoint_distribution, MonteCarloEngine, MonteCarloPpr};

#[test]
fn stays_accurate_across_many_slides() {
    let stream = GraphStream::directed(erdos_renyi(25, 500, 77)).permuted(5);
    let mut window = SlidingWindow::new(stream, 0.2);
    let cfg = PprConfig::new(0, 0.2, 0.05);
    let mut eng = MonteCarloEngine::new(cfg, 30_000, 9);
    let mut g = DynamicGraph::new();
    eng.apply_batch(&mut g, &window.initial_updates());
    while let Some(batch) = window.slide(80) {
        eng.apply_batch(&mut g, &batch);
    }
    eng.walks().check_consistency().unwrap();
    let exact = endpoint_distribution(&g, 0, 0.2, 1e-13);
    for v in 0..g.num_vertices() as u32 {
        let err = (eng.estimate(v) - exact[v as usize]).abs();
        assert!(err < 0.03, "vertex {v}: err {err}");
    }
    // Estimates remain a probability distribution.
    let total: f64 = eng.estimates().iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn rebuild_equals_incremental_distributionally() {
    // Incremental maintenance and a from-scratch rebuild on the final
    // graph are different samples of the same distribution: both must be
    // close to the exact endpoint distribution.
    let edges = erdos_renyi(20, 150, 3);
    let mut g = DynamicGraph::new();
    let mut incremental = MonteCarloPpr::new(0, 0.25, 40_000, 1);
    for &(u, v) in &edges {
        g.insert_edge(u, v);
        incremental.on_update(&g, u);
    }
    let mut rebuilt = MonteCarloPpr::new(0, 0.25, 40_000, 2);
    rebuilt.rebuild(&g);
    rebuilt.check_consistency().unwrap();
    let exact = endpoint_distribution(&g, 0, 0.25, 1e-13);
    for v in 0..g.num_vertices() as u32 {
        let e = exact[v as usize];
        assert!((incremental.estimate(v) - e).abs() < 0.025, "incremental at {v}");
        assert!((rebuilt.estimate(v) - e).abs() < 0.025, "rebuilt at {v}");
    }
}

#[test]
fn walk_count_is_invariant_under_updates() {
    let mut g = DynamicGraph::new();
    let mut mc = MonteCarloPpr::new(0, 0.3, 5_000, 4);
    assert_eq!(mc.num_walks(), 5_000);
    for (u, v) in erdos_renyi(15, 80, 6) {
        g.insert_edge(u, v);
        mc.on_update(&g, u);
        let total: f64 = mc.estimates().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass leaked after update");
    }
    assert_eq!(mc.num_walks(), 5_000);
}

#[test]
fn update_not_touching_source_component_is_cheap() {
    // Walks live in the source's out-component; updates elsewhere must
    // not change any estimate.
    let mut g = DynamicGraph::from_edges([(0, 1), (1, 0)]);
    let mut mc = MonteCarloPpr::new(0, 0.3, 10_000, 8);
    mc.rebuild(&g);
    let before = mc.estimates();
    // Island 5 ⇄ 6, unreachable from 0.
    g.insert_edge(5, 6);
    mc.on_update(&g, 5);
    g.insert_edge(6, 5);
    mc.on_update(&g, 6);
    let after = mc.estimates();
    assert_eq!(&before[..], &after[..before.len()]);
    assert_eq!(mc.estimate(5), 0.0);
}

#[test]
fn engine_trait_counters_report_batches() {
    let cfg = PprConfig::new(0, 0.2, 0.1);
    let mut eng = MonteCarloEngine::new(cfg, 1_000, 3);
    let mut g = DynamicGraph::new();
    let stats = eng.apply_batch(&mut g, &[EdgeUpdate::insert(0, 1)]);
    assert_eq!(stats.applied, 1);
    assert_eq!(stats.counters.batches, 1);
    assert_eq!(eng.name(), "Monte-Carlo");
    assert_eq!(eng.config().source, 0);
}
