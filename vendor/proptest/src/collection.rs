//! `prop::collection` — collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Size specification for [`vec`]: an exact length or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty proptest size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// `prop::collection::vec(element, size)` — a `Vec` of generated elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::btree_set(element, size)` — a `BTreeSet` with a
/// size drawn from `size`. Duplicates are retried a bounded number of
/// times, then the (smaller) set is returned, matching real proptest's
/// tolerance for narrow element domains.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = std::collections::BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        let mut set = std::collections::BTreeSet::new();
        let mut tries = 0;
        while set.len() < target && tries < 10 * target.max(1) {
            set.insert(self.element.generate(rng));
            tries += 1;
        }
        set
    }
}

/// `prop::collection::hash_set(element, size)`, same semantics.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: std::hash::Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: std::hash::Hash + Eq,
{
    type Value = std::collections::HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        let mut set = std::collections::HashSet::new();
        let mut tries = 0;
        while set.len() < target && tries < 10 * target.max(1) {
            set.insert(self.element.generate(rng));
            tries += 1;
        }
        set
    }
}
