//! Barabási–Albert preferential attachment.

use crate::types::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates an **undirected** Barabási–Albert graph with `n` vertices where
/// each arriving vertex attaches to `m_per_node` distinct existing vertices
/// with probability proportional to their degree. Returns each undirected
/// edge once as `(u, v)`; callers wanting the paper's directed convention
/// should pass the result through
/// [`super::undirected_to_directed`].
///
/// The implementation uses the standard endpoint-list trick: sampling a
/// uniform element of the flattened endpoint multiset is exactly
/// degree-proportional sampling, so generation is O(n·m) with no degree
/// bookkeeping.
pub fn barabasi_albert(n: VertexId, m_per_node: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let m0 = (m_per_node.max(1) + 1) as VertexId; // seed clique size
    assert!(n >= m0, "need n >= {m0} vertices for m = {m_per_node}");
    let mut rng = SmallRng::seed_from_u64(seed);

    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    // Endpoint multiset: vertex v appears deg(v) times.
    let mut endpoints: Vec<VertexId> = Vec::new();
    // Seed with a clique on m0 vertices so early degrees are non-zero.
    for u in 0..m0 {
        for v in (u + 1)..m0 {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    let mut chosen: Vec<VertexId> = Vec::with_capacity(m_per_node);
    for v in m0..n {
        chosen.clear();
        // Sample m distinct degree-proportional targets by rejection.
        while chosen.len() < m_per_node {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push((t, v));
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    edges
}
