//! Sliding-window experiment harness (the methodology of the paper's §5.1).
//!
//! A [`StreamDriver`] owns the graph and the sliding window; engines
//! implementing [`dppr_core::DynamicPprEngine`] are bootstrapped with the
//! initial window (the first 10% of the edge permutation) and then driven
//! slide by slide, each slide inserting `k` edges and deleting the `k`
//! oldest. The driver records per-slide latency and counter deltas and
//! summarizes sustained throughput — the quantities plotted in Figures
//! 4–10.

pub mod driver;
pub mod source;

pub use driver::{RunSummary, SlideRecord, StreamDriver};
pub use source::pick_top_degree_source;
