//! Figure 7 — effect of the source vertex's degree.
//!
//! Sources are drawn from the top-10 / top-1K / top-100K out-degree
//! buckets of the initial window (the paper's third bucket is top-1M; our
//! graphs are smaller, so the widest bucket is scaled accordingly — it
//! plays the same role: mostly low-degree sources). Paper's shape: higher
//! degree sources cost more for everyone, and the parallel advantage is
//! largest for high-degree sources.
//!
//! Usage: `fig7_source [--full]`

use dppr_bench::{ms, run_engine, EngineKind, ExperimentScale, Workload};
use dppr_core::PushVariant;
use std::time::Duration;

fn main() {
    let scale = ExperimentScale::from_args();
    let (batch, budget, buckets): (usize, Duration, &[usize]) = match scale {
        ExperimentScale::Quick => (500, Duration::from_secs(3), &[10, 1_000, 100_000]),
        ExperimentScale::Full => (5_000, Duration::from_secs(15), &[10, 1_000, 100_000]),
    };
    let engines = [
        EngineKind::CpuSeq,
        EngineKind::CpuMt(PushVariant::OPT),
        EngineKind::Ligra,
    ];
    println!("# Figure 7: effect of source-vertex degree (batch {batch})");
    println!("dataset\tbucket\tsource\tsource_outdeg\tengine\tslides\tmean_ms\tspeedup_vs_seq");
    for ds in scale.datasets() {
        let eps = ds.default_epsilon;
        for &bucket in buckets {
            let workload = Workload::prepare(ds.clone(), 4, 0.1, bucket);
            // Report the chosen source's degree in the initial window.
            let mut probe = dppr_graph::DynamicGraph::new();
            {
                let w = dppr_graph::SlidingWindow::new(workload.dataset.stream(workload.seed), 0.1);
                for u in w.initial_updates() {
                    probe.apply(u);
                }
            }
            let deg = probe.out_degree(workload.source);
            let mut seq_ms = None;
            for kind in engines {
                let summary =
                    run_engine(kind, &workload, eps, batch, scale.slides(), budget);
                if summary.slides == 0 {
                    continue;
                }
                let mean = ms(summary.mean_latency());
                if kind == EngineKind::CpuSeq {
                    seq_ms = Some(mean);
                }
                println!(
                    "{}\ttop-{}\t{}\t{}\t{}\t{}\t{:.3}\t{:.2}",
                    workload.name,
                    bucket,
                    workload.source,
                    deg,
                    kind.label(),
                    summary.slides,
                    mean,
                    seq_ms.unwrap_or(mean) / mean.max(1e-9),
                );
            }
        }
    }
}
