//! Property tests for histogram merging and bucket-boundary behavior
//! (ISSUE 8 satellite): merged shard histograms must report exactly the
//! same snapshot — hence the same percentiles — as a single histogram
//! fed the union of the samples.

use dppr_obs::{bounds, bucket_index, HistSnapshot, Histogram, LocalHistogram};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Split a sample set across any number of "shard" histograms, merge
    /// the snapshots: identical to one histogram fed the union.
    #[test]
    fn merged_shards_equal_union(
        values in prop::collection::vec(0u64..u64::MAX, 0..200),
        shards in 1usize..8,
    ) {
        let union = snapshot_of(&values);
        let per_shard: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            per_shard[i % shards].record(v);
        }
        let mut merged = HistSnapshot::default();
        for h in &per_shard {
            merged.merge(&h.snapshot());
        }
        prop_assert_eq!(&merged, &union);
        for q in [0.5, 0.9, 0.99, 0.999] {
            prop_assert_eq!(merged.quantile(q), union.quantile(q));
        }
    }

    /// Thread-local accumulation then flush is indistinguishable from
    /// direct shared-atomic recording.
    #[test]
    fn local_flush_equals_direct(values in prop::collection::vec(0u64..u64::MAX, 0..200)) {
        let direct = snapshot_of(&values);
        let shared = Histogram::new();
        let mut local = LocalHistogram::new();
        for &v in &values {
            local.record(v);
        }
        local.flush(&shared);
        prop_assert!(local.is_empty());
        prop_assert_eq!(shared.snapshot(), direct);
    }

    /// Indexing is the partition the bounds define: every value lands in
    /// the first bucket whose bound is >= the value.
    #[test]
    fn bucket_index_respects_bounds(v in 0u64..u64::MAX) {
        let b = bounds();
        let i = bucket_index(v);
        if i < b.len() {
            prop_assert!(b[i] >= v);
            if i > 0 {
                prop_assert!(b[i - 1] < v);
            }
        } else {
            // Overflow bucket: above every finite bound.
            prop_assert!(v > *b.last().unwrap());
        }
    }

    /// A value recorded exactly on a bucket bound is reported exactly by
    /// every quantile (single-sample histogram).
    #[test]
    fn exact_boundaries_roundtrip(idx in 0usize..200) {
        let bound = bounds()[idx];
        let h = Histogram::new();
        h.record(bound);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.999, 1.0] {
            prop_assert_eq!(s.quantile(q), bound);
        }
    }
}

#[test]
fn edge_values_zero_and_max() {
    let h = Histogram::new();
    h.record(0);
    h.record(u64::MAX);
    let s = h.snapshot();
    assert_eq!(s.count, 2);
    assert_eq!(s.quantile(0.25), 0, "0 lands in the le=0 bucket");
    assert_eq!(s.quantile(1.0), u64::MAX, "u64::MAX lands in the overflow bucket");
    assert_eq!(s.sum, u64::MAX, "0 + MAX");
    // Merging with an empty snapshot changes nothing.
    let mut m = HistSnapshot::default();
    m.merge(&s);
    m.merge(&HistSnapshot::default());
    assert_eq!(m.quantile(0.25), 0);
    assert_eq!(m.quantile(1.0), u64::MAX);
}
