//! Checkpointing a maintained PPR state.
//!
//! The indexing systems the paper aims to serve (HubPPR [46], distributed
//! exact PPR [18]) keep pre-computed PPR vectors on disk and maintain them
//! incrementally. This module provides the minimal durable format for
//! that: a plain-text, versioned snapshot of `(config, Ps, Rs)` that can
//! be written after any converged batch and re-attached to a graph later
//! — useful for restart, for shipping states between the sequential and
//! parallel engines, and for debugging.
//!
//! Format (line-oriented, `f64` round-trips via hex bits for exactness):
//!
//! ```text
//! dppr-state v1
//! source <u32> alpha <hex-bits> epsilon <hex-bits> len <usize>
//! <p-bits> <r-bits>        (one line per vertex)
//! ```

use crate::config::PprConfig;
use crate::state::PprState;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &str = "dppr-state v1";

/// Writes a snapshot of `state` to `w`.
pub fn write_state<W: Write>(state: &PprState, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    let cfg = state.config();
    writeln!(w, "{MAGIC}")?;
    writeln!(
        w,
        "source {} alpha {:016x} epsilon {:016x} len {}",
        cfg.source,
        cfg.alpha.to_bits(),
        cfg.epsilon.to_bits(),
        state.len()
    )?;
    for v in 0..state.len() as u32 {
        writeln!(
            w,
            "{:016x} {:016x}",
            state.p(v).to_bits(),
            state.r(v).to_bits()
        )?;
    }
    w.flush()
}

/// Reads a snapshot back. The returned state is bit-identical to the one
/// written.
pub fn read_state<R: Read>(r: R) -> io::Result<PprState> {
    let mut lines = BufReader::new(r).lines();
    let mut next = |what: &str| -> io::Result<String> {
        lines
            .next()
            .ok_or_else(|| bad(format!("unexpected EOF reading {what}")))?
    };
    let magic = next("header")?;
    if magic.trim() != MAGIC {
        return Err(bad(format!("bad magic {magic:?}")));
    }
    let header = next("config")?;
    let tokens: Vec<&str> = header.split_whitespace().collect();
    if tokens.len() != 8
        || tokens[0] != "source"
        || tokens[2] != "alpha"
        || tokens[4] != "epsilon"
        || tokens[6] != "len"
    {
        return Err(bad(format!("malformed config line {header:?}")));
    }
    let source: u32 = tokens[1].parse().map_err(|_| bad("bad source".into()))?;
    let alpha = f64::from_bits(parse_hex(tokens[3])?);
    let epsilon = f64::from_bits(parse_hex(tokens[5])?);
    let len: usize = tokens[7].parse().map_err(|_| bad("bad len".into()))?;
    if !(alpha > 0.0 && alpha < 1.0) || epsilon <= 0.0 {
        return Err(bad(format!("invalid parameters α={alpha} ε={epsilon}")));
    }
    let mut state = PprState::new(PprConfig::new(source, alpha, epsilon));
    state.ensure_len(len);
    for v in 0..len as u32 {
        let line = next("vertex row")?;
        let mut it = line.split_whitespace();
        let p = f64::from_bits(parse_hex(
            it.next().ok_or_else(|| bad("missing p".into()))?,
        )?);
        let r = f64::from_bits(parse_hex(
            it.next().ok_or_else(|| bad("missing r".into()))?,
        )?);
        state.set_p(v, p);
        state.set_r(v, r);
    }
    Ok(state)
}

/// Writes a snapshot to a file, crash-safely: the bytes go to a sibling
/// `<name>.tmp` file which is fsynced and atomically renamed into place,
/// so a crash mid-write leaves either the old snapshot or the new one —
/// never a truncated hybrid.
pub fn save_state<P: AsRef<Path>>(state: &PprState, path: P) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| bad(format!("not a file path: {}", path.display())))?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let file = std::fs::File::create(&tmp)?;
        write_state(state, &file)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads a snapshot from a file.
pub fn load_state<P: AsRef<Path>>(path: P) -> io::Result<PprState> {
    read_state(std::fs::File::open(path)?)
}

fn parse_hex(tok: &str) -> io::Result<u64> {
    u64::from_str_radix(tok, 16).map_err(|_| bad(format!("bad hex field {tok:?}")))
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counters;
    use crate::invariant::{apply_update, max_invariant_violation};
    use crate::par::{parallel_local_push, ParPushBuffers};
    use crate::variants::PushVariant;
    use dppr_graph::generators::erdos_renyi;
    use dppr_graph::{DynamicGraph, EdgeUpdate};

    fn converged_pair() -> (DynamicGraph, PprState) {
        let cfg = PprConfig::new(0, 0.15, 1e-4);
        let mut st = PprState::new(cfg);
        let mut g = DynamicGraph::new();
        let c = Counters::new();
        let mut seeds = Vec::new();
        for (u, v) in erdos_renyi(40, 300, 5) {
            if apply_update(&mut g, &mut st, EdgeUpdate::insert(u, v), &c) {
                seeds.push(u);
            }
        }
        let mut bufs = ParPushBuffers::new();
        parallel_local_push(&g, &st, PushVariant::OPT, &seeds, &c, &mut bufs);
        (g, st)
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let (_, st) = converged_pair();
        let mut buf = Vec::new();
        write_state(&st, &mut buf).unwrap();
        let back = read_state(&buf[..]).unwrap();
        assert_eq!(back.config(), st.config());
        assert_eq!(back.len(), st.len());
        assert_eq!(back.estimates(), st.estimates());
        assert_eq!(back.residuals(), st.residuals());
    }

    #[test]
    fn restored_state_resumes_maintenance() {
        let (mut g, st) = converged_pair();
        let mut buf = Vec::new();
        write_state(&st, &mut buf).unwrap();
        let mut resumed = read_state(&buf[..]).unwrap();
        // Keep updating through the resumed state.
        let c = Counters::new();
        let mut seeds = Vec::new();
        for (u, v) in erdos_renyi(40, 60, 77) {
            if apply_update(&mut g, &mut resumed, EdgeUpdate::insert(u, v), &c) {
                seeds.push(u);
            }
        }
        let mut bufs = ParPushBuffers::new();
        parallel_local_push(&g, &resumed, PushVariant::OPT, &seeds, &c, &mut bufs);
        assert!(resumed.converged());
        assert!(max_invariant_violation(&g, &resumed) < 1e-9);
    }

    #[test]
    fn file_roundtrip() {
        let (_, st) = converged_pair();
        let dir = std::env::temp_dir().join("dppr_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.dppr");
        save_state(&st, &path).unwrap();
        let back = load_state(&path).unwrap();
        assert_eq!(back.estimates(), st.estimates());
        // The staging file was renamed away, not left behind.
        assert!(!dir.join("state.dppr.tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_overwrites_atomically_and_truncation_is_a_clean_error() {
        let (_, st) = converged_pair();
        let dir = std::env::temp_dir().join("dppr_persist_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.dppr");
        // Round-trip over an existing file (the rename overwrites).
        save_state(&st, &path).unwrap();
        save_state(&st, &path).unwrap();
        let back = load_state(&path).unwrap();
        assert_eq!(back.estimates(), st.estimates());
        assert_eq!(back.residuals(), st.residuals());
        // A torn file — what a non-atomic writer could leave after a crash
        // — must come back as io::ErrorKind::InvalidData, not a panic.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_state(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // A directory path is a clean error too.
        assert!(save_state(&st, dir.join("..")).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(read_state(&b"nonsense"[..]).is_err());
        assert!(read_state(&b"dppr-state v1\nsource x alpha 0 epsilon 0 len 0\n"[..]).is_err());
        // Truncated vertex rows.
        let (_, st) = converged_pair();
        let mut buf = Vec::new();
        write_state(&st, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_state(&buf[..]).is_err());
        // Special values survive.
        let cfg = PprConfig::new(0, 0.5, 0.1);
        let mut tiny = PprState::new(cfg);
        tiny.ensure_len(2);
        tiny.set_p(1, f64::MIN_POSITIVE);
        tiny.set_r(1, -0.0);
        let mut buf = Vec::new();
        write_state(&tiny, &mut buf).unwrap();
        let back = read_state(&buf[..]).unwrap();
        assert_eq!(back.p(1).to_bits(), f64::MIN_POSITIVE.to_bits());
        assert_eq!(back.r(1).to_bits(), (-0.0f64).to_bits());
    }
}
