//! Named-metric registry and Prometheus text exposition (format 0.0.4).
//!
//! Registration takes a lock; recording never does — counters and
//! gauges are plain atomics behind `Arc`, histograms are
//! [`crate::Histogram`]. Rendering walks the registry under the lock,
//! loading each metric relaxed, and groups series by family so `# HELP`
//! / `# TYPE` appear exactly once per family even when several labeled
//! series share a name.

use crate::hist::{HistSnapshot, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Monotone counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Instantaneous value; may go down.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// How histogram bucket bounds are rendered: raw integers (iteration
/// counts) or nanoseconds exposed as seconds per Prometheus convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    Raw,
    Nanos,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>, Unit),
}

struct Entry {
    /// Family name, e.g. `dppr_http_request_seconds`.
    name: &'static str,
    help: &'static str,
    /// Optional single `key="value"` label pair.
    label: Option<(&'static str, String)>,
    metric: Metric,
}

/// The process-wide metric registry. Cloning the `Arc` handles returned
/// by the `register_*` methods is the only way to record; the registry
/// itself is only walked at scrape time.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let c = Arc::new(Counter::default());
        self.push(name, help, None, Metric::Counter(c.clone()));
        c
    }

    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::default());
        self.push(name, help, None, Metric::Gauge(g.clone()));
        g
    }

    /// A labeled gauge series, e.g. `dppr_shard_connections{shard="2"}`.
    pub fn gauge_with_label(
        &self,
        name: &'static str,
        help: &'static str,
        key: &'static str,
        value: impl Into<String>,
    ) -> Arc<Gauge> {
        let g = Arc::new(Gauge::default());
        self.push(name, help, Some((key, value.into())), Metric::Gauge(g.clone()));
        g
    }

    pub fn histogram(&self, name: &'static str, help: &'static str, unit: Unit) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.push(name, help, None, Metric::Histogram(h.clone(), unit));
        h
    }

    /// A labeled histogram series, e.g.
    /// `dppr_slide_apply_seconds_bucket{write_shard="2",le="0.001"}`.
    /// The label is merged with the `le` bound on bucket lines and
    /// rendered plainly on `_sum` / `_count`.
    pub fn histogram_with_label(
        &self,
        name: &'static str,
        help: &'static str,
        unit: Unit,
        key: &'static str,
        value: impl Into<String>,
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.push(name, help, Some((key, value.into())), Metric::Histogram(h.clone(), unit));
        h
    }

    fn push(
        &self,
        name: &'static str,
        help: &'static str,
        label: Option<(&'static str, String)>,
        metric: Metric,
    ) {
        self.entries.lock().unwrap().push(Entry { name, help, label, metric });
    }

    /// Look up a registered histogram by family name (for report
    /// generators that want percentiles out of the live server).
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistSnapshot> {
        let entries = self.entries.lock().unwrap();
        entries.iter().find_map(|e| match (&e.metric, e.name == name) {
            (Metric::Histogram(h, _), true) => Some(h.snapshot()),
            _ => None,
        })
    }

    /// Number of distinct metric families registered so far.
    pub fn family_count(&self) -> usize {
        let entries = self.entries.lock().unwrap();
        let mut names: Vec<&'static str> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    /// Render every registered metric in Prometheus text format.
    /// `extra` lets the caller append families computed at scrape time
    /// (values that already live elsewhere, like `ServerStats` atomics)
    /// without double-registering them.
    ///
    /// The registry lock is held only while values are *snapshotted*;
    /// all text formatting happens on the owned snapshot afterwards, so
    /// a slow scrape never blocks registration (and the lock's critical
    /// section stays O(metrics), not O(output bytes)).
    pub fn render_prometheus(&self, extra: &mut PromText) -> String {
        struct Snap {
            name: &'static str,
            help: &'static str,
            label: Option<(&'static str, String)>,
            value: ValueSnap,
        }
        enum ValueSnap {
            Counter(u64),
            Gauge(i64),
            Histogram(HistSnapshot, Unit),
        }
        let snaps: Vec<Snap> = {
            let entries = self.entries.lock().unwrap();
            entries
                .iter()
                .map(|e| Snap {
                    name: e.name,
                    help: e.help,
                    label: e.label.clone(),
                    value: match &e.metric {
                        Metric::Counter(c) => ValueSnap::Counter(c.get()),
                        Metric::Gauge(g) => ValueSnap::Gauge(g.get()),
                        Metric::Histogram(h, unit) => ValueSnap::Histogram(h.snapshot(), *unit),
                    },
                })
                .collect()
        };
        // Lock released; group by family preserving first-registration
        // order, then format.
        let mut out = PromText::new();
        let mut order: Vec<&'static str> = Vec::new();
        let mut families: BTreeMap<&'static str, Vec<&Snap>> = BTreeMap::new();
        for s in snaps.iter() {
            if !families.contains_key(s.name) {
                order.push(s.name);
            }
            families.entry(s.name).or_default().push(s);
        }
        for name in order {
            let group = &families[name];
            let first = group[0];
            match &first.value {
                ValueSnap::Counter(_) => out.family(name, first.help, "counter"),
                ValueSnap::Gauge(_) => out.family(name, first.help, "gauge"),
                ValueSnap::Histogram(..) => out.family(name, first.help, "histogram"),
            }
            for s in group {
                match &s.value {
                    ValueSnap::Counter(v) => out.series_u64(name, s.label.as_ref(), *v),
                    ValueSnap::Gauge(v) => out.series_i64(name, s.label.as_ref(), *v),
                    ValueSnap::Histogram(snap, unit) => {
                        out.histogram_labeled(name, s.label.as_ref(), snap, *unit)
                    }
                }
            }
        }
        out.text.push_str(&extra.text);
        std::mem::take(&mut out.text)
    }
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline get backslash-escapes.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Incremental Prometheus-text writer, shared by the registry renderer
/// and by callers exposing ad-hoc families at scrape time.
#[derive(Default)]
pub struct PromText {
    text: String,
}

impl PromText {
    pub fn new() -> Self {
        Self::default()
    }

    /// The text accumulated so far.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// Emit the `# HELP` / `# TYPE` header for a family.
    pub fn family(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.text, "# HELP {name} {help}");
        let _ = writeln!(self.text, "# TYPE {name} {kind}");
    }

    fn label_str(label: Option<&(&'static str, String)>) -> String {
        match label {
            Some((k, v)) => format!("{{{k}=\"{}\"}}", escape_label_value(v)),
            None => String::new(),
        }
    }

    pub fn series_u64(&mut self, name: &str, label: Option<&(&'static str, String)>, v: u64) {
        let _ = writeln!(self.text, "{name}{} {v}", Self::label_str(label));
    }

    pub fn series_i64(&mut self, name: &str, label: Option<&(&'static str, String)>, v: i64) {
        let _ = writeln!(self.text, "{name}{} {v}", Self::label_str(label));
    }

    pub fn series_f64(&mut self, name: &str, label: Option<&(&'static str, String)>, v: f64) {
        if v.is_finite() {
            let _ = writeln!(self.text, "{name}{} {v}", Self::label_str(label));
        } else {
            let _ = writeln!(self.text, "{name}{} NaN", Self::label_str(label));
        }
    }

    fn labels_str(labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return String::new();
        }
        let mut out = String::from("{");
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
        }
        out.push('}');
        out
    }

    /// A series line with arbitrary label pairs, e.g.
    /// `slo_burn_rate{slo="latency_p99",window="fast"} 1.4`.
    pub fn series_f64_multi(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let rendered = if v.is_finite() { v } else { f64::NAN };
        let _ = writeln!(self.text, "{name}{} {rendered}", Self::labels_str(labels));
    }

    /// [`PromText::series_f64_multi`] for integer-valued series.
    pub fn series_u64_multi(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        let _ = writeln!(self.text, "{name}{} {v}", Self::labels_str(labels));
    }

    /// One-line helpers for ad-hoc families (header + single series).
    pub fn counter_u64(&mut self, name: &str, help: &str, v: u64) {
        self.family(name, help, "counter");
        self.series_u64(name, None, v);
    }

    pub fn gauge_u64(&mut self, name: &str, help: &str, v: u64) {
        self.family(name, help, "gauge");
        self.series_u64(name, None, v);
    }

    pub fn gauge_f64(&mut self, name: &str, help: &str, v: f64) {
        self.family(name, help, "gauge");
        self.series_f64(name, None, v);
    }

    /// Render a histogram snapshot: cumulative `_bucket{le=...}` lines
    /// (only up to the last non-empty bucket, then `+Inf`), `_sum`,
    /// `_count`. `Unit::Nanos` scales bounds and sum to seconds.
    pub fn histogram(&mut self, name: &str, snap: &HistSnapshot, unit: Unit) {
        self.histogram_labeled(name, None, snap, unit);
    }

    /// Like [`PromText::histogram`] but every series carries `label`;
    /// on bucket lines it is merged ahead of the `le` bound.
    pub fn histogram_labeled(
        &mut self,
        name: &str,
        label: Option<&(&'static str, String)>,
        snap: &HistSnapshot,
        unit: Unit,
    ) {
        // `{shard="2",` on bucket lines, `{shard="2"}` on sum/count.
        let (bucket_prefix, plain) = match label {
            Some((k, v)) => {
                let inner = format!("{k}=\"{}\"", escape_label_value(v));
                (format!("{{{inner},"), format!("{{{inner}}}"))
            }
            None => ("{".to_owned(), String::new()),
        };
        for (bound, cum) in snap.cumulative_nonempty() {
            // The overflow bucket (no finite bound) is covered by the
            // closing `+Inf` line below.
            let le = match (bound, unit) {
                (Some(b), Unit::Nanos) => format!("{}", b as f64 / 1e9),
                (Some(b), Unit::Raw) => format!("{b}"),
                (None, _) => continue,
            };
            let _ = writeln!(self.text, "{name}_bucket{bucket_prefix}le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(self.text, "{name}_bucket{bucket_prefix}le=\"+Inf\"}} {}", snap.count);
        match unit {
            Unit::Nanos => {
                let _ = writeln!(self.text, "{name}_sum{plain} {}", snap.sum as f64 / 1e9);
            }
            Unit::Raw => {
                let _ = writeln!(self.text, "{name}_sum{plain} {}", snap.sum);
            }
        }
        let _ = writeln!(self.text, "{name}_count{plain} {}", snap.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_groups_families_and_escapes_labels() {
        let r = Registry::new();
        let c = r.counter("t_total", "a counter");
        let g0 = r.gauge_with_label("t_conns", "per-shard", "shard", "0");
        let g1 = r.gauge_with_label("t_conns", "per-shard", "shard", "a\"b\\c\nd");
        c.add(3);
        g0.set(7);
        g1.set(-2);
        let text = r.render_prometheus(&mut PromText::new());
        assert!(text.contains("# HELP t_total a counter\n# TYPE t_total counter\nt_total 3\n"));
        // One header for the two-series family.
        assert_eq!(text.matches("# TYPE t_conns gauge").count(), 1);
        assert!(text.contains("t_conns{shard=\"0\"} 7\n"));
        assert!(text.contains("t_conns{shard=\"a\\\"b\\\\c\\nd\"} -2\n"));
    }

    #[test]
    fn histogram_rendering_is_cumulative_and_ends_with_inf() {
        let r = Registry::new();
        let h = r.histogram("t_lat_seconds", "latency", Unit::Nanos);
        h.record(0);
        h.record(1_000_000_000); // 1s
        let text = r.render_prometheus(&mut PromText::new());
        assert!(text.contains("t_lat_seconds_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("t_lat_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("t_lat_seconds_count 2\n"));
        // The sum is in seconds.
        assert!(text.contains("t_lat_seconds_sum 1\n"));
        assert!(r.histogram_snapshot("t_lat_seconds").is_some());
        assert!(r.histogram_snapshot("nope").is_none());
    }

    #[test]
    fn multi_label_series_render_all_pairs() {
        let mut t = PromText::new();
        t.family("t_burn", "burn rates", "gauge");
        t.series_f64_multi("t_burn", &[("slo", "latency_p99"), ("window", "fast")], 1.25);
        t.series_u64_multi("t_burn_total", &[("slo", "a\"b")], 3);
        t.series_f64_multi("t_plain", &[], 0.5);
        let text = t.text;
        assert!(text.contains("t_burn{slo=\"latency_p99\",window=\"fast\"} 1.25\n"));
        assert!(text.contains("t_burn_total{slo=\"a\\\"b\"} 3\n"));
        assert!(text.contains("t_plain 0.5\n"));
    }

    #[test]
    fn family_count_dedupes_labeled_series() {
        let r = Registry::new();
        assert_eq!(r.family_count(), 0);
        r.counter("t_a_total", "a");
        r.gauge_with_label("t_b", "b", "shard", "0");
        r.gauge_with_label("t_b", "b", "shard", "1");
        r.histogram("t_c_seconds", "c", Unit::Nanos);
        assert_eq!(r.family_count(), 3);
    }

    #[test]
    fn labeled_histograms_merge_label_with_le_and_share_one_header() {
        let r = Registry::new();
        let h0 = r.histogram_with_label("t_stage_seconds", "per-shard", Unit::Nanos, "shard", "0");
        let h1 = r.histogram_with_label("t_stage_seconds", "per-shard", Unit::Nanos, "shard", "1");
        h0.record(0);
        h1.record(1_000_000_000);
        let text = r.render_prometheus(&mut PromText::new());
        assert_eq!(text.matches("# TYPE t_stage_seconds histogram").count(), 1);
        assert!(text.contains("t_stage_seconds_bucket{shard=\"0\",le=\"0\"} 1\n"));
        assert!(text.contains("t_stage_seconds_bucket{shard=\"0\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("t_stage_seconds_bucket{shard=\"1\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("t_stage_seconds_sum{shard=\"0\"} 0\n"));
        assert!(text.contains("t_stage_seconds_sum{shard=\"1\"} 1\n"));
        assert!(text.contains("t_stage_seconds_count{shard=\"1\"} 1\n"));
    }
}
