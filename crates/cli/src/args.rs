//! Minimal `--key value` / `--flag` argument parsing (no external deps).

use std::collections::HashMap;
use std::fmt;

/// A parsing or validation error with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Convenience constructor.
pub fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parsed command line: a subcommand, `--key value` options, and bare
/// `--flag`s.
#[derive(Debug, Default)]
pub struct Args {
    /// The first positional token (subcommand).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv` (excluding the program name). Tokens starting with
    /// `--` are options if followed by a non-`--` token, flags otherwise;
    /// the first bare token is the subcommand.
    pub fn parse<I, S>(argv: I) -> Result<Args, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let tokens: Vec<String> = argv.into_iter().map(Into::into).collect();
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(key) = t.strip_prefix("--") {
                if key.is_empty() {
                    return Err(err("bare `--` is not a valid option"));
                }
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    args.options.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    args.flags.push(key.to_string());
                    i += 1;
                }
            } else {
                if !args.command.is_empty() {
                    return Err(err(format!("unexpected positional argument {t:?}")));
                }
                args.command = t.clone();
                i += 1;
            }
        }
        Ok(args)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key).ok_or_else(|| err(format!("missing required option --{key}")))
    }

    /// Typed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| err(format!("invalid value for --{key}: {raw:?}"))),
        }
    }

    /// Float option with a default, rejecting `NaN` and `±inf`: `--alpha
    /// nan` would otherwise flow into the engine, where every comparison
    /// against it is false and the run silently degenerates instead of
    /// failing here with a message.
    pub fn get_finite(&self, key: &str, default: f64) -> Result<f64, CliError> {
        let v: f64 = self.get_parsed(key, default)?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(err(format!("non-finite value for --{key}: {v}")))
        }
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_options_and_flags() {
        let a = Args::parse(["run", "--batch", "100", "--full", "--eps", "1e-5"]).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.get("batch"), Some("100"));
        assert_eq!(a.get("eps"), Some("1e-5"));
        assert!(a.flag("full"));
        assert!(!a.flag("quick"));
    }

    #[test]
    fn typed_access() {
        let a = Args::parse(["x", "--k", "42"]).unwrap();
        assert_eq!(a.get_parsed("k", 0usize).unwrap(), 42);
        assert_eq!(a.get_parsed("missing", 7usize).unwrap(), 7);
        assert!(Args::parse(["x", "--k", "nope"])
            .unwrap()
            .get_parsed::<usize>("k", 0)
            .is_err());
    }

    #[test]
    fn finite_floats_reject_nan_and_inf() {
        for bad in ["nan", "NaN", "inf", "-inf", "Infinity"] {
            let a = Args::parse(["x", "--alpha", bad]).unwrap();
            assert!(a.get_finite("alpha", 0.15).is_err(), "--alpha {bad} must fail");
        }
        let a = Args::parse(["x", "--alpha", "0.2"]).unwrap();
        assert_eq!(a.get_finite("alpha", 0.15).unwrap(), 0.2);
        assert_eq!(a.get_finite("missing", 0.15).unwrap(), 0.15);
    }

    #[test]
    fn rejects_double_positional() {
        assert!(Args::parse(["a", "b"]).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = Args::parse(["x"]).unwrap();
        assert!(a.require("graph").is_err());
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // A value may not start with `--`; plain negatives are fine.
        let a = Args::parse(["x", "--delta", "-5"]).unwrap();
        assert_eq!(a.get("delta"), Some("-5"));
    }

    #[test]
    fn rejects_bare_double_dash() {
        assert!(Args::parse(["run", "--"]).is_err());
    }

    // One test per subcommand, exercising the full option line each one
    // documents in `dppr help`.

    #[test]
    fn generate_command_line() {
        let a = Args::parse([
            "generate", "--model", "ba", "--n", "10000", "--m", "5", "--seed", "1", "--out",
            "edges.txt",
        ])
        .unwrap();
        assert_eq!(a.command, "generate");
        assert_eq!(a.get_or("model", "er"), "ba");
        assert_eq!(a.get_parsed("n", 0u32).unwrap(), 10_000);
        assert_eq!(a.get_parsed("m", 0usize).unwrap(), 5);
        assert_eq!(a.get_parsed("seed", 0u64).unwrap(), 1);
        assert_eq!(a.require("out").unwrap(), "edges.txt");
    }

    #[test]
    fn info_command_line() {
        let a = Args::parse(["info", "--preset", "lj-sim"]).unwrap();
        assert_eq!(a.command, "info");
        assert_eq!(a.get("preset"), Some("lj-sim"));
        assert!(!a.flag("undirected"));

        let a = Args::parse(["info", "--graph", "edges.txt", "--undirected"]).unwrap();
        assert_eq!(a.get("graph"), Some("edges.txt"));
        assert!(a.flag("undirected"));
    }

    #[test]
    fn run_command_line() {
        let a = Args::parse([
            "run", "--preset", "small-sim", "--engine", "cpu-mt", "--variant", "opt", "--batch",
            "1000", "--slides", "20", "--alpha", "0.15", "--epsilon", "1e-5", "--top-bucket",
            "10", "--seed", "7", "--threads", "4", "--walks-per-vertex", "2", "--counters",
        ])
        .unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.get("engine"), Some("cpu-mt"));
        assert_eq!(a.get_or("variant", "vanilla"), "opt");
        assert_eq!(a.get_parsed("batch", 0usize).unwrap(), 1_000);
        assert_eq!(a.get_parsed("slides", 0usize).unwrap(), 20);
        assert_eq!(a.get_parsed("alpha", 0.0f64).unwrap(), 0.15);
        assert_eq!(a.get_parsed("epsilon", 0.0f64).unwrap(), 1e-5);
        assert_eq!(a.get_parsed("top-bucket", 0usize).unwrap(), 10);
        assert_eq!(a.get_parsed("threads", 0usize).unwrap(), 4);
        assert_eq!(a.get_parsed("walks-per-vertex", 0usize).unwrap(), 2);
        assert!(a.flag("counters"));
    }

    #[test]
    fn query_command_line() {
        let a = Args::parse([
            "query", "--graph", "edges.txt", "--source", "0", "--alpha", "0.2", "--epsilon",
            "1e-4", "--top", "10", "--threshold", "0.001", "--save-state", "state.tsv",
        ])
        .unwrap();
        assert_eq!(a.command, "query");
        assert_eq!(a.get_parsed("source", u32::MAX).unwrap(), 0);
        assert_eq!(a.get_parsed("top", 0usize).unwrap(), 10);
        assert_eq!(a.get_parsed("threshold", 0.0f64).unwrap(), 0.001);
        assert_eq!(a.get("save-state"), Some("state.tsv"));
    }

    #[test]
    fn serve_command_line() {
        let a = Args::parse([
            "serve", "--preset", "small-sim", "--port", "7171", "--threads", "4",
            "--sources", "0,3,9", "--cache-capacity", "2048", "--session-capacity", "32",
            "--alpha", "0.15", "--epsilon", "1e-4", "--batch", "500", "--max-slides",
            "100", "--slide-pause-ms", "5", "--run-secs", "60", "--seed", "7",
            "--read-timeout-ms", "5000", "--write-timeout-ms", "8000",
            "--shed-after-ms", "250", "--conn-backlog", "128",
            "--trace-sample", "10", "--trace-capacity", "512",
            "--write-shards", "4",
            "--audit-sample", "8", "--audit-interval-ms", "250",
            "--slo-p99-ms", "50", "--slo-availability", "0.999",
            "--slo-topk-overlap", "0.9",
        ])
        .unwrap();
        assert_eq!(a.command, "serve");
        assert_eq!(a.get_parsed("port", 0u16).unwrap(), 7171);
        assert_eq!(a.get_parsed("threads", 0usize).unwrap(), 4);
        assert_eq!(a.get("sources"), Some("0,3,9"));
        assert_eq!(a.get_parsed("cache-capacity", 0usize).unwrap(), 2_048);
        assert_eq!(a.get_parsed("session-capacity", 0usize).unwrap(), 32);
        assert_eq!(a.get_finite("alpha", 0.0).unwrap(), 0.15);
        assert_eq!(a.get_finite("epsilon", 0.0).unwrap(), 1e-4);
        assert_eq!(a.get_parsed("batch", 0usize).unwrap(), 500);
        assert_eq!(a.get_parsed("max-slides", 0usize).unwrap(), 100);
        assert_eq!(a.get_parsed("slide-pause-ms", 0u64).unwrap(), 5);
        assert_eq!(a.get_parsed("run-secs", 0u64).unwrap(), 60);
        assert_eq!(a.get_parsed("read-timeout-ms", 0u64).unwrap(), 5_000);
        assert_eq!(a.get_parsed("write-timeout-ms", 0u64).unwrap(), 8_000);
        assert_eq!(a.get_parsed("shed-after-ms", 0u64).unwrap(), 250);
        assert_eq!(a.get_parsed("conn-backlog", 0usize).unwrap(), 128);
        assert_eq!(a.get_parsed("trace-sample", 0u64).unwrap(), 10);
        assert_eq!(a.get_parsed("trace-capacity", 1024usize).unwrap(), 512);
        assert_eq!(a.get_parsed("write-shards", 1usize).unwrap(), 4);
        assert_eq!(a.get_parsed("audit-sample", 0usize).unwrap(), 8);
        assert_eq!(a.get_parsed("audit-interval-ms", 500u64).unwrap(), 250);
        assert_eq!(a.get_finite("slo-p99-ms", 0.0).unwrap(), 50.0);
        assert_eq!(a.get_finite("slo-availability", 0.0).unwrap(), 0.999);
        assert_eq!(a.get_finite("slo-topk-overlap", 0.0).unwrap(), 0.9);

        // An ephemeral-port line with top-degree source picking instead of
        // an explicit list.
        let a = Args::parse([
            "serve", "--graph", "edges.txt", "--undirected", "--port", "0",
            "--num-sources", "8",
        ])
        .unwrap();
        assert_eq!(a.get_parsed("port", 7171u16).unwrap(), 0);
        assert_eq!(a.get_parsed("num-sources", 4usize).unwrap(), 8);
        assert!(a.flag("undirected"));
        assert!(a.get("sources").is_none());

        // A durable line: WAL + checkpoint tuning.
        let a = Args::parse([
            "serve", "--preset", "small-sim", "--data-dir", "/tmp/dppr",
            "--fsync", "interval:25", "--checkpoint-every", "16",
            "--segment-kb", "4096",
        ])
        .unwrap();
        assert_eq!(a.get("data-dir"), Some("/tmp/dppr"));
        assert_eq!(a.get("fsync"), Some("interval:25"));
        assert_eq!(a.get_parsed("checkpoint-every", 64u64).unwrap(), 16);
        assert_eq!(a.get_parsed("segment-kb", 8192u64).unwrap(), 4_096);
    }

    #[test]
    fn exact_command_line() {
        let a = Args::parse([
            "exact", "--preset", "small-sim", "--undirected", "--source", "3", "--alpha",
            "0.15", "--top", "5",
        ])
        .unwrap();
        assert_eq!(a.command, "exact");
        assert_eq!(a.get("preset"), Some("small-sim"));
        assert!(a.flag("undirected"));
        assert_eq!(a.get_parsed("source", u32::MAX).unwrap(), 3);
        assert_eq!(a.get_parsed("top", 0usize).unwrap(), 5);
    }

    #[test]
    fn help_command_line() {
        let a = Args::parse(["help"]).unwrap();
        assert_eq!(a.command, "help");
        let a = Args::parse(Vec::<String>::new()).unwrap();
        assert_eq!(a.command, "");
    }
}
