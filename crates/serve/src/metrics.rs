//! The serving instance's metric catalog and trace plumbing.
//!
//! One [`ServerMetrics`] per instance owns the [`dppr_obs::Registry`]
//! plus direct handles to every pipeline-stage histogram, so the write
//! loop and the shard routers record without name lookups. Scrape-time
//! values that already live elsewhere (`ServerStats`, `ConnCounters`,
//! cache, engine counters) are rendered ad hoc by the `/metrics`
//! handler — single source of truth, no double counting.
//!
//! Metric families (all prefixed `dppr_`):
//!
//! | family | kind | meaning |
//! |---|---|---|
//! | `dppr_http_request_seconds` | histogram | per-request parse+route+serialize |
//! | `dppr_http_parse_seconds` | histogram | request-head parse |
//! | `dppr_http_route_seconds` | histogram | endpoint dispatch + query execution |
//! | `dppr_http_write_seconds` | histogram | response render into the socket buffer |
//! | `dppr_slide_apply_seconds` | histogram | one window slide, WAL append → publish |
//! | `dppr_push_wall_seconds` | histogram | engine `apply_batch` (push convergence) |
//! | `dppr_push_iterations` | histogram | frontier iterations per slide |
//! | `dppr_snapshot_publish_seconds` | histogram | per-session snapshot swap |
//! | `dppr_wal_append_seconds` | histogram | WAL record append (excl. fsync policy) |
//! | `dppr_wal_fsync_seconds` | histogram | device flush latency |
//! | `dppr_checkpoint_seconds` | histogram | checkpoint serialization + rename |
//! | `dppr_shard_connections{shard=…}` | gauge | live connections per shard |
//! | `dppr_shard_queue_depth{shard=…}` | gauge | accept hand-off backlog per shard |
//! | `dppr_audit_l1_error` | histogram | audited L1 error vs ground truth (×1e9 encoding) |
//! | `dppr_audit_linf_error` | histogram | audited L∞ error — the ε contract (×1e9 encoding) |
//! | `dppr_audit_topk_overlap{k=…}` | histogram | audited top-k overlap (×1e9 encoding) |
//! | `dppr_audit_solve_seconds` | histogram | ground-truth solve per audited session |
//! | `dppr_metrics_scrape_seconds` | histogram | `/metrics` render time (self-observation) |
//!
//! With `--write-shards N` each write loop additionally registers its own
//! labelled stage family (`dppr_shard_slide_apply_seconds{write_shard=…}`
//! and friends, see [`WriteShardStages`]); the unlabelled families above
//! keep aggregating across all write shards.

use dppr_obs::{Histogram, Registry, Sampler, TraceRing, Unit};
use std::sync::Arc;

/// Every histogram the pipeline records into, plus the trace ring.
pub struct ServerMetrics {
    pub registry: Registry,
    pub http_request: Arc<Histogram>,
    pub http_parse: Arc<Histogram>,
    pub http_route: Arc<Histogram>,
    pub http_write: Arc<Histogram>,
    pub slide_apply: Arc<Histogram>,
    pub push_wall: Arc<Histogram>,
    pub push_iterations: Arc<Histogram>,
    pub snapshot_publish: Arc<Histogram>,
    pub wal_append: Arc<Histogram>,
    pub wal_fsync: Arc<Histogram>,
    pub checkpoint: Arc<Histogram>,
    /// Audited per-session L1 error, recorded ×1e9 (natural units).
    pub audit_l1: Arc<Histogram>,
    /// Audited per-session L∞ error, recorded ×1e9 (natural units).
    pub audit_linf: Arc<Histogram>,
    /// Audited top-10 overlap (0..1), recorded ×1e9 (natural units).
    pub audit_overlap10: Arc<Histogram>,
    /// Audited top-50 overlap (0..1), recorded ×1e9 (natural units).
    pub audit_overlap50: Arc<Histogram>,
    /// Ground-truth solve wall time per audited session.
    pub audit_solve: Arc<Histogram>,
    /// `/metrics` render duration (self-observation; a scrape sees the
    /// previous scrape's cost).
    pub metrics_scrape: Arc<Histogram>,
    /// End-to-end structured trace events (`GET /trace`).
    pub trace: TraceRing,
    /// Every-Nth request tracing.
    pub trace_requests: Sampler,
    /// Every-Nth slide tracing.
    pub trace_slides: Sampler,
}

/// One write shard's labelled stage histograms: the same pipeline stages
/// as the aggregate families, but as `{write_shard="i"}` series so a
/// straggling or degraded shard is visible in isolation.
pub struct WriteShardStages {
    pub slide_apply: Arc<Histogram>,
    pub push_wall: Arc<Histogram>,
    pub snapshot_publish: Arc<Histogram>,
    pub wal_append: Arc<Histogram>,
    pub wal_fsync: Arc<Histogram>,
    pub checkpoint: Arc<Histogram>,
}

impl ServerMetrics {
    pub fn new(trace_sample: u64, trace_capacity: usize) -> Self {
        let registry = Registry::new();
        let http_request = registry.histogram(
            "dppr_http_request_seconds",
            "Request handling end to end: parse, route, serialize",
            Unit::Nanos,
        );
        let http_parse = registry.histogram(
            "dppr_http_parse_seconds",
            "Request-head parse time",
            Unit::Nanos,
        );
        let http_route = registry.histogram(
            "dppr_http_route_seconds",
            "Endpoint dispatch and query execution time",
            Unit::Nanos,
        );
        let http_write = registry.histogram(
            "dppr_http_write_seconds",
            "Response render time into the connection buffer",
            Unit::Nanos,
        );
        let slide_apply = registry.histogram(
            "dppr_slide_apply_seconds",
            "One window slide end to end: WAL append, engine apply, snapshot publish",
            Unit::Nanos,
        );
        let push_wall = registry.histogram(
            "dppr_push_wall_seconds",
            "Engine apply_batch wall time (push convergence)",
            Unit::Nanos,
        );
        let push_iterations = registry.histogram(
            "dppr_push_iterations",
            "Frontier iterations per slide until the push converged",
            Unit::Raw,
        );
        let snapshot_publish = registry.histogram(
            "dppr_snapshot_publish_seconds",
            "Per-slide session snapshot publication time",
            Unit::Nanos,
        );
        let wal_append = registry.histogram(
            "dppr_wal_append_seconds",
            "WAL record append time (framing + write, excluding fsync policy)",
            Unit::Nanos,
        );
        let wal_fsync = registry.histogram(
            "dppr_wal_fsync_seconds",
            "WAL device-flush latency",
            Unit::Nanos,
        );
        let checkpoint = registry.histogram(
            "dppr_checkpoint_seconds",
            "Checkpoint write duration (serialize, fsync, rename)",
            Unit::Nanos,
        );
        // The audit error/overlap families reuse the nanos-unit bucket
        // layout as a natural-units encoding: values are recorded ×1e9,
        // so a rendered bound of 0.001 means an L1 error of 1e-3 (or an
        // overlap of 0.001). This keeps the log-scale buckets dense
        // exactly where ε-scale errors live.
        let audit_l1 = registry.histogram(
            "dppr_audit_l1_error",
            "Audited L1 distance between published estimates and ground truth (recorded x1e9)",
            Unit::Nanos,
        );
        let audit_linf = registry.histogram(
            "dppr_audit_linf_error",
            "Audited max per-vertex error vs ground truth; the paper's epsilon contract (recorded x1e9)",
            Unit::Nanos,
        );
        let audit_overlap10 = registry.histogram_with_label(
            "dppr_audit_topk_overlap",
            "Audited top-k overlap between published and ground-truth rankings (recorded x1e9)",
            Unit::Nanos,
            "k",
            "10",
        );
        let audit_overlap50 = registry.histogram_with_label(
            "dppr_audit_topk_overlap",
            "Audited top-k overlap between published and ground-truth rankings (recorded x1e9)",
            Unit::Nanos,
            "k",
            "50",
        );
        let audit_solve = registry.histogram(
            "dppr_audit_solve_seconds",
            "Sequential ground-truth solve wall time per audited session",
            Unit::Nanos,
        );
        let metrics_scrape = registry.histogram(
            "dppr_metrics_scrape_seconds",
            "Time spent rendering /metrics (visible from the next scrape)",
            Unit::Nanos,
        );
        ServerMetrics {
            registry,
            http_request,
            http_parse,
            http_route,
            http_write,
            slide_apply,
            push_wall,
            push_iterations,
            snapshot_publish,
            wal_append,
            wal_fsync,
            checkpoint,
            audit_l1,
            audit_linf,
            audit_overlap10,
            audit_overlap50,
            audit_solve,
            metrics_scrape,
            trace: TraceRing::new(trace_capacity),
            trace_requests: Sampler::new(trace_sample),
            trace_slides: Sampler::new(trace_sample),
        }
    }

    /// Registers the labelled per-write-shard stage families for shard
    /// `i`. Called once per write shard at instance start; the returned
    /// handles are recorded into by that shard's write loop alongside
    /// the aggregate histograms above.
    pub fn write_shard_stages(&self, i: usize) -> WriteShardStages {
        let h = |name, help| {
            self.registry.histogram_with_label(name, help, Unit::Nanos, "write_shard", i.to_string())
        };
        WriteShardStages {
            slide_apply: h(
                "dppr_shard_slide_apply_seconds",
                "Per-write-shard window slide end to end",
            ),
            push_wall: h(
                "dppr_shard_push_wall_seconds",
                "Per-write-shard engine apply_batch wall time",
            ),
            snapshot_publish: h(
                "dppr_shard_snapshot_publish_seconds",
                "Per-write-shard session snapshot publication time",
            ),
            wal_append: h(
                "dppr_shard_wal_append_seconds",
                "Per-write-shard WAL record append time",
            ),
            wal_fsync: h(
                "dppr_shard_wal_fsync_seconds",
                "Per-write-shard WAL device-flush latency",
            ),
            checkpoint: h(
                "dppr_shard_checkpoint_seconds",
                "Per-write-shard checkpoint write duration",
            ),
        }
    }
}
