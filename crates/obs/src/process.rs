//! Process-level gauges read from `/proc/self` — std-only, no libc.
//!
//! Parsing is best-effort: on platforms without procfs (or if the
//! files change shape) every field reads as 0 rather than erroring, so
//! exporters can emit the gauges unconditionally.

use std::fs;

/// One sample of process-wide resource usage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Resident set size in bytes (`VmRSS` from `/proc/self/status`).
    pub rss_bytes: u64,
    /// Open file descriptors (entries in `/proc/self/fd`).
    pub open_fds: u64,
    /// OS threads (`Threads` from `/proc/self/status`).
    pub threads: u64,
}

impl ProcessStats {
    /// Read the current values; any unreadable field is 0.
    pub fn sample() -> ProcessStats {
        let mut stats = ProcessStats::default();
        if let Ok(status) = fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmRSS:") {
                    stats.rss_bytes = parse_kb(rest).unwrap_or(0).saturating_mul(1024);
                } else if let Some(rest) = line.strip_prefix("Threads:") {
                    stats.threads = rest.trim().parse().unwrap_or(0);
                }
            }
        }
        if let Ok(dir) = fs::read_dir("/proc/self/fd") {
            // The iterator itself holds one fd open; don't count it.
            stats.open_fds = (dir.filter(|e| e.is_ok()).count() as u64).saturating_sub(1);
        }
        stats
    }
}

/// Parses `"  123456 kB"` → `123456`.
fn parse_kb(rest: &str) -> Option<u64> {
    rest.trim().strip_suffix("kB")?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_kb_accepts_status_lines() {
        assert_eq!(parse_kb("  123456 kB"), Some(123_456));
        assert_eq!(parse_kb("0 kB"), Some(0));
        assert_eq!(parse_kb("garbage"), None);
        assert_eq!(parse_kb("12"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn sample_reads_live_values_on_linux() {
        let s = ProcessStats::sample();
        assert!(s.rss_bytes > 0, "VmRSS must be readable: {s:?}");
        assert!(s.threads >= 1, "at least this thread: {s:?}");
        assert!(s.open_fds >= 1, "stdin/stdout/stderr are open: {s:?}");
    }

    #[test]
    fn default_is_all_zero() {
        assert_eq!(
            ProcessStats::default(),
            ProcessStats { rss_bytes: 0, open_fds: 0, threads: 0 }
        );
    }
}
