//! Shared plumbing for the experiment binaries and Criterion benches.
//!
//! Each `src/bin/fig*.rs` binary regenerates one figure/table of the
//! paper's evaluation (see `DESIGN.md` §5 for the index and
//! `EXPERIMENTS.md` for paper-vs-measured outcomes). Output is TSV on
//! stdout so results can be piped into any plotting tool.

pub mod setup;

pub use setup::{build_engine, ms, run_engine, time_slides, EngineKind, ExperimentScale, Workload};
