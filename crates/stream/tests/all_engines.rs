//! The streaming harness drives every engine family end-to-end (this is
//! the integration point the Figure 5 binary relies on).

use dppr_core::{
    DynamicPprEngine, ParallelEngine, PprConfig, PushVariant, SeqEngine, UpdateMode,
};
use dppr_graph::generators::erdos_renyi;
use dppr_graph::GraphStream;
use dppr_mc::MonteCarloEngine;
use dppr_stream::StreamDriver;
use dppr_vc::LigraEngine;

fn stream() -> GraphStream {
    GraphStream::directed(erdos_renyi(60, 1_500, 12)).permuted(4)
}

#[test]
fn every_engine_family_completes_a_run() {
    let cfg = PprConfig::new(0, 0.2, 1e-3);
    let engines: Vec<Box<dyn DynamicPprEngine>> = vec![
        Box::new(SeqEngine::new(cfg, UpdateMode::PerUpdate)),
        Box::new(SeqEngine::new(cfg, UpdateMode::Batched)),
        Box::new(ParallelEngine::new(cfg, PushVariant::OPT)),
        Box::new(LigraEngine::new(cfg)),
        Box::new(MonteCarloEngine::new(cfg, 5_000, 7)),
    ];
    let mut graphs = Vec::new();
    for mut engine in engines {
        let mut driver = StreamDriver::new(stream(), 0.1);
        driver.bootstrap(engine.as_mut());
        let summary = driver.run_slides(engine.as_mut(), 100, 8);
        assert_eq!(summary.slides, 8, "{}", engine.name());
        assert!(summary.throughput() > 0.0);
        assert_eq!(summary.records.len(), 8);
        graphs.push((engine.name(), driver.graph().clone()));
    }
    // All engines consumed the identical stream: identical final graphs.
    let (ref name0, ref g0) = graphs[0];
    for (name, g) in &graphs[1..] {
        assert_eq!(
            g.num_edges(),
            g0.num_edges(),
            "{name} and {name0} saw different streams"
        );
    }
}

#[test]
fn per_slide_records_are_complete() {
    let cfg = PprConfig::new(0, 0.2, 1e-3);
    let mut engine = ParallelEngine::new(cfg, PushVariant::OPT);
    let mut driver = StreamDriver::new(stream(), 0.1);
    driver.bootstrap(&mut engine);
    let summary = driver.run_slides(&mut engine, 50, 5);
    for (i, rec) in summary.records.iter().enumerate() {
        assert_eq!(rec.slide, i);
        assert_eq!(rec.batch_updates, 100); // 50 inserts + 50 deletes
        assert!(rec.applied <= rec.batch_updates);
        assert_eq!(rec.counters.batches, 1);
    }
    let totals = summary.total_counters();
    assert_eq!(totals.batches, 5);
    assert_eq!(
        totals.restore_ops,
        summary.records.iter().map(|r| r.counters.restore_ops).sum::<u64>()
    );
}
