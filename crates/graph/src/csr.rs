//! Immutable compressed-sparse-row snapshots.
//!
//! The push kernels run on [`crate::DynamicGraph`] directly (they must see
//! every batch's mutations), but read-only consumers — the ground-truth
//! power-iteration solver, the dense mode of the vertex-centric engine, and
//! several benchmarks — are faster on a flat CSR layout with no per-vertex
//! indirection.

use crate::dynamic::DynamicGraph;
use crate::types::VertexId;

/// A frozen CSR view of a directed graph holding **both** directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    out_offsets: Vec<usize>,
    out_targets: Vec<VertexId>,
    in_offsets: Vec<usize>,
    in_targets: Vec<VertexId>,
}

impl CsrGraph {
    /// Snapshots a [`DynamicGraph`]. Neighbor lists are sorted, which makes
    /// snapshots of semantically-equal graphs compare equal.
    pub fn from_dynamic(g: &DynamicGraph) -> Self {
        fn build<'g>(
            g: &'g DynamicGraph,
            nbrs: impl Fn(VertexId) -> &'g [VertexId],
        ) -> (Vec<usize>, Vec<VertexId>) {
            let n = g.num_vertices();
            let mut offsets = Vec::with_capacity(n + 1);
            offsets.push(0usize);
            let mut targets = Vec::with_capacity(g.num_edges());
            for v in 0..n as VertexId {
                let mut ns = nbrs(v).to_vec();
                ns.sort_unstable();
                targets.extend_from_slice(&ns);
                offsets.push(targets.len());
            }
            (offsets, targets)
        }
        let (out_offsets, out_targets) = build(g, |v| g.out_neighbors(v));
        let (in_offsets, in_targets) = build(g, |v| g.in_neighbors(v));
        CsrGraph { out_offsets, out_targets, in_offsets, in_targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        let u = u as usize;
        self.out_offsets[u + 1] - self.out_offsets[u]
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: VertexId) -> usize {
        let u = u as usize;
        self.in_offsets[u + 1] - self.in_offsets[u]
    }

    /// Sorted out-neighbors of `u`.
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        let u = u as usize;
        &self.out_targets[self.out_offsets[u]..self.out_offsets[u + 1]]
    }

    /// Sorted in-neighbors of `u`.
    #[inline]
    pub fn in_neighbors(&self, u: VertexId) -> &[VertexId] {
        let u = u as usize;
        &self.in_targets[self.in_offsets[u]..self.in_offsets[u + 1]]
    }

    /// Binary-search membership test, O(log dout(u)).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Thaws the snapshot back into a [`DynamicGraph`].
    pub fn to_dynamic(&self) -> DynamicGraph {
        let mut g = DynamicGraph::with_vertices(self.num_vertices());
        for u in 0..self.num_vertices() as VertexId {
            for &v in self.out_neighbors(u) {
                g.insert_edge_unchecked(u, v);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DynamicGraph {
        DynamicGraph::from_edges([(0, 1), (0, 2), (1, 2), (2, 0), (3, 0)])
    }

    #[test]
    fn snapshot_preserves_shape() {
        let g = sample();
        let c = CsrGraph::from_dynamic(&g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(c.out_degree(v), g.out_degree(v));
            assert_eq!(c.in_degree(v), g.in_degree(v));
            let mut expect = g.out_neighbors(v).to_vec();
            expect.sort_unstable();
            assert_eq!(c.out_neighbors(v), expect.as_slice());
            let mut expect = g.in_neighbors(v).to_vec();
            expect.sort_unstable();
            assert_eq!(c.in_neighbors(v), expect.as_slice());
        }
    }

    #[test]
    fn has_edge_binary_search() {
        let c = CsrGraph::from_dynamic(&sample());
        assert!(c.has_edge(0, 1));
        assert!(c.has_edge(0, 2));
        assert!(!c.has_edge(1, 0));
        assert!(!c.has_edge(3, 2));
    }

    #[test]
    fn roundtrip_through_dynamic() {
        let g = sample();
        let c = CsrGraph::from_dynamic(&g);
        let g2 = c.to_dynamic();
        let c2 = CsrGraph::from_dynamic(&g2);
        assert_eq!(c, c2);
    }

    #[test]
    fn empty_graph_snapshot() {
        let c = CsrGraph::from_dynamic(&DynamicGraph::new());
        assert_eq!(c.num_vertices(), 0);
        assert_eq!(c.num_edges(), 0);
    }

    #[test]
    fn deletion_reflected_after_resnapshot() {
        let mut g = sample();
        g.delete_edge(0, 2);
        let c = CsrGraph::from_dynamic(&g);
        assert!(!c.has_edge(0, 2));
        assert_eq!(c.num_edges(), 4);
    }
}
