//! Crash-injection harness for the durable serving path.
//!
//! Proves the recovery contract end to end: a server killed at any
//! injected fault site — mid-append, mid-rotation, mid-checkpoint,
//! either side of the checkpoint rename, or hard-killed between batches
//! — restarts into a state **bit-identical** to a never-crashed replay
//! at the same epoch, and replays only the WAL tail past the newest
//! durable checkpoint. A corruption corpus (truncated segment,
//! bit-flipped CRC, duplicated tail frame) is layered on top of a hard
//! kill to prove torn-tail repair.
//!
//! How it works:
//!
//! 1. The parent computes the baseline: the exact per-epoch
//!    `state_fingerprint` sequence of an uncrashed run, using the same
//!    primitives as the server's write loop.
//! 2. For each kill point it re-execs itself (`--child <data-dir>`)
//!    with `DPPR_CRASH=<site>:<nth>` set; the child runs a real durable
//!    serving instance and dies with exit code 86 at the fault site.
//! 3. The parent then recovers with [`dppr_serve::boot_probe`] — the
//!    identical bootstrap `start` runs, minus threads — and asserts the
//!    recovered fingerprints equal the baseline's at the recovered
//!    epoch, that replay covered exactly `recovered - checkpoint`
//!    batches, and that a second probe is idempotent.
//!
//! Output: one TSV line per case, plus `BENCH_7_RECOVERY.json` with
//! recovery-time numbers (the CI smoke step uploads it). Exits nonzero
//! if any case fails.

use dppr_core::{persist::state_fingerprint, MultiSourcePpr, PushVariant};
use dppr_graph::{presets, GraphStream, VertexId};
use dppr_serve::{boot_probe, boot_probe_shards, shard_of, BootProbe, DurabilityConfig, ServeConfig};
use dppr_stream::StreamDriver;
use dppr_wal::{FsyncPolicy, CRASH_ENV, CRASH_EXIT_CODE};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

// ---- the workload: every knob shared by baseline, child, and probe ----
// One fixed configuration so all three replay the identical epoch
// sequence; toy() keeps a full matrix run in seconds.

const SEED: u64 = 0xC5A5_0007;
const INIT_FRACTION: f64 = 0.1;
const ALPHA: f64 = 0.15;
const EPSILON: f64 = 1e-4;
const BATCH: usize = 40;
const SOURCES: [VertexId; 2] = [0, 7];
/// Sources for the 2-shard case; 11 hashes onto write shard 0 while 0
/// and 7 land on shard 1, so both shards own sessions and both WALs see
/// the kill.
const SHARD_SOURCES: [VertexId; 3] = [0, 7, 11];
const SHARDS: usize = 2;
const CKPT_EVERY: u64 = 4;
// Small segments so rotation happens several times per run.
const SEGMENT_BYTES: u64 = 3_072;

fn the_stream() -> GraphStream {
    presets::toy().stream(SEED)
}

fn serve_cfg(data_dir: &Path) -> ServeConfig {
    let mut d = DurabilityConfig::new(data_dir);
    d.fsync = FsyncPolicy::PerBatch;
    d.checkpoint_every_slides = CKPT_EVERY;
    d.segment_bytes = SEGMENT_BYTES;
    ServeConfig {
        port: 0,
        threads: 1,
        batch: BATCH,
        alpha: ALPHA,
        epsilon: EPSILON,
        durability: Some(d),
        ..ServeConfig::default()
    }
}

// ---- baseline: the never-crashed replay ------------------------------

/// `fps[e - 1]` = the per-source fingerprints at epoch `e`, mirroring the
/// server exactly: epoch 1 is the bootstrapped initial window, each
/// further epoch is one `BATCH`-edge slide.
fn baseline_for(sources: &[VertexId]) -> Vec<Vec<(VertexId, u64)>> {
    let mut driver = StreamDriver::new(the_stream(), INIT_FRACTION);
    let mut multi = MultiSourcePpr::new(sources, ALPHA, EPSILON, PushVariant::OPT);
    let init = driver.take_initial_batch();
    multi.apply_batch(driver.graph_mut(), &init);
    let fp = |m: &MultiSourcePpr| {
        (0..m.num_sources()).map(|i| (m.source(i), state_fingerprint(m.state(i)))).collect()
    };
    let mut fps = vec![fp(&multi)];
    while let Some(batch) = driver.slide_batch(BATCH) {
        multi.apply_batch(driver.graph_mut(), &batch);
        fps.push(fp(&multi));
    }
    fps
}

// ---- child mode: a real durable serving instance ---------------------

/// Runs the server over `data_dir` until the stream is dry, then shuts
/// down gracefully (exit 0). With `die_after_slides > 0` it instead
/// hard-exits (code 86, no WAL flush, no final checkpoint) once that
/// many slides have been applied — the "kill -9 between batches" point.
/// With `DPPR_CRASH` set, the injected site exits 86 on its own. With
/// `shards > 1` the instance runs that many independent write loops
/// (`SHARD_SOURCES`, one WAL directory per shard) and the kill lands
/// while both are mid-stream.
fn run_child(data_dir: &Path, die_after_slides: u64, shards: usize) -> ! {
    let mut cfg = serve_cfg(data_dir);
    cfg.write_shards = shards;
    // Freeze the write loop at the kill point rather than racing it: a
    // fast slide loop must not run the stream dry before the poll below
    // notices the threshold and hard-exits. (`max_slides` is per shard;
    // the die threshold below counts slides across all shards.)
    cfg.max_slides = die_after_slides as usize;
    let sources: &[VertexId] = if shards > 1 { &SHARD_SOURCES } else { &SOURCES };
    let handle = dppr_serve::start(the_stream(), INIT_FRACTION, sources, cfg)
        .unwrap_or_else(|e| {
            eprintln!("child: start failed: {e}");
            std::process::exit(3);
        });
    loop {
        let slides = handle.stats().slides.load(std::sync::atomic::Ordering::Relaxed);
        if die_after_slides > 0 && slides >= die_after_slides {
            std::process::exit(CRASH_EXIT_CODE);
        }
        if handle.stats().stream_done.load(std::sync::atomic::Ordering::Relaxed) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let report = handle.join();
    println!("child: ran dry at epoch {} (durable {})", report.epoch, report.durable_epoch);
    std::process::exit(0);
}

// ---- corruption corpus -----------------------------------------------

/// Newest WAL segment file under `data_dir`.
fn newest_segment(data_dir: &Path) -> PathBuf {
    let wal = data_dir.join("wal");
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&wal)
        .unwrap_or_else(|e| panic!("reading {}: {e}", wal.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    segs.sort();
    segs.pop().expect("at least one WAL segment")
}

/// Cuts the final bytes of the newest segment — a torn last frame.
fn corrupt_truncate(data_dir: &Path) {
    let path = newest_segment(data_dir);
    let len = std::fs::metadata(&path).unwrap().len();
    let cut = len.saturating_sub(7).max(8); // keep the magic
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(cut).unwrap();
}

/// Flips one bit near the end of the newest segment — a CRC mismatch in
/// (at least) the final frame.
fn corrupt_bitflip(data_dir: &Path) {
    let path = newest_segment(data_dir);
    let mut bytes = std::fs::read(&path).unwrap();
    let at = bytes.len().saturating_sub(10).max(8);
    bytes[at] ^= 0x10;
    std::fs::write(&path, bytes).unwrap();
}

/// Appends a copy of the last complete frame — the double-write /
/// duplicated-tail case. Replay must skip the duplicate (its epoch is
/// already applied), not apply it twice.
fn corrupt_duplicate_tail(data_dir: &Path) {
    let path = newest_segment(data_dir);
    let bytes = std::fs::read(&path).unwrap();
    // Walk the frames: 8-byte magic, then [len u32][crc u32][payload].
    let (mut at, mut last) = (8usize, None);
    while at + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let end = at + 8 + len;
        if end > bytes.len() {
            break;
        }
        last = Some((at, end));
        at = end;
    }
    let (s, e) = last.expect("segment holds at least one complete frame");
    let dup = bytes[s..e].to_vec();
    let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
    f.write_all(&dup).unwrap();
}

// ---- the case matrix -------------------------------------------------

struct Case {
    /// TSV/JSON label.
    name: String,
    /// `DPPR_CRASH` value for the child (empty = no injected site).
    crash: String,
    /// Hard-exit the child after this many slides (0 = run dry / die at
    /// the injected site).
    die_after_slides: u64,
    /// Post-mortem filesystem damage.
    corrupt: Option<fn(&Path)>,
}

impl Case {
    fn injected(site: &str, nth: u64) -> Case {
        Case {
            name: format!("{site}:{nth}"),
            crash: format!("{site}:{nth}"),
            die_after_slides: 0,
            corrupt: None,
        }
    }

    fn corpus(name: &str, corrupt: fn(&Path)) -> Case {
        Case {
            name: format!("corpus:{name}"),
            crash: String::new(),
            die_after_slides: 10,
            corrupt: Some(corrupt),
        }
    }
}

/// Deterministic "random" kill indices (no `Math.random` analog here on
/// purpose: a failing case must be replayable byte for byte).
fn lcg_points(seed: u64, n: usize, lo: u64, hi: u64) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            lo + (x >> 33) % (hi - lo + 1)
        })
        .collect()
}

fn cases() -> Vec<Case> {
    let mut v = vec![
        // First and a later hit of every injected fault site.
        Case::injected("append-partial", 1),
        Case::injected("append-done", 1),
        Case::injected("rotate", 1),
        Case::injected("rotate", 2),
        Case::injected("ckpt-state", 1), // dies inside the *base* checkpoint
        Case::injected("ckpt-state", 2),
        Case::injected("ckpt-pre-rename", 1),
        Case::injected("ckpt-pre-rename", 2),
        Case::injected("ckpt-post-rename", 1),
        Case::injected("ckpt-post-rename", 2),
        // Hard kill between batches, no site (plus the corpus on top).
        Case::corpus("truncated-segment", corrupt_truncate),
        Case::corpus("bit-flipped-crc", corrupt_bitflip),
        Case::corpus("duplicated-tail", corrupt_duplicate_tail),
    ];
    // Randomized (but seeded) mid-stream append kills.
    for nth in lcg_points(SEED, 3, 2, 12) {
        v.push(Case::injected("append-partial", nth));
        v.push(Case::injected("append-done", nth));
    }
    v
}

// ---- parent-side verification ----------------------------------------

struct Outcome {
    name: String,
    child_exit: i32,
    recovery_ms: f64,
    checkpoint_epoch: u64,
    replayed: u64,
    recovered_epoch: u64,
    error: Option<String>,
}

fn probe_now(data_dir: &Path) -> std::io::Result<(BootProbe, f64)> {
    let t = Instant::now();
    let probe = boot_probe(the_stream(), INIT_FRACTION, &SOURCES, &serve_cfg(data_dir))?;
    Ok((probe, t.elapsed().as_secs_f64() * 1e3))
}

fn check_case(case: &Case, base: &[Vec<(VertexId, u64)>], root: &Path) -> Outcome {
    let data_dir = root.join(case.name.replace(':', "-"));
    let mut out = Outcome {
        name: case.name.clone(),
        child_exit: -1,
        recovery_ms: 0.0,
        checkpoint_epoch: 0,
        replayed: 0,
        recovered_epoch: 0,
        error: None,
    };

    // 1. Run the child until it dies.
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--child").arg(&data_dir).env_remove(CRASH_ENV);
    if !case.crash.is_empty() {
        cmd.env(CRASH_ENV, &case.crash);
    }
    if case.die_after_slides > 0 {
        cmd.arg("--die-after-slides").arg(case.die_after_slides.to_string());
    }
    let child = match cmd.output() {
        Ok(o) => o,
        Err(e) => {
            out.error = Some(format!("spawning child: {e}"));
            return out;
        }
    };
    out.child_exit = child.status.code().unwrap_or(-1);
    if out.child_exit != CRASH_EXIT_CODE {
        out.error = Some(
            format!(
                "child exited {} (wanted the injected crash {CRASH_EXIT_CODE}); stderr: {}",
                out.child_exit,
                String::from_utf8_lossy(&child.stderr).trim()
            ),
        );
        return out;
    }

    // 2. Optional post-mortem corruption.
    if let Some(damage) = case.corrupt {
        damage(&data_dir);
    }

    // 3. Recover and compare against the baseline.
    let (probe, ms) = match probe_now(&data_dir) {
        Ok(v) => v,
        Err(e) => {
            out.error = Some(format!("recovery failed: {e}"));
            return out;
        }
    };
    out.recovery_ms = ms;
    out.recovered_epoch = probe.epoch;
    if let Some(r) = &probe.recovery {
        out.checkpoint_epoch = r.checkpoint_epoch;
        out.replayed = r.replayed_batches;
        if r.recovered_epoch != probe.epoch {
            out.error = Some(format!("report epoch {} != domain {}", r.recovered_epoch, probe.epoch));
            return out;
        }
        // Tail-only replay: exactly the batches past the checkpoint.
        if r.checkpoint_epoch + r.replayed_batches != r.recovered_epoch {
            out.error = Some(
                format!(
                    "replay not tail-only: checkpoint {} + replayed {} != recovered {}",
                    r.checkpoint_epoch, r.replayed_batches, r.recovered_epoch
                ),
            );
            return out;
        }
    }
    let Some(want) = probe.epoch.checked_sub(1).and_then(|i| base.get(i as usize)) else {
        out.error = Some(format!("recovered epoch {} outside baseline 1..={}", probe.epoch, base.len()));
        return out;
    };
    if probe.fingerprints != *want {
        out.error = Some(
            format!(
                "state diverged at epoch {}: recovered {:x?}, baseline {:x?}",
                probe.epoch, probe.fingerprints, want
            ),
        );
        return out;
    }

    // 4. Recovery must be idempotent (the probe itself re-appends the
    //    checkpoint marker and prunes — run it again on the result).
    match probe_now(&data_dir) {
        Ok((again, _)) => {
            if again.epoch != probe.epoch || again.fingerprints != probe.fingerprints {
                out.error = Some("second recovery disagreed with the first".into());
            }
        }
        Err(e) => out.error = Some(format!("second recovery failed: {e}")),
    }
    out
}

/// After one representative crash+recovery, let a real server finish the
/// stream and prove the *final* state matches the uncrashed final state.
fn check_resume_to_completion(base: &[Vec<(VertexId, u64)>], root: &Path) -> Option<String> {
    let data_dir = root.join("resume-to-completion");
    let exe = std::env::current_exe().expect("current_exe");
    let child = std::process::Command::new(exe)
        .arg("--child")
        .arg(&data_dir)
        .env(CRASH_ENV, "append-done:7")
        .output()
        .ok()?;
    if child.status.code() != Some(CRASH_EXIT_CODE) {
        return Some(format!("resume child exited {:?}", child.status.code()));
    }
    // Recover inside a real server and run the stream dry.
    let handle =
        match dppr_serve::start(the_stream(), INIT_FRACTION, &SOURCES, serve_cfg(&data_dir)) {
            Ok(h) => h,
            Err(e) => return Some(format!("restart failed: {e}")),
        };
    if handle.recovery().is_none() {
        return Some("restart did not report a recovery".into());
    }
    while !handle.stats().stream_done.load(std::sync::atomic::Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let report = handle.join();
    if report.epoch != base.len() as u64 {
        return Some(format!("resumed run ended at epoch {}, baseline {}", report.epoch, base.len()));
    }
    // The graceful join checkpointed the final epoch; probe it.
    match probe_now(&data_dir) {
        Ok((probe, _)) => {
            if probe.fingerprints != *base.last().unwrap() {
                return Some("final state after resume diverged from baseline".into());
            }
            None
        }
        Err(e) => Some(format!("final probe failed: {e}")),
    }
}

/// Kills a 2-shard server mid-stream and proves every shard recovers
/// independently: each shard's `(checkpoint + WAL tail)` replays to
/// fingerprints bit-identical to the uncrashed baseline at that shard's
/// own recovered epoch — shards crash at different points, and each one
/// must come back at exactly where *its* log ends.
fn check_sharded_kill(root: &Path) -> Option<String> {
    let base = baseline_for(&SHARD_SOURCES);
    let data_dir = root.join("sharded-kill");
    let exe = std::env::current_exe().expect("current_exe");
    let child = std::process::Command::new(exe)
        .arg("--child")
        .arg(&data_dir)
        .arg("--die-after-slides")
        .arg("12")
        .arg("--shards")
        .arg(SHARDS.to_string())
        .env_remove(CRASH_ENV)
        .output()
        .ok()?;
    if child.status.code() != Some(CRASH_EXIT_CODE) {
        return Some(format!(
            "sharded child exited {:?}; stderr: {}",
            child.status.code(),
            String::from_utf8_lossy(&child.stderr).trim()
        ));
    }

    let mut cfg = serve_cfg(&data_dir);
    cfg.write_shards = SHARDS;
    let probes = match boot_probe_shards(the_stream(), INIT_FRACTION, &SHARD_SOURCES, &cfg) {
        Ok(p) => p,
        Err(e) => return Some(format!("sharded recovery failed: {e}")),
    };
    if probes.len() != SHARDS {
        return Some(format!("expected {SHARDS} shard probes, got {}", probes.len()));
    }
    for (i, probe) in probes.iter().enumerate() {
        // The probe must cover exactly the sources this shard owns.
        let owned: Vec<VertexId> =
            SHARD_SOURCES.iter().copied().filter(|&s| shard_of(s, SHARDS) == i).collect();
        let got: Vec<VertexId> = probe.fingerprints.iter().map(|&(s, _)| s).collect();
        if got != owned {
            return Some(format!("shard {i} recovered sources {got:?}, owns {owned:?}"));
        }
        if let Some(r) = &probe.recovery {
            if r.checkpoint_epoch + r.replayed_batches != r.recovered_epoch {
                return Some(format!(
                    "shard {i} replay not tail-only: {} + {} != {}",
                    r.checkpoint_epoch, r.replayed_batches, r.recovered_epoch
                ));
            }
        }
        // Bit-identical to the uncrashed replay at this shard's epoch.
        let Some(want) = probe.epoch.checked_sub(1).and_then(|e| base.get(e as usize)) else {
            return Some(format!("shard {i} epoch {} outside baseline", probe.epoch));
        };
        for &(s, fp) in &probe.fingerprints {
            let Some(&(_, base_fp)) = want.iter().find(|&&(bs, _)| bs == s) else {
                return Some(format!("shard {i} source {s} missing from baseline"));
            };
            if fp != base_fp {
                return Some(format!(
                    "shard {i} source {s} diverged at epoch {}: {fp:x} != {base_fp:x}",
                    probe.epoch
                ));
            }
        }
    }
    // Idempotent: probing again reproduces every shard exactly.
    match boot_probe_shards(the_stream(), INIT_FRACTION, &SHARD_SOURCES, &cfg) {
        Ok(again) => {
            for (i, (a, b)) in again.iter().zip(&probes).enumerate() {
                if a.epoch != b.epoch || a.fingerprints != b.fingerprints {
                    return Some(format!("shard {i}: second recovery disagreed with the first"));
                }
            }
            None
        }
        Err(e) => Some(format!("second sharded recovery failed: {e}")),
    }
}

// ---- entry point ------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--child") {
        let data_dir = PathBuf::from(args.get(i + 1).expect("--child <data-dir>"));
        let die = args
            .iter()
            .position(|a| a == "--die-after-slides")
            .and_then(|j| args.get(j + 1))
            .map_or(0, |v| v.parse().expect("--die-after-slides <n>"));
        let shards = args
            .iter()
            .position(|a| a == "--shards")
            .and_then(|j| args.get(j + 1))
            .map_or(1, |v| v.parse().expect("--shards <n>"));
        run_child(&data_dir, die, shards);
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|j| args.get(j + 1))
        .map_or_else(|| "BENCH_7_RECOVERY.json".to_string(), Clone::clone);

    let root = std::env::temp_dir().join(format!("dppr_crash_{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("creating scratch dir");
    let base = baseline_for(&SOURCES);
    println!("baseline\tepochs={}\tsources={:?}", base.len(), SOURCES);
    println!("case\tchild_exit\trecovery_ms\tcheckpoint_epoch\treplayed\trecovered_epoch\tok");

    let mut outcomes = Vec::new();
    for case in cases() {
        let o = check_case(&case, &base, &root);
        println!(
            "{}\t{}\t{:.2}\t{}\t{}\t{}\t{}",
            o.name,
            o.child_exit,
            o.recovery_ms,
            o.checkpoint_epoch,
            o.replayed,
            o.recovered_epoch,
            o.error.as_deref().unwrap_or("ok")
        );
        outcomes.push(o);
    }
    let resume_err = check_resume_to_completion(&base, &root);
    println!(
        "resume-to-completion\t-\t-\t-\t-\t-\t{}",
        resume_err.as_deref().unwrap_or("ok")
    );
    let sharded_err = check_sharded_kill(&root);
    println!(
        "sharded-kill-{SHARDS}\t-\t-\t-\t-\t-\t{}",
        sharded_err.as_deref().unwrap_or("ok")
    );

    // BENCH_7_RECOVERY.json — recovery-time numbers for the CI artifact.
    let mut json = String::from("{\n  \"cases\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"case\": \"{}\", \"child_exit\": {}, \"recovery_ms\": {:.3}, \
             \"checkpoint_epoch\": {}, \"replayed_batches\": {}, \"recovered_epoch\": {}, \
             \"ok\": {}}}{}\n",
            o.name,
            o.child_exit,
            o.recovery_ms,
            o.checkpoint_epoch,
            o.replayed,
            o.recovered_epoch,
            o.error.is_none(),
            if i + 1 < outcomes.len() { "," } else { "" }
        ));
    }
    let failures: Vec<&Outcome> = outcomes.iter().filter(|o| o.error.is_some()).collect();
    let mean_ms = outcomes.iter().map(|o| o.recovery_ms).sum::<f64>() / outcomes.len() as f64;
    json.push_str(&format!(
        "  ],\n  \"baseline_epochs\": {},\n  \"mean_recovery_ms\": {:.3},\n  \
         \"resume_to_completion_ok\": {},\n  \"sharded_kill_ok\": {},\n  \"all_ok\": {}\n}}\n",
        base.len(),
        mean_ms,
        resume_err.is_none(),
        sharded_err.is_none(),
        failures.is_empty() && resume_err.is_none() && sharded_err.is_none()
    ));
    std::fs::write(&out_path, json).expect("writing report JSON");
    println!("report\t{out_path}");

    std::fs::remove_dir_all(&root).ok();
    for o in &failures {
        eprintln!("FAIL {}: {}", o.name, o.error.as_deref().unwrap());
    }
    if let Some(e) = &resume_err {
        eprintln!("FAIL resume-to-completion: {e}");
    }
    if let Some(e) = &sharded_err {
        eprintln!("FAIL sharded-kill-{SHARDS}: {e}");
    }
    if !failures.is_empty() || resume_err.is_some() || sharded_err.is_some() {
        std::process::exit(1);
    }
    println!(
        "crash_recovery: {} cases + resume-to-completion + sharded-kill-{SHARDS} all ok",
        outcomes.len()
    );
}
