//! Named synthetic datasets mirroring the paper's evaluation graphs (§5.1).
//!
//! The paper evaluates on five SNAP graphs. Those files are not available
//! offline, so each preset is a seeded generator configuration whose *shape*
//! (degree skew, average degree, directedness convention) matches the
//! original at laptop scale; see `DESIGN.md` for the substitution table.
//!
//! | preset        | paper graph  | model  | ~vertices | ~logical edges |
//! |---------------|--------------|--------|-----------|----------------|
//! | `youtube_sim` | Youtube      | BA(3)  | 30 000    | 90 000 (und.)  |
//! | `pokec_sim`   | Pokec        | R-MAT  | 65 536    | 600 000 (dir.) |
//! | `lj_sim`      | LiveJournal  | BA(7)  | 100 000   | 700 000 (und.) |
//! | `orkut_sim`   | Orkut        | BA(19) | 60 000    | 1 140 000 (und.)|
//! | `twitter_sim` | Twitter-2010 | R-MAT  | 131 072   | 2 000 000 (dir.)|

use crate::generators::{barabasi_albert, erdos_renyi, rmat, RmatParams};
use crate::stream::GraphStream;
use crate::types::VertexId;

/// A named, reproducible dataset: logical edges plus the directedness
/// convention for streaming.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Preset name (e.g. `"lj-sim"`).
    pub name: &'static str,
    /// Logical edges. For undirected datasets each pair is stored once and
    /// expands to two arcs on arrival.
    pub edges: Vec<(VertexId, VertexId)>,
    /// Whether edges follow the undirected (two-arc) convention.
    pub undirected: bool,
    /// A sensible error threshold ε for this graph's scale; chosen so the
    /// per-slide work is comparable (relative to graph size) to the paper's
    /// default ε = 10⁻⁷ on million-node graphs.
    pub default_epsilon: f64,
}

impl Dataset {
    /// Builds the timestamped stream under the random edge permutation
    /// arrival model.
    pub fn stream(&self, seed: u64) -> GraphStream {
        let s = if self.undirected {
            GraphStream::undirected(self.edges.clone())
        } else {
            GraphStream::directed(self.edges.clone())
        };
        s.permuted(seed)
    }

    /// Number of directed arcs the full dataset would materialize.
    pub fn num_arcs(&self) -> usize {
        self.edges.len() * if self.undirected { 2 } else { 1 }
    }
}

/// Youtube stand-in: small, sparse, undirected (BA preferential attachment).
pub fn youtube_sim() -> Dataset {
    Dataset {
        name: "youtube-sim",
        edges: barabasi_albert(30_000, 3, 0xFEED_0001),
        undirected: true,
        default_epsilon: 1e-6,
    }
}

/// Pokec stand-in: mid-size directed power-law graph (R-MAT).
pub fn pokec_sim() -> Dataset {
    Dataset {
        name: "pokec-sim",
        edges: rmat(16, 600_000, RmatParams::default(), 0xFEED_0002),
        undirected: false,
        default_epsilon: 1e-6,
    }
}

/// LiveJournal stand-in: undirected BA with the paper's average degree (~14).
pub fn lj_sim() -> Dataset {
    Dataset {
        name: "lj-sim",
        edges: barabasi_albert(100_000, 7, 0xFEED_0003),
        undirected: true,
        default_epsilon: 1e-6,
    }
}

/// Orkut stand-in: dense undirected BA (paper Orkut has und. degree ~78).
pub fn orkut_sim() -> Dataset {
    Dataset {
        name: "orkut-sim",
        edges: barabasi_albert(60_000, 19, 0xFEED_0004),
        undirected: true,
        default_epsilon: 1e-6,
    }
}

/// Twitter stand-in: the largest preset, directed R-MAT with Graph500 skew.
pub fn twitter_sim() -> Dataset {
    Dataset {
        name: "twitter-sim",
        edges: rmat(17, 2_000_000, RmatParams::default(), 0xFEED_0005),
        undirected: false,
        default_epsilon: 1e-5,
    }
}

/// The largest stand-in: a 1M-vertex BA graph whose ~16M arcs exceed
/// last-level caches, reproducing the DRAM-bound regime where the paper's
/// parallel speedups live (its graphs are 30M–1.4B edges). Generation
/// takes ~15 s; used by the `--full` experiment runs.
pub fn big_sim() -> Dataset {
    Dataset {
        name: "big-sim",
        edges: barabasi_albert(1_000_000, 8, 0xFEED_0042),
        undirected: true,
        default_epsilon: 1e-5,
    }
}

/// A tiny ER graph for unit tests and doc examples.
pub fn toy() -> Dataset {
    Dataset {
        name: "toy",
        edges: erdos_renyi(200, 1_000, 0xFEED_0006),
        undirected: false,
        default_epsilon: 1e-4,
    }
}

/// A small-but-nontrivial BA graph for fast benchmarks.
pub fn small_sim() -> Dataset {
    Dataset {
        name: "small-sim",
        edges: barabasi_albert(5_000, 5, 0xFEED_0007),
        undirected: true,
        default_epsilon: 1e-5,
    }
}

/// The five paper-shaped presets, smallest first.
pub fn all() -> Vec<Dataset> {
    vec![youtube_sim(), pokec_sim(), lj_sim(), orkut_sim(), twitter_sim()]
}

/// Looks up a preset by name (accepts both `lj-sim` and `lj_sim` spellings).
pub fn by_name(name: &str) -> Option<Dataset> {
    match name.replace('_', "-").as_str() {
        "youtube-sim" => Some(youtube_sim()),
        "pokec-sim" => Some(pokec_sim()),
        "lj-sim" => Some(lj_sim()),
        "orkut-sim" => Some(orkut_sim()),
        "twitter-sim" => Some(twitter_sim()),
        "big-sim" => Some(big_sim()),
        "toy" => Some(toy()),
        "small-sim" => Some(small_sim()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_is_deterministic() {
        let a = toy();
        let b = toy();
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.num_arcs(), 1_000);
    }

    #[test]
    fn small_sim_doubles_arcs() {
        let d = small_sim();
        assert!(d.undirected);
        assert_eq!(d.num_arcs(), d.edges.len() * 2);
    }

    #[test]
    fn by_name_resolves_both_spellings() {
        assert!(by_name("lj-sim").is_some());
        assert!(by_name("lj_sim").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn stream_is_seeded() {
        let d = toy();
        let s1 = d.stream(9);
        let s2 = d.stream(9);
        assert_eq!(s1.edge_at(0), s2.edge_at(0));
        assert_eq!(s1.len(), d.edges.len());
    }
}
