//! RNG implementations.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — small, fast, decent statistical quality; the same
/// algorithm family the real `rand::rngs::SmallRng` uses on 64-bit
/// targets. Not cryptographically secure.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E3779B97F4A7C15,
                0x6A09E667F3BCC909,
                0xBB67AE8584CAA73B,
                0x3C6EF372FE94F82B,
            ];
        }
        SmallRng { s }
    }
}

/// Alias so code written against `StdRng` also compiles; statistical
/// quality is the same as [`SmallRng`] in this stub.
pub type StdRng = SmallRng;
