//! `SequentialLocalPush` (Algorithm 2) — the state-of-the-art sequential
//! baseline of Zhang et al. [49] that the paper parallelizes.
//!
//! Two forms are provided:
//!
//! * [`sequential_local_push`] — the practical worklist (FIFO) form used by
//!   the `CPU-Base` / `CPU-Seq` engines. Instead of re-scanning all of `V`
//!   for `max_u Rs(u) > ε` (Algorithm 2 line 1), it seeds a queue with the
//!   vertices whose residuals the batch's `RestoreInvariant` calls touched;
//!   every vertex activated later is discovered through propagation, so the
//!   two are equivalent (only restore calls and pushes move residuals).
//! * [`sequential_push_lockstep`] — the iteration-structured form that
//!   Lemma 4 compares against the parallel push: each "iteration" drains
//!   the current frontier serially (reading fresh residuals as it goes)
//!   and collects the next frontier. Used by the parallel-loss experiment.

use crate::config::Phase;
use crate::counters::{Counters, LocalCounters};
use crate::state::PprState;
use dppr_graph::{DynamicGraph, VertexId};
use std::collections::VecDeque;

/// Reusable scratch space so repeated pushes do not reallocate (the
/// "workhorse collection" pattern).
#[derive(Debug, Default)]
pub struct SeqPushBuffers {
    queue: VecDeque<VertexId>,
    in_queue: Vec<bool>,
}

impl SeqPushBuffers {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.in_queue.len() < n {
            self.in_queue.resize(n, false);
        }
    }
}

/// One `SeqPush(u)` (Algorithm 2, lines 6–10): move `α·Rs(u)` into the
/// estimate and propagate the remaining `(1−α)·Rs(u)` to the in-neighbors.
#[inline]
fn seq_push(
    g: &DynamicGraph,
    state: &PprState,
    u: VertexId,
    alpha: f64,
    lc: &mut LocalCounters,
) {
    let w = state.r(u);
    state.set_p(u, state.p(u) + alpha * w);
    state.set_r(u, 0.0);
    lc.pushes += 1;
    let scaled = (1.0 - alpha) * w;
    // Division-free inner loop: `inv_out_degree` is the graph-maintained
    // 1/dout (see the dppr-graph docs); v has the edge v→u so dout(v) ≥ 1.
    for &v in g.in_neighbors(u) {
        lc.edge_traversals += 1;
        state.set_r(v, state.r(v) + scaled * g.inv_out_degree(v));
    }
}

/// Runs the sequential local push to convergence, starting from the given
/// seed vertices (the sources touched by the batch's invariant repairs).
/// On return every residual lies within `[−ε, ε]`.
pub fn sequential_local_push(
    g: &DynamicGraph,
    state: &PprState,
    seeds: &[VertexId],
    counters: &Counters,
    bufs: &mut SeqPushBuffers,
) {
    let alpha = state.config().alpha;
    let eps = state.config().epsilon;
    bufs.ensure(g.num_vertices());
    let mut lc = LocalCounters::default();

    for phase in Phase::BOTH {
        debug_assert!(bufs.queue.is_empty());
        for &u in seeds {
            let ui = u as usize;
            if phase.active(state.r(u), eps) && !bufs.in_queue[ui] {
                bufs.in_queue[ui] = true;
                bufs.queue.push_back(u);
            }
        }
        while let Some(u) = bufs.queue.pop_front() {
            bufs.in_queue[u as usize] = false;
            // The residual may have fallen back under the threshold since
            // enqueueing (possible only across phases); re-check.
            if !phase.active(state.r(u), eps) {
                continue;
            }
            counters.record_iteration(1);
            seq_push(g, state, u, alpha, &mut lc);
            for &v in g.in_neighbors(u) {
                let vi = v as usize;
                if phase.active(state.r(v), eps) && !bufs.in_queue[vi] {
                    bufs.in_queue[vi] = true;
                    bufs.queue.push_back(v);
                    lc.enqueued += 1;
                }
            }
        }
    }
    lc.flush(counters);
    debug_assert!(state.max_abs_residual() <= eps + 1e-12);
}

/// Per-iteration trace of the lock-step pushes (for Lemma 4).
#[derive(Debug, Clone, PartialEq)]
pub struct LockstepTrace {
    /// `‖Rs‖₁` after each iteration (index 0 = after the first frontier).
    pub l1_after_iteration: Vec<f64>,
    /// Frontier sizes per iteration.
    pub frontier_sizes: Vec<usize>,
    /// Total push operations performed.
    pub pushes: u64,
}

/// Iteration-structured sequential push: drains the whole current frontier
/// serially (fresh residual reads, as Lemma 4 assumes), records `‖Rs‖₁`
/// after every iteration, and repeats until convergence. The next frontier
/// is the set of vertices active **at the end of the iteration** — the same
/// semantics the parallel push realizes through crossing detection plus the
/// self-update re-check.
pub fn sequential_push_lockstep(
    g: &DynamicGraph,
    state: &PprState,
    seeds: &[VertexId],
) -> LockstepTrace {
    let alpha = state.config().alpha;
    let eps = state.config().epsilon;
    let mut trace = LockstepTrace {
        l1_after_iteration: Vec::new(),
        frontier_sizes: Vec::new(),
        pushes: 0,
    };
    let mut lc = LocalCounters::default();
    let mut touched_flag = vec![false; g.num_vertices()];

    for phase in Phase::BOTH {
        let mut frontier: Vec<VertexId> = dedup_seeds(seeds)
            .into_iter()
            .filter(|&u| phase.active(state.r(u), eps))
            .collect();
        while !frontier.is_empty() {
            trace.frontier_sizes.push(frontier.len());
            // Candidates for the next frontier: everything this iteration
            // wrote to (frontier members and their in-neighbors).
            let mut touched: Vec<VertexId> = Vec::new();
            let note = |v: VertexId, touched: &mut Vec<VertexId>, flags: &mut [bool]| {
                if !flags[v as usize] {
                    flags[v as usize] = true;
                    touched.push(v);
                }
            };
            for &u in &frontier {
                seq_push(g, state, u, alpha, &mut lc);
                trace.pushes += 1;
                note(u, &mut touched, &mut touched_flag);
                for &v in g.in_neighbors(u) {
                    note(v, &mut touched, &mut touched_flag);
                }
            }
            let mut next: Vec<VertexId> = Vec::new();
            for &v in &touched {
                touched_flag[v as usize] = false;
                if phase.active(state.r(v), eps) {
                    next.push(v);
                }
            }
            trace.l1_after_iteration.push(state.l1_residual());
            frontier = next;
        }
    }
    trace
}

/// Sorts and deduplicates a seed list (batch sources repeat).
pub fn dedup_seeds(seeds: &[VertexId]) -> Vec<VertexId> {
    let mut s = seeds.to_vec();
    s.sort_unstable();
    s.dedup();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PprConfig;
    use crate::invariant::{apply_update, max_invariant_violation};
    use dppr_graph::EdgeUpdate;

    /// Figure 1 graph (paper ids shifted by −1): 2→1, 3→1, 3→2, 4→3, 1→4.
    fn figure1_graph() -> DynamicGraph {
        DynamicGraph::from_edges([(1, 0), (2, 0), (2, 1), (3, 2), (0, 3)])
    }

    fn figure1_state() -> PprState {
        let cfg = PprConfig::new(0, 0.5, 0.1);
        let mut st = PprState::new(cfg);
        st.ensure_len(4);
        for (v, (p, r)) in [(0.5, 0.0625), (0.25, 0.0), (0.1875, 0.0), (0.0625, 0.0625)]
            .into_iter()
            .enumerate()
        {
            st.set_p(v as u32, p);
            st.set_r(v as u32, r);
        }
        st
    }

    #[test]
    fn figure1_full_sequence_matches_paper() {
        // Insert e1 = v1→v2, restore, then push: Figure 1(d) expects
        // P(1)=0.5781(25), R(1)=0, R(2)=0.0781(25), R(3)=0.039(0625).
        let mut g = figure1_graph();
        let mut st = figure1_state();
        let c = Counters::new();
        assert!(apply_update(&mut g, &mut st, EdgeUpdate::insert(0, 1), &c));
        let mut bufs = SeqPushBuffers::new();
        sequential_local_push(&g, &st, &[0], &c, &mut bufs);

        assert!((st.p(0) - 0.578125).abs() < 1e-12);
        assert!((st.r(0) - 0.0).abs() < 1e-12);
        assert!((st.r(1) - 0.078125).abs() < 1e-12);
        assert!((st.r(2) - 0.0390625).abs() < 1e-12);
        assert!((st.r(3) - 0.0625).abs() < 1e-12);
        assert!(st.converged());
        assert!(max_invariant_violation(&g, &st) < 1e-12);
        // Exactly one push (v1); v2, v3 stay below ε.
        assert_eq!(c.snapshot().pushes, 1);
    }

    #[test]
    fn figure3_sequential_takes_four_pushes() {
        // Figure 3(b): from R(1)=1, everything else 0, the sequential push
        // converges in 4 pushes with P(4)=0.09375 and R(1)=0.09375.
        let g = figure1_graph();
        let cfg = PprConfig::new(0, 0.5, 0.1);
        let mut st = PprState::new(cfg);
        st.ensure_len(4);
        st.set_p(0, 0.0); // the figure zeroes everything except R(1)
        st.set_r(0, 1.0);
        let c = Counters::new();
        let mut bufs = SeqPushBuffers::new();
        sequential_local_push(&g, &st, &[0], &c, &mut bufs);

        assert_eq!(c.snapshot().pushes, 4);
        assert!((st.p(0) - 0.5).abs() < 1e-12);
        assert!((st.p(1) - 0.25).abs() < 1e-12);
        assert!((st.p(2) - 0.1875).abs() < 1e-12);
        assert!((st.p(3) - 0.09375).abs() < 1e-12);
        assert!((st.r(0) - 0.09375).abs() < 1e-12);
        assert!(st.converged());
    }

    #[test]
    fn lockstep_matches_figure3_iterations() {
        let g = figure1_graph();
        let cfg = PprConfig::new(0, 0.5, 0.1);
        let mut st = PprState::new(cfg);
        st.ensure_len(4);
        st.set_p(0, 0.0);
        st.set_r(0, 1.0);
        let trace = sequential_push_lockstep(&g, &st, &[0]);
        // Iterations: {v1}, {v2,v3}, {v3,v4} — wait, that is the *parallel*
        // schedule; the serial lock-step drains v2 then v3 with fresh
        // residuals, so v3's push already includes v2's contribution and
        // the third frontier is {v4} only: {v1}, {v2,v3}, {v4}.
        assert_eq!(trace.frontier_sizes, vec![1, 2, 1]);
        assert_eq!(trace.pushes, 4);
        assert!(st.converged());
    }

    #[test]
    fn negative_residuals_drain_in_second_phase() {
        let mut g = figure1_graph();
        let mut st = figure1_state();
        let c = Counters::new();
        // Delete 3→2 (v4→v3): Figure-1 state has P(3) small, the deletion
        // swings R(3); whatever the sign, the push must converge.
        assert!(apply_update(&mut g, &mut st, EdgeUpdate::delete(3, 2), &c));
        let mut bufs = SeqPushBuffers::new();
        sequential_local_push(&g, &st, &[3], &c, &mut bufs);
        assert!(st.converged());
        assert!(max_invariant_violation(&g, &st) < 1e-12);
    }

    #[test]
    fn push_with_no_active_seeds_is_noop() {
        let g = figure1_graph();
        let st = figure1_state();
        let c = Counters::new();
        let before_p = st.estimates();
        let mut bufs = SeqPushBuffers::new();
        sequential_local_push(&g, &st, &[0, 1, 2, 3], &c, &mut bufs);
        assert_eq!(st.estimates(), before_p);
        assert_eq!(c.snapshot().pushes, 0);
    }

    #[test]
    fn dedup_seeds_sorts_and_dedups() {
        assert_eq!(dedup_seeds(&[3, 1, 3, 1, 0]), vec![0, 1, 3]);
        assert!(dedup_seeds(&[]).is_empty());
    }
}
