//! The [`Strategy`] trait and the primitive strategies.

use crate::test_runner::TestRng;
use rand::Rng;

/// A generator of values of type `Value`. Unlike real proptest there is
/// no value tree / shrinking: `generate` draws a value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates from `self`, then from the strategy `f` builds from
    /// that value (real proptest's dependent-generation combinator).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Regenerates until `f` accepts, up to a bounded number of tries.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive inputs; loosen the filter",
            self.whence
        );
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}
