//! Runs the full crash-injection harness as a test: every kill point
//! and corruption case must recover bit-identically to the uncrashed
//! baseline. The harness re-execs itself with `DPPR_CRASH` set, so this
//! is the one place the fault sites' positive paths actually fire.

#[test]
fn crash_recovery_matrix_passes() {
    let report = std::env::temp_dir()
        .join(format!("dppr_crash_harness_{}.json", std::process::id()));
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_crash_recovery"))
        .arg("--out")
        .arg(&report)
        .output()
        .expect("running the crash_recovery harness");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "harness failed (exit {:?})\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
        out.status.code()
    );
    let json = std::fs::read_to_string(&report).expect("harness wrote its report");
    assert!(json.contains("\"all_ok\": true"), "report not all-ok:\n{json}");
    std::fs::remove_file(&report).ok();
}
