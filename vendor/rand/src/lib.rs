//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small API-compatible shim instead (see `vendor/README.md`).
//! It covers exactly what the dppr crates call:
//!
//! * [`rngs::SmallRng`] — a seedable non-crypto generator (xoshiro256++,
//!   the same family the real `SmallRng` uses on 64-bit targets).
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`].
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`].
//! * [`seq::SliceRandom::shuffle`].
//!
//! Streams are deterministic functions of the seed, which is what the
//! test suites rely on; they are **not** bit-identical to the real
//! `rand`, and nothing here is cryptographically secure.

pub mod rngs;
pub mod seq;

/// Core source of randomness: 64 uniform bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the same
    /// expansion the real crate uses for this entry point).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for b in seed.as_mut().chunks_mut(8) {
            let v = sm.next().to_le_bytes();
            b.copy_from_slice(&v[..b.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from an RNG (`Standard` in real rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift sampling of `[0, span)` for `span ≤ 2^64`. Bias is at
/// most `span / 2^64`, negligible for every caller in this workspace.
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= 1 << 64);
    (rng.next_u64() as u128 * span) >> 64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + sample_span(rng, span) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let f = f64::sample(rng);
        self.start + f * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// SplitMix64 — used for seed expansion only.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f64..2.0);
            assert!((-1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of 10k uniforms should be near 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
