//! Figure 5 — streaming throughput of all engines across batch sizes.
//!
//! Reports updates consumed per second for `CPU-Base`, `CPU-Seq`,
//! `CPU-MT[Opt]`, `Monte-Carlo` and `Ligra` (the paper's GPU line is
//! covered by CPU-MT; see DESIGN.md substitutions). The paper's shape:
//! CPU-MT ≫ CPU-Seq ≫ CPU-Base, Monte-Carlo slowest of the maintained
//! baselines, Ligra between CPU-Seq and CPU-MT, and CPU-MT's advantage
//! growing with the batch size.
//!
//! Usage: `fig5_throughput [--full]`

use dppr_bench::{run_engine, EngineKind, ExperimentScale, Workload};
use dppr_core::PushVariant;
use std::time::Duration;

fn main() {
    let scale = ExperimentScale::from_args();
    let (batches, budget, walks_per_vertex): (&[usize], Duration, usize) = match scale {
        ExperimentScale::Quick => (&[100, 1_000, 10_000], Duration::from_secs(2), 6),
        ExperimentScale::Full => (&[1_000, 10_000, 100_000], Duration::from_secs(15), 2),
    };
    let engines = [
        EngineKind::CpuBase,
        EngineKind::CpuSeq,
        EngineKind::CpuMt(PushVariant::OPT),
        EngineKind::MonteCarlo { walks_per_vertex },
        EngineKind::Ligra,
    ];
    println!("# Figure 5: streaming throughput (updates/second)");
    println!("dataset\tengine\tbatch\tslides\tupdates_per_sec\tmean_slide_ms");
    for ds in scale.datasets() {
        let eps = ds.default_epsilon;
        let workload = Workload::prepare(ds, 2, 0.1, 10);
        for &batch in batches {
            for kind in engines {
                // CPU-Base at the largest batches would dominate the run
                // (the paper likewise drops it after this figure); keep one
                // slide so the point still appears.
                let cap = if kind == EngineKind::CpuBase && batch > 1_000 {
                    1
                } else {
                    scale.slides()
                };
                let summary = run_engine(kind, &workload, eps, batch, cap, budget);
                if summary.slides == 0 {
                    continue;
                }
                println!(
                    "{}\t{}\t{}\t{}\t{:.0}\t{:.3}",
                    workload.name,
                    kind.label(),
                    batch,
                    summary.slides,
                    summary.throughput(),
                    dppr_bench::ms(summary.mean_latency()),
                );
            }
        }
    }
}
