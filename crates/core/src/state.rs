//! The `(Ps, Rs)` vector pair every local-update engine maintains.

use crate::atomic::AtomicF64;
use crate::config::PprConfig;
use dppr_graph::VertexId;

/// Estimate and residual vectors for one source vertex.
///
/// Storage is atomic so the sequential and parallel engines can share one
/// representation (a state produced by one engine can be handed to the
/// other); sequential code pays nothing for the relaxed loads/stores on
/// x86-class hardware.
///
/// A fresh state encodes the **empty graph**: `Ps = α·e_s`, `Rs = 0`, which
/// satisfies Eq. 2 when every out-degree is zero. That is what lets the
/// initial sliding window be applied as a plain batch of insertions.
#[derive(Debug)]
pub struct PprState {
    cfg: PprConfig,
    p: Vec<AtomicF64>,
    r: Vec<AtomicF64>,
}

impl PprState {
    /// Creates the empty-graph state for the given configuration. The
    /// source vertex is materialized immediately.
    pub fn new(cfg: PprConfig) -> Self {
        let mut st = PprState { cfg, p: Vec::new(), r: Vec::new() };
        st.ensure_len(cfg.source as usize + 1);
        st
    }

    /// Creates a state that satisfies the Eq. 2 invariant on **any** graph
    /// with up to `n` vertices: `Ps ≡ 0`, `Rs = e_s`.
    ///
    /// Plugging `Ps ≡ 0` into the invariant leaves `α·Rs(v) = α·1{v=s}`,
    /// independent of the adjacency — so a source can be *opened* against an
    /// already-populated graph (the serving layer's `session open`) and one
    /// push to convergence yields ε-accurate estimates, without replaying
    /// the graph's edge history the way [`PprState::new`] requires.
    pub fn cold_start(cfg: PprConfig, n: usize) -> Self {
        let n = n.max(cfg.source as usize + 1);
        let mut st = PprState { cfg, p: Vec::new(), r: Vec::new() };
        st.p.resize_with(n, AtomicF64::default);
        st.r.resize_with(n, AtomicF64::default);
        // The source is materialized, so a later `ensure_len` growth will
        // not re-seed `P(s) = α` over the converged value.
        st.r[cfg.source as usize].store(1.0);
        st
    }

    /// The configuration this state was built for.
    #[inline]
    pub fn config(&self) -> &PprConfig {
        &self.cfg
    }

    /// Number of materialized vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// Whether no vertex is materialized (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// Grows the vectors to cover `n` vertices. New vertices get
    /// `P = R = 0` except the source, which gets `P = α` (its empty-graph
    /// invariant value).
    pub fn ensure_len(&mut self, n: usize) {
        if n <= self.p.len() {
            return;
        }
        let old = self.p.len();
        self.p.resize_with(n, AtomicF64::default);
        self.r.resize_with(n, AtomicF64::default);
        let s = self.cfg.source as usize;
        if (old..n).contains(&s) {
            self.p[s].store(self.cfg.alpha);
        }
    }

    /// Estimate `Ps(v)`; zero for vertices not yet materialized.
    #[inline]
    pub fn p(&self, v: VertexId) -> f64 {
        self.p.get(v as usize).map_or(0.0, AtomicF64::load)
    }

    /// Residual `Rs(v)`; zero for vertices not yet materialized.
    #[inline]
    pub fn r(&self, v: VertexId) -> f64 {
        self.r.get(v as usize).map_or(0.0, AtomicF64::load)
    }

    /// Sets `Ps(v)`. The vertex must be materialized.
    #[inline]
    pub fn set_p(&self, v: VertexId, value: f64) {
        self.p[v as usize].store(value);
    }

    /// Sets `Rs(v)`. The vertex must be materialized.
    #[inline]
    pub fn set_r(&self, v: VertexId, value: f64) {
        self.r[v as usize].store(value);
    }

    /// The atomic estimate vector (for the parallel kernels).
    #[inline]
    pub fn p_atomics(&self) -> &[AtomicF64] {
        &self.p
    }

    /// The atomic residual vector (for the parallel kernels).
    #[inline]
    pub fn r_atomics(&self) -> &[AtomicF64] {
        &self.r
    }

    /// Plain-value copy of the estimates.
    pub fn estimates(&self) -> Vec<f64> {
        self.p.iter().map(AtomicF64::load).collect()
    }

    /// Plain-value copy of the residuals.
    pub fn residuals(&self) -> Vec<f64> {
        self.r.iter().map(AtomicF64::load).collect()
    }

    /// `max_v |Rs(v)|` — the convergence criterion: the push has converged
    /// when this does not exceed ε.
    pub fn max_abs_residual(&self) -> f64 {
        self.r.iter().map(|x| x.load().abs()).fold(0.0, f64::max)
    }

    /// `‖Rs‖₁`, the quantity Lemma 4 tracks.
    pub fn l1_residual(&self) -> f64 {
        self.r.iter().map(|x| x.load().abs()).sum()
    }

    /// Whether every residual lies within `[−ε, ε]`.
    pub fn converged(&self) -> bool {
        self.max_abs_residual() <= self.cfg.epsilon
    }

    /// Deep copy (atomics are not `Clone`, so this is explicit).
    pub fn clone_values(&self) -> PprState {
        PprState {
            cfg: self.cfg,
            p: self.p.iter().map(|x| AtomicF64::new(x.load())).collect(),
            r: self.r.iter().map(|x| AtomicF64::new(x.load())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PprConfig {
        PprConfig::new(2, 0.5, 0.1)
    }

    #[test]
    fn new_state_encodes_empty_graph() {
        let st = PprState::new(cfg());
        assert_eq!(st.len(), 3);
        assert_eq!(st.p(2), 0.5); // α at the source
        assert_eq!(st.p(0), 0.0);
        assert_eq!(st.r(2), 0.0);
        assert!(st.converged());
    }

    #[test]
    fn cold_start_state_is_zero_except_source_residual() {
        let st = PprState::cold_start(cfg(), 6);
        assert_eq!(st.len(), 6);
        assert_eq!(st.p(2), 0.0); // no α at the source: Ps ≡ 0
        assert_eq!(st.r(2), 1.0);
        assert_eq!(st.r(0), 0.0);
        assert!(!st.converged()); // the unit residual still has to be pushed
        // Source beyond n: materialized anyway.
        let st = PprState::cold_start(PprConfig::new(9, 0.15, 1e-3), 4);
        assert_eq!(st.len(), 10);
        assert_eq!(st.r(9), 1.0);
    }

    #[test]
    fn cold_start_growth_keeps_source_untouched() {
        let mut st = PprState::cold_start(cfg(), 6);
        st.set_p(2, 0.33); // pretend the push converged
        st.set_r(2, 0.0);
        st.ensure_len(20);
        assert_eq!(st.p(2), 0.33); // growth must not re-seed P(s) = α
        assert_eq!(st.r(2), 0.0);
    }

    #[test]
    fn growth_preserves_source_value() {
        let mut st = PprState::new(cfg());
        st.ensure_len(10);
        assert_eq!(st.len(), 10);
        assert_eq!(st.p(2), 0.5);
        assert_eq!(st.p(9), 0.0);
        st.ensure_len(5); // shrink request is a no-op
        assert_eq!(st.len(), 10);
    }

    #[test]
    fn source_materialized_late() {
        // Source id beyond initial length: ensure_len must initialize it
        // exactly once.
        let c = PprConfig::new(7, 0.15, 1e-3);
        let st = PprState::new(c);
        assert_eq!(st.len(), 8);
        assert_eq!(st.p(7), 0.15);
    }

    #[test]
    fn unmaterialized_reads_are_zero() {
        let st = PprState::new(cfg());
        assert_eq!(st.p(100), 0.0);
        assert_eq!(st.r(100), 0.0);
    }

    #[test]
    fn residual_norms() {
        let mut st = PprState::new(cfg());
        st.ensure_len(4);
        st.set_r(0, 0.3);
        st.set_r(1, -0.4);
        assert_eq!(st.max_abs_residual(), 0.4);
        assert!((st.l1_residual() - 0.7).abs() < 1e-15);
        assert!(!st.converged());
    }

    #[test]
    fn clone_values_is_deep() {
        let mut st = PprState::new(cfg());
        st.ensure_len(4);
        st.set_p(1, 0.25);
        let cl = st.clone_values();
        st.set_p(1, 0.75);
        assert_eq!(cl.p(1), 0.25);
        assert_eq!(st.p(1), 0.75);
    }
}
