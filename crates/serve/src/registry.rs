//! The session registry: many tracked sources, LRU-bounded.
//!
//! A *session* is one source vertex whose PPR vector the write loop
//! maintains (via `MultiSourcePpr`) and publishes into a [`SnapshotCell`]
//! every epoch. The registry is the reader-facing index over those cells:
//! HTTP workers look a session up (a brief `RwLock` read that clones an
//! `Arc`), then answer any number of queries lock-free from the cell.
//!
//! Mutations — open, close, LRU eviction past the capacity budget — are
//! driven by the write loop only, which keeps the registry's contents in
//! lock-step with the `MultiSourcePpr` state indices it owns.

use crate::epoch::{EpochDomain, Reader, SnapshotCell};
use crate::snapshot::QuerySnapshot;
use dppr_graph::VertexId;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, RwLock};

/// One open session: the published snapshot cell plus LRU bookkeeping.
pub struct SessionEntry {
    source: VertexId,
    cell: SnapshotCell,
    /// LRU clock value of the last reader lookup.
    last_used: AtomicU64,
}

impl SessionEntry {
    /// The session's source vertex.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// The current snapshot (lock-free; see [`SnapshotCell::load`]).
    pub fn load(&self, reader: &Reader) -> Arc<QuerySnapshot> {
        self.cell.load(reader)
    }

    /// Publishes a new snapshot (write loop only).
    pub fn publish(&self, domain: &EpochDomain, snap: Arc<QuerySnapshot>) {
        self.cell.publish(domain, snap)
    }
}

/// Outcome of [`SessionRegistry::open`].
#[derive(Debug, PartialEq, Eq)]
pub enum OpenOutcome {
    /// The source already had a session; nothing changed.
    AlreadyOpen,
    /// A session was created; `evicted` names the LRU session that was
    /// closed to stay within the capacity budget, if any.
    Opened { evicted: Option<VertexId> },
}

/// The write-locked half of the registry: the session map plus an
/// ordered LRU index over it.
///
/// `lookup` bumps `SessionEntry::last_used` from reader threads without
/// the write lock, so the index is allowed to lag: `lru` orders each
/// session by the stamp it was last *indexed* at (mirrored in
/// `indexed`), not necessarily its current stamp. Eviction pops the
/// index minimum and lazily re-files any entry whose stamp moved since —
/// each re-file corresponds to at least one intervening lookup, so the
/// scan stays amortized O(log n) instead of the old O(n) full-table
/// minimum under the write lock.
#[derive(Default)]
struct Tables {
    map: HashMap<VertexId, Arc<SessionEntry>>,
    /// `(indexed stamp, source)`, ordered stalest-first.
    lru: BTreeSet<(u64, VertexId)>,
    /// The stamp each source is currently filed under in `lru`.
    indexed: HashMap<VertexId, u64>,
}

impl Tables {
    fn file(&mut self, source: VertexId, stamp: u64) {
        if let Some(old) = self.indexed.insert(source, stamp) {
            self.lru.remove(&(old, source));
        }
        self.lru.insert((stamp, source));
    }

    fn unfile(&mut self, source: VertexId) {
        if let Some(stamp) = self.indexed.remove(&source) {
            self.lru.remove(&(stamp, source));
        }
    }

    /// Evicts and returns the least-recently-used session. Pops the index
    /// minimum; a popped entry whose live stamp advanced past its indexed
    /// stamp is re-filed at the live stamp and the scan continues.
    fn evict_lru(&mut self) -> VertexId {
        loop {
            let (stamp, source) =
                *self.lru.iter().next().expect("capacity >= 1 implies a non-empty index here");
            let live = self.map[&source].last_used.load(Relaxed);
            if live == stamp {
                self.lru.remove(&(stamp, source));
                self.indexed.remove(&source);
                self.map.remove(&source);
                return source;
            }
            // Stale index entry: lookups bumped this session since it was
            // filed. Re-file at the live stamp (strictly larger) and keep
            // scanning.
            self.file(source, live);
        }
    }
}

/// Reader-facing index of open sessions with an LRU capacity budget.
pub struct SessionRegistry {
    domain: Arc<EpochDomain>,
    table: RwLock<Tables>,
    capacity: usize,
    clock: AtomicU64,
}

impl SessionRegistry {
    /// An empty registry holding at most `capacity` sessions (min 1).
    pub fn new(domain: Arc<EpochDomain>, capacity: usize) -> Self {
        SessionRegistry {
            domain,
            table: RwLock::new(Tables::default()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
        }
    }

    /// The epoch domain sessions publish under.
    pub fn domain(&self) -> &Arc<EpochDomain> {
        &self.domain
    }

    /// The capacity budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.table.read().unwrap().map.len()
    }

    /// Whether no session is open.
    pub fn is_empty(&self) -> bool {
        self.table.read().unwrap().map.is_empty()
    }

    /// Open sources, ascending.
    pub fn sources(&self) -> Vec<VertexId> {
        let mut v: Vec<VertexId> = self.table.read().unwrap().map.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Looks a session up for answering queries; bumps its LRU stamp.
    /// The bump is a lock-free atomic store — the ordered LRU index is
    /// reconciled lazily by the next eviction, never on the query path.
    pub fn lookup(&self, source: VertexId) -> Option<Arc<SessionEntry>> {
        let entry = self.table.read().unwrap().map.get(&source).cloned()?;
        entry.last_used.store(self.clock.fetch_add(1, Relaxed) + 1, Relaxed);
        Some(entry)
    }

    /// Looks a session up *without* touching its LRU stamp (the write
    /// loop's publish scan must not keep every session artificially hot).
    pub fn peek(&self, source: VertexId) -> Option<Arc<SessionEntry>> {
        self.table.read().unwrap().map.get(&source).cloned()
    }

    /// Opens a session publishing `initial` (write loop only). Past the
    /// capacity budget the least-recently-used session is evicted and
    /// reported so the caller can drop the matching maintained state.
    pub fn open(&self, source: VertexId, initial: Arc<QuerySnapshot>) -> OpenOutcome {
        let mut table = self.table.write().unwrap();
        if table.map.contains_key(&source) {
            return OpenOutcome::AlreadyOpen;
        }
        let mut evicted = None;
        if table.map.len() >= self.capacity {
            evicted = Some(table.evict_lru());
        }
        let stamp = self.clock.fetch_add(1, Relaxed) + 1;
        table.map.insert(
            source,
            Arc::new(SessionEntry {
                source,
                cell: SnapshotCell::new(initial),
                last_used: AtomicU64::new(stamp),
            }),
        );
        table.file(source, stamp);
        OpenOutcome::Opened { evicted }
    }

    /// Closes a session (write loop only); `false` if it was not open.
    pub fn close(&self, source: VertexId) -> bool {
        let mut table = self.table.write().unwrap();
        table.unfile(source);
        table.map.remove(&source).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(source: VertexId) -> Arc<QuerySnapshot> {
        Arc::new(QuerySnapshot::new(source, 0, 0.15, 1e-3, vec![0.0; 4]))
    }

    fn registry(capacity: usize) -> SessionRegistry {
        SessionRegistry::new(EpochDomain::new(4), capacity)
    }

    #[test]
    fn open_lookup_close() {
        let r = registry(8);
        assert!(r.is_empty());
        assert_eq!(r.open(3, snap(3)), OpenOutcome::Opened { evicted: None });
        assert_eq!(r.open(3, snap(3)), OpenOutcome::AlreadyOpen);
        assert_eq!(r.len(), 1);
        assert_eq!(r.sources(), vec![3]);
        let entry = r.lookup(3).expect("session open");
        assert_eq!(entry.source(), 3);
        assert!(r.lookup(4).is_none());
        assert!(r.close(3));
        assert!(!r.close(3));
        assert!(r.is_empty());
    }

    #[test]
    fn eviction_picks_least_recently_used() {
        let r = registry(3);
        for s in [10, 11, 12] {
            r.open(s, snap(s));
        }
        // Touch 10 and 11; 12 becomes the LRU.
        r.lookup(10);
        r.lookup(11);
        assert_eq!(
            r.open(13, snap(13)),
            OpenOutcome::Opened { evicted: Some(12) }
        );
        assert_eq!(r.sources(), vec![10, 11, 13]);
        // peek must NOT count as a use: 10 stays hotter than 11 only via
        // its later lookup, and peeking 11 repeatedly changes nothing.
        r.lookup(10);
        r.lookup(13);
        r.peek(11);
        r.peek(11);
        assert_eq!(
            r.open(14, snap(14)),
            OpenOutcome::Opened { evicted: Some(11) }
        );
        assert_eq!(r.sources(), vec![10, 13, 14]);
    }

    #[test]
    fn lazy_lru_index_survives_churn_and_stays_exact() {
        // Interleave opens, closes, and stamp-bumping lookups, then check
        // every eviction picks the true LRU (the lazily-maintained index
        // must re-file entries whose stamps moved since they were filed).
        let r = registry(4);
        for s in [1, 2, 3, 4] {
            r.open(s, snap(s));
        }
        // Bump everything out of index order: 1 becomes hottest, 2 next.
        r.lookup(4);
        r.lookup(3);
        r.lookup(2);
        r.lookup(1);
        assert_eq!(r.open(5, snap(5)), OpenOutcome::Opened { evicted: Some(4) });
        // Close a mid-heat session; its index entry must go with it.
        assert!(r.close(2));
        r.open(6, snap(6));
        // Table: {1 hot, 3 cold, 5, 6}; 3 is now the LRU.
        assert_eq!(r.open(7, snap(7)), OpenOutcome::Opened { evicted: Some(3) });
        assert_eq!(r.sources(), vec![1, 5, 6, 7]);
        // Reopening an evicted source is a fresh (hottest) entry.
        r.lookup(5);
        r.lookup(6);
        r.lookup(7);
        assert_eq!(r.open(8, snap(8)), OpenOutcome::Opened { evicted: Some(1) });
    }

    #[test]
    fn published_snapshots_reach_readers_through_the_registry() {
        let r = registry(2);
        let reader = r.domain().register_reader();
        r.open(5, snap(5));
        let entry = r.lookup(5).unwrap();
        assert_eq!(entry.load(&reader).epoch(), 0);
        let e = r.domain().advance();
        entry.publish(
            r.domain(),
            Arc::new(QuerySnapshot::new(5, e, 0.15, 1e-3, vec![0.5; 4])),
        );
        let got = r.lookup(5).unwrap().load(&reader);
        assert_eq!(got.epoch(), 1);
        assert_eq!(got.estimates(), &[0.5; 4]);
    }
}
