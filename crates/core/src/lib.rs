//! Core engines for dynamic Personalized PageRank maintenance.
//!
//! This crate implements the algorithmic content of Guo, Li, Sha & Tan,
//! *Parallel Personalized PageRank on Dynamic Graphs* (PVLDB 11(1), 2017):
//!
//! * [`invariant`] — `RestoreInvariant` (Algorithm 1) and the Eq. 2
//!   invariant checker.
//! * [`seq`] — `SequentialLocalPush` (Algorithm 2), both the practical
//!   worklist form and the lock-step iteration form used by Lemma 4.
//! * [`par`] — `ParallelLocalPush` (Algorithm 3) and `OptParallelPush`
//!   (Algorithm 4), covering the full 2×2 optimization matrix of Table 3
//!   ([`PushVariant`]): eager propagation × local duplicate detection.
//! * [`engine`] — the [`DynamicPprEngine`] trait plus the paper's engine
//!   line-up: `CPU-Base` / `CPU-Seq` ([`SeqEngine`]) and `CPU-MT`
//!   ([`ParallelEngine`]).
//! * [`atomic`] — the atomic `f64` fetch-add returning the *before-value*,
//!   the primitive §4.2's local duplicate detection is built on.
//! * [`counters`] — software profiling counters (push operations, edge
//!   traversals, CAS retries, frontier statistics) substituting for the
//!   paper's nvprof/PAPI hardware metrics (Table 4).
//! * [`ground_truth`] — a Gauss–Jacobi solver for the exact fix-point of
//!   Eq. 2, used to validate the ε-approximation guarantee.
//! * [`forward`] — the classic forward (source-side) local push and a
//!   conductance sweep cut, supporting the application examples.
//! * [`multi`] — maintenance of many PPR vectors side by side (the
//!   "multiple personalized unit vectors" building block of §2.1).
//!
//! # Semantics
//!
//! Following the paper's equations exactly, a [`PprState`] for "source" `s`
//! maintains, for every vertex `v`, an estimate `Ps(v)` of the probability
//! that an α-terminating random walk **started at `v`** stops at `s` (the
//! contribution / reverse PPR vector of target `s`), with the invariant
//!
//! ```text
//! Ps(v) + α·Rs(v) = Σ_{x ∈ Nout(v)} (1−α)·Ps(x)/dout(v) + α·1{v=s}
//! ```
//!
//! holding at all times and `|π(v) − Ps(v)| ≤ ε` for all `v` whenever no
//! residual exceeds ε in absolute value. See `DESIGN.md` for why this is
//! the quantity the paper's Algorithms 1–4 compute.

pub mod atomic;
pub mod checksum;
pub mod config;
pub mod counters;
pub mod engine;
pub mod forward;
pub mod ground_truth;
pub mod invariant;
pub mod multi;
pub mod par;
pub mod persist;
pub mod queries;
pub mod seq;
pub mod state;
pub mod variants;

pub use atomic::AtomicF64;
pub use checksum::{crc32, Crc32};
pub use config::{Phase, PprConfig};
pub use counters::{CounterSnapshot, Counters};
pub use engine::{BatchStats, DynamicPprEngine, ParallelEngine, SeqEngine, UpdateMode};
pub use ground_truth::{exact_ppr, exact_ppr_seq};
pub use invariant::{apply_update, max_invariant_violation, restore_invariant};
pub use multi::MultiSourcePpr;
pub use par::PushOpts;
pub use state::PprState;
pub use variants::PushVariant;
