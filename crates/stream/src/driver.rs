//! The sliding-window driver and its run reports.

use dppr_core::{BatchStats, CounterSnapshot, DynamicPprEngine};
use dppr_graph::{DynamicGraph, GraphStream, SlidingWindow};
use std::time::{Duration, Instant};

/// One window slide as observed by the driver.
#[derive(Debug, Clone, Copy)]
pub struct SlideRecord {
    /// Slide index (0-based).
    pub slide: usize,
    /// Updates handed to the engine (inserts + deletes, arcs).
    pub batch_updates: usize,
    /// Updates that actually changed the graph.
    pub applied: usize,
    /// Engine latency for the batch.
    pub latency: Duration,
    /// Counter deltas for the batch.
    pub counters: CounterSnapshot,
    /// The paper's `|V^t|` after the slide — vertices with non-zero
    /// degree. O(1) to record (the graph maintains the count).
    pub active_vertices: usize,
}

/// Aggregate of a streaming run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Engine name.
    pub engine: String,
    /// Number of slides executed.
    pub slides: usize,
    /// Total updates handed to the engine.
    pub total_updates: usize,
    /// Sum of per-slide latencies.
    pub total_latency: Duration,
    /// Per-slide records.
    pub records: Vec<SlideRecord>,
}

impl RunSummary {
    /// Sustained throughput in updates (edge insertions + deletions) per
    /// second — the paper's "edges consumed per second".
    pub fn throughput(&self) -> f64 {
        let secs = self.total_latency.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_updates as f64 / secs
        }
    }

    /// Mean per-slide latency.
    pub fn mean_latency(&self) -> Duration {
        if self.slides == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.slides as u32
        }
    }

    /// Maximum per-slide latency.
    pub fn max_latency(&self) -> Duration {
        self.records
            .iter()
            .map(|r| r.latency)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Sum of counter deltas over all recorded slides.
    pub fn total_counters(&self) -> CounterSnapshot {
        let mut total = CounterSnapshot::default();
        for r in &self.records {
            total.pushes += r.counters.pushes;
            total.edge_traversals += r.counters.edge_traversals;
            total.atomic_adds += r.counters.atomic_adds;
            total.cas_retries += r.counters.cas_retries;
            total.enqueued += r.counters.enqueued;
            total.dup_avoided += r.counters.dup_avoided;
            total.iterations += r.counters.iterations;
            total.max_frontier = total.max_frontier.max(r.counters.max_frontier);
            total.frontier_total += r.counters.frontier_total;
            total.restore_ops += r.counters.restore_ops;
            total.batches += r.counters.batches;
        }
        total
    }
}

/// Owns the graph and the window; feeds any engine.
pub struct StreamDriver {
    window: SlidingWindow,
    graph: DynamicGraph,
    bootstrapped: bool,
}

impl StreamDriver {
    /// Creates a driver whose initial window covers `init_fraction` of the
    /// stream (the paper uses 0.1).
    pub fn new(stream: GraphStream, init_fraction: f64) -> Self {
        StreamDriver {
            window: SlidingWindow::new(stream, init_fraction),
            graph: DynamicGraph::new(),
            bootstrapped: false,
        }
    }

    /// Re-creates a driver at an explicit window position `[start, end)`
    /// — the recovery path. The stream is a seeded permutation, so the
    /// window bounds recorded in a checkpoint fully determine its
    /// content; the graph is rebuilt from the window edges directly (no
    /// engine involvement — recovered PPR states come from the
    /// checkpoint, not from re-pushing). The driver comes back already
    /// bootstrapped: the next [`StreamDriver::slide_batch`] continues the
    /// stream exactly where the crashed process would have.
    pub fn resume_from(stream: GraphStream, start: usize, end: usize) -> Self {
        let window = SlidingWindow::resume_at(stream, start, end);
        let mut graph = DynamicGraph::new();
        for u in window.initial_updates() {
            graph.apply(u);
        }
        StreamDriver { window, graph, bootstrapped: true }
    }

    /// Current window bounds `[start, end)` in logical stream positions —
    /// what a checkpoint records so [`StreamDriver::resume_from`] can
    /// rebuild this exact state.
    pub fn window_range(&self) -> (usize, usize) {
        (self.window.start(), self.window.end())
    }

    /// Total logical edges in the backing stream.
    pub fn stream_len(&self) -> usize {
        self.window.stream_len()
    }

    /// Fraction of the stream that has arrived — window end over stream
    /// length, the serving layer's notion of ingest progress.
    pub fn fraction_consumed(&self) -> f64 {
        let n = self.window.stream_len();
        if n == 0 {
            1.0
        } else {
            self.window.end() as f64 / n as f64
        }
    }

    /// The graph as of the last processed batch.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Mutable access to the owned graph, for callers that maintain their
    /// own state (e.g. a multi-source session registry) and therefore apply
    /// the batches from [`StreamDriver::take_initial_batch`] /
    /// [`StreamDriver::slide_batch`] themselves.
    pub fn graph_mut(&mut self) -> &mut DynamicGraph {
        &mut self.graph
    }

    /// The underlying window.
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }

    /// Applies the initial window through the engine as one insertion
    /// batch, so its state is converged before sliding starts.
    pub fn bootstrap(&mut self, engine: &mut dyn DynamicPprEngine) -> BatchStats {
        assert!(!self.bootstrapped, "driver already bootstrapped");
        self.bootstrapped = true;
        let init = self.window.initial_updates();
        engine.apply_batch(&mut self.graph, &init)
    }

    /// Marks the driver bootstrapped and hands back the initial-window
    /// insertion batch instead of applying it. For callers whose state is
    /// not a single [`DynamicPprEngine`] (e.g. `dppr-serve`'s multi-source
    /// registry): apply the batch against [`StreamDriver::graph_mut`]
    /// yourself, then pair with [`StreamDriver::slide_batch`].
    pub fn take_initial_batch(&mut self) -> Vec<dppr_graph::EdgeUpdate> {
        assert!(!self.bootstrapped, "driver already bootstrapped");
        self.bootstrapped = true;
        self.window.initial_updates()
    }

    /// Slides the window by `k` logical edges and returns the raw update
    /// batch without applying it; `None` when the stream is exhausted. The
    /// caller applies it against [`StreamDriver::graph_mut`] (this is the
    /// manual counterpart of one [`StreamDriver::run_slides`] iteration).
    pub fn slide_batch(&mut self, k: usize) -> Option<Vec<dppr_graph::EdgeUpdate>> {
        assert!(self.bootstrapped, "bootstrap the engine first");
        self.window.slide(k)
    }

    /// Slides the window forward until its end reaches exactly `end`
    /// (one batch covering the gap), returning the raw update batch;
    /// `None` when the window is already at or past `end`. Recovery
    /// paths use this to close the distance between a checkpointed
    /// window and the WAL tail in a single deterministic step.
    pub fn slide_to(&mut self, end: usize) -> Option<Vec<dppr_graph::EdgeUpdate>> {
        let (_, cur_end) = self.window_range();
        let k = end.checked_sub(cur_end).filter(|k| *k > 0)?;
        self.slide_batch(k)
    }

    /// Runs up to `max_slides` slides of `k` logical edges each, stopping
    /// early when the stream is exhausted.
    pub fn run_slides(
        &mut self,
        engine: &mut dyn DynamicPprEngine,
        k: usize,
        max_slides: usize,
    ) -> RunSummary {
        self.run_slides_with(engine, k, max_slides, |_, _, _| {})
    }

    /// [`StreamDriver::run_slides`] with a post-slide hook: after each
    /// batch is applied (engine converged, graph mutated) the hook sees the
    /// engine, the graph, and the slide record. A snapshot taken here is
    /// guaranteed to be a converged, internally consistent state — the
    /// publication point for single-engine serving pipelines. (The
    /// multi-source write loop in `dppr-serve` needs the state *between*
    /// window slide and publication in its own hands, so it uses the
    /// manual [`StreamDriver::take_initial_batch`] /
    /// [`StreamDriver::slide_batch`] form of the same contract instead.)
    pub fn run_slides_with(
        &mut self,
        engine: &mut dyn DynamicPprEngine,
        k: usize,
        max_slides: usize,
        mut on_slide: impl FnMut(&dyn DynamicPprEngine, &DynamicGraph, &SlideRecord),
    ) -> RunSummary {
        assert!(self.bootstrapped, "bootstrap the engine first");
        let mut summary = RunSummary {
            engine: engine.name(),
            slides: 0,
            total_updates: 0,
            total_latency: Duration::ZERO,
            records: Vec::new(),
        };
        for slide in 0..max_slides {
            let Some(batch) = self.window.slide(k) else {
                break;
            };
            let stats = engine.apply_batch(&mut self.graph, &batch);
            summary.slides += 1;
            summary.total_updates += batch.len();
            summary.total_latency += stats.latency;
            let record = SlideRecord {
                slide,
                batch_updates: batch.len(),
                applied: stats.applied,
                latency: stats.latency,
                counters: stats.counters,
                active_vertices: self.graph.active_vertices(),
            };
            on_slide(engine, &self.graph, &record);
            summary.records.push(record);
        }
        summary
    }

    /// Runs slides until the cumulative engine latency exceeds `budget`
    /// (the paper's "report the number of edges consumed per second after
    /// running for 5 minutes") or the stream ends.
    pub fn run_for(
        &mut self,
        engine: &mut dyn DynamicPprEngine,
        k: usize,
        budget: Duration,
    ) -> RunSummary {
        assert!(self.bootstrapped, "bootstrap the engine first");
        let mut summary = RunSummary {
            engine: engine.name(),
            slides: 0,
            total_updates: 0,
            total_latency: Duration::ZERO,
            records: Vec::new(),
        };
        let start = Instant::now();
        let mut slide = 0usize;
        while start.elapsed() < budget {
            let Some(batch) = self.window.slide(k) else {
                break;
            };
            let stats = engine.apply_batch(&mut self.graph, &batch);
            summary.slides += 1;
            summary.total_updates += batch.len();
            summary.total_latency += stats.latency;
            summary.records.push(SlideRecord {
                slide,
                batch_updates: batch.len(),
                applied: stats.applied,
                latency: stats.latency,
                counters: stats.counters,
                active_vertices: self.graph.active_vertices(),
            });
            slide += 1;
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dppr_core::{
        exact_ppr, ParallelEngine, PprConfig, PushVariant, SeqEngine, UpdateMode,
    };
    use dppr_graph::generators::erdos_renyi;
    use dppr_graph::VertexId;

    fn stream() -> GraphStream {
        GraphStream::directed(erdos_renyi(80, 2_000, 42)).permuted(7)
    }

    #[test]
    fn bootstrap_builds_initial_window() {
        let mut d = StreamDriver::new(stream(), 0.1);
        let mut e = ParallelEngine::new(PprConfig::new(0, 0.2, 1e-3), PushVariant::OPT);
        let stats = d.bootstrap(&mut e);
        assert_eq!(stats.applied, 200);
        assert_eq!(d.graph().num_edges(), 200);
    }

    #[test]
    fn slides_track_window_and_stay_accurate() {
        let mut d = StreamDriver::new(stream(), 0.1);
        let mut e = ParallelEngine::new(PprConfig::new(0, 0.2, 1e-3), PushVariant::OPT);
        d.bootstrap(&mut e);
        let summary = d.run_slides(&mut e, 50, 10);
        assert_eq!(summary.slides, 10);
        assert_eq!(summary.total_updates, 10 * 100);
        assert_eq!(d.graph().num_edges(), 200); // window size is invariant
        assert!(summary.throughput() > 0.0);
        assert!(summary.mean_latency() > Duration::ZERO);
        // The maintained estimate matches the from-scratch solution of the
        // final window graph.
        let truth = exact_ppr(d.graph(), 0, 0.2, 1e-12);
        for v in 0..d.graph().num_vertices() as VertexId {
            assert!((e.estimate(v) - truth[v as usize]).abs() <= 1e-3 + 1e-9);
        }
    }

    #[test]
    fn stream_exhaustion_stops_early() {
        let mut d = StreamDriver::new(stream(), 0.5);
        let mut e = SeqEngine::new(PprConfig::new(0, 0.2, 1e-2), UpdateMode::Batched);
        d.bootstrap(&mut e);
        // 1000 edges remain → only 2 slides of 400 fit.
        let summary = d.run_slides(&mut e, 400, 100);
        assert_eq!(summary.slides, 2);
    }

    #[test]
    fn run_for_respects_budget() {
        let mut d = StreamDriver::new(stream(), 0.1);
        let mut e = SeqEngine::new(PprConfig::new(0, 0.2, 1e-2), UpdateMode::Batched);
        d.bootstrap(&mut e);
        let summary = d.run_for(&mut e, 10, Duration::from_millis(200));
        assert!(summary.slides > 0);
    }

    #[test]
    #[should_panic(expected = "bootstrap the engine first")]
    fn running_without_bootstrap_panics() {
        let mut d = StreamDriver::new(stream(), 0.1);
        let mut e = SeqEngine::new(PprConfig::new(0, 0.2, 1e-2), UpdateMode::Batched);
        d.run_slides(&mut e, 10, 1);
    }

    #[test]
    fn summary_aggregates_counters() {
        let mut d = StreamDriver::new(stream(), 0.1);
        let mut e = ParallelEngine::new(PprConfig::new(0, 0.2, 1e-3), PushVariant::OPT);
        d.bootstrap(&mut e);
        let summary = d.run_slides(&mut e, 100, 5);
        let total = summary.total_counters();
        assert_eq!(total.batches, 5);
        assert!(total.restore_ops > 0);
    }

    #[test]
    fn post_slide_hook_sees_converged_consistent_state() {
        use dppr_core::max_invariant_violation;
        let mut d = StreamDriver::new(stream(), 0.1);
        let mut e = ParallelEngine::new(PprConfig::new(0, 0.2, 1e-3), PushVariant::OPT);
        d.bootstrap(&mut e);
        let mut hook_calls = 0usize;
        let summary = d.run_slides_with(&mut e, 100, 4, |engine, g, record| {
            hook_calls += 1;
            assert_eq!(record.slide + 1, hook_calls);
            // The hook fires at the publication point: the engine must be
            // converged and invariant-consistent against the mutated graph.
            let estimates = engine.estimates();
            assert_eq!(estimates.len(), g.num_vertices());
            assert_eq!(record.active_vertices, g.active_vertices());
        });
        assert_eq!(hook_calls, 4);
        assert_eq!(summary.slides, 4);
        assert!(max_invariant_violation(d.graph(), e.state()) < 1e-9);
    }

    #[test]
    fn manual_batches_match_engine_driven_run() {
        // Driving the window by hand (the serve write loop's shape) must
        // visit exactly the same batches as run_slides.
        let mut manual = StreamDriver::new(stream(), 0.1);
        let mut e1 = SeqEngine::new(PprConfig::new(0, 0.2, 1e-2), UpdateMode::Batched);
        let init = manual.take_initial_batch();
        e1.apply_batch(manual.graph_mut(), &init);
        let mut slides = 0usize;
        while let Some(batch) = manual.slide_batch(75) {
            e1.apply_batch(manual.graph_mut(), &batch);
            slides += 1;
            if slides == 6 {
                break;
            }
        }
        let mut driven = StreamDriver::new(stream(), 0.1);
        let mut e2 = SeqEngine::new(PprConfig::new(0, 0.2, 1e-2), UpdateMode::Batched);
        driven.bootstrap(&mut e2);
        driven.run_slides(&mut e2, 75, 6);
        assert_eq!(manual.graph().num_edges(), driven.graph().num_edges());
        for v in 0..driven.graph().num_vertices() as VertexId {
            assert_eq!(e1.estimate(v), e2.estimate(v), "vertex {v}");
        }
    }

    #[test]
    #[should_panic(expected = "bootstrap the engine first")]
    fn slide_batch_without_bootstrap_panics() {
        let mut d = StreamDriver::new(stream(), 0.1);
        d.slide_batch(10);
    }

    #[test]
    fn resume_from_matches_live_driver() {
        // Drive a window forward, then resume a second driver at the
        // recorded range: graphs must be identical and the next batches
        // must coincide arc for arc.
        let mut live = StreamDriver::new(stream(), 0.1);
        let _ = live.take_initial_batch();
        for _ in 0..4 {
            live.slide_batch(60).unwrap();
        }
        let (start, end) = live.window_range();
        let mut resumed = StreamDriver::resume_from(stream(), start, end);
        assert_eq!(resumed.window_range(), (start, end));
        let mut a: Vec<_> = live.window().window_edges().collect();
        let mut b: Vec<_> = resumed.window().window_edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(resumed.graph().num_edges(), live.window().window_len());
        assert_eq!(live.slide_batch(60), resumed.slide_batch(60));
    }

    #[test]
    fn records_track_active_vertices() {
        let mut d = StreamDriver::new(stream(), 0.1);
        let mut e = SeqEngine::new(PprConfig::new(0, 0.2, 1e-2), UpdateMode::Batched);
        d.bootstrap(&mut e);
        let summary = d.run_slides(&mut e, 50, 3);
        for r in &summary.records {
            assert!(r.active_vertices > 0);
            assert!(r.active_vertices <= d.graph().num_vertices());
        }
        assert_eq!(
            summary.records.last().unwrap().active_vertices,
            d.graph().active_vertices()
        );
    }
}
