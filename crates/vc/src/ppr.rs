//! The batched dynamic-PPR push expressed **only** through the
//! vertex-centric abstraction — the paper's `Ligra` baseline.
//!
//! Deliberate limitations, mirroring §5.3's explanation of why the generic
//! system loses to the specialized kernels:
//!
//! * Bulk-synchronous `vertexMap` + `edgeMap` force Algorithm 3's stale
//!   snapshot order; *eager propagation* ("active vertices … absorb
//!   incoming messages") cannot be expressed.
//! * Frontier dedup must go through the generic CAS-claim contract of
//!   `edgeMap`'s update function; *local duplicate detection* needs the
//!   before-value of the residual add, which the abstraction does not
//!   surface.

use crate::edge_map::{edge_map, vertex_map, Direction, EdgeMapOptions};
use crate::subset::VertexSubset;
use dppr_core::{
    apply_update, AtomicF64, BatchStats, CounterSnapshot, Counters, DynamicPprEngine, Phase,
    PprConfig, PprState,
};
use dppr_graph::{DynamicGraph, EdgeUpdate, VertexId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Dynamic PPR maintained through the vertex-centric engine.
pub struct LigraEngine {
    state: PprState,
    counters: Counters,
    seeds: Vec<VertexId>,
    /// Residual snapshots taken during self-update, read by propagation.
    ws: Vec<AtomicF64>,
    /// CAS-claim flags for frontier dedup.
    claimed: Vec<AtomicBool>,
    opts: EdgeMapOptions,
}

impl LigraEngine {
    /// Creates an engine with Ligra's default dense/sparse threshold.
    pub fn new(cfg: PprConfig) -> Self {
        LigraEngine {
            state: PprState::new(cfg),
            counters: Counters::new(),
            seeds: Vec::new(),
            ws: Vec::new(),
            claimed: Vec::new(),
            opts: EdgeMapOptions::default(),
        }
    }

    /// Overrides the edge-map options (used by the frontier-generation
    /// ablation benchmarks).
    pub fn with_options(cfg: PprConfig, opts: EdgeMapOptions) -> Self {
        let mut e = Self::new(cfg);
        e.opts = opts;
        e
    }

    /// Direct access to the maintained state.
    pub fn state(&self) -> &PprState {
        &self.state
    }

    fn ensure(&mut self, n: usize) {
        if self.ws.len() < n {
            self.ws.resize_with(n, AtomicF64::default);
            self.claimed.resize_with(n, AtomicBool::default);
        }
    }

    fn push(&mut self, g: &DynamicGraph) {
        let n = g.num_vertices();
        self.ensure(n);
        let cfg = *self.state.config();
        let alpha = cfg.alpha;
        let eps = cfg.epsilon;
        let state = &self.state;
        let ws = &self.ws;
        let claimed = &self.claimed;

        for phase in Phase::BOTH {
            let mut seed_ids: Vec<VertexId> = self.seeds.clone();
            seed_ids.sort_unstable();
            seed_ids.dedup();
            seed_ids.retain(|&u| phase.active(state.r(u), eps));
            let mut frontier = VertexSubset::from_sparse(n, seed_ids);
            while !frontier.is_empty() {
                self.counters.record_iteration(frontier.len());
                // vertexMap: take out residuals (stale snapshots).
                let mut fq = vertex_map(&mut frontier, |u| {
                    let w = state.r_atomics()[u as usize].swap(0.0);
                    let p = &state.p_atomics()[u as usize];
                    p.store(p.load() + alpha * w);
                    ws[u as usize].store(w);
                    true
                });
                // edgeMap along in-edges: propagate, claim-dedup.
                let mut next = edge_map(
                    g,
                    &mut fq,
                    Direction::In,
                    self.opts,
                    |u, v| {
                        // Division-free: multiply by the graph-maintained
                        // 1/dout (v has the edge v→u, so dout(v) ≥ 1).
                        let inc =
                            (1.0 - alpha) * ws[u as usize].load() * g.inv_out_degree(v);
                        let r_cur = state.r_atomics()[v as usize].fetch_add(inc) + inc;
                        phase.active(r_cur, eps)
                            && !claimed[v as usize].swap(true, Ordering::Relaxed)
                    },
                    |u, v| {
                        // Dense: one task owns v, plain update is fine.
                        let inc =
                            (1.0 - alpha) * ws[u as usize].load() * g.inv_out_degree(v);
                        let r = &state.r_atomics()[v as usize];
                        let r_cur = r.load() + inc;
                        r.store(r_cur);
                        phase.active(r_cur, eps)
                            && !claimed[v as usize].swap(true, Ordering::Relaxed)
                    },
                    |_| true,
                );
                for &v in next.ids() {
                    claimed[v as usize].store(false, Ordering::Relaxed);
                }
                frontier = next;
            }
        }
        debug_assert!(state.max_abs_residual() <= eps + 1e-12);
    }
}

impl DynamicPprEngine for LigraEngine {
    fn name(&self) -> String {
        "Ligra".into()
    }

    fn config(&self) -> &PprConfig {
        self.state.config()
    }

    fn apply_batch(&mut self, g: &mut DynamicGraph, batch: &[EdgeUpdate]) -> BatchStats {
        let before = self.counters.snapshot();
        let start = Instant::now();
        self.seeds.clear();
        let mut applied = 0usize;
        for &upd in batch {
            if apply_update(g, &mut self.state, upd, &self.counters) {
                applied += 1;
                self.seeds.push(upd.src);
            }
        }
        self.push(g);
        self.counters.record_batch();
        BatchStats {
            latency: start.elapsed(),
            applied,
            counters: self.counters.snapshot() - before,
        }
    }

    fn estimate(&self, v: VertexId) -> f64 {
        self.state.p(v)
    }

    fn estimates(&self) -> Vec<f64> {
        self.state.estimates()
    }

    fn counters(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dppr_core::exact_ppr;
    use dppr_core::invariant::max_invariant_violation;
    use dppr_graph::generators::erdos_renyi;

    #[test]
    fn ligra_engine_is_epsilon_accurate() {
        let cfg = PprConfig::new(0, 0.2, 1e-3);
        let mut eng = LigraEngine::new(cfg);
        let mut g = DynamicGraph::new();
        for chunk in erdos_renyi(60, 600, 21).chunks(50) {
            let batch: Vec<EdgeUpdate> =
                chunk.iter().map(|&(u, v)| EdgeUpdate::insert(u, v)).collect();
            eng.apply_batch(&mut g, &batch);
        }
        assert!(max_invariant_violation(&g, eng.state()) < 1e-9);
        let truth = exact_ppr(&g, 0, 0.2, 1e-12);
        for v in 0..g.num_vertices() as VertexId {
            assert!(
                (eng.estimate(v) - truth[v as usize]).abs() <= 1e-3 + 1e-9,
                "vertex {v}"
            );
        }
    }

    #[test]
    fn ligra_handles_deletions() {
        let cfg = PprConfig::new(1, 0.15, 1e-3);
        let mut eng = LigraEngine::new(cfg);
        let mut g = DynamicGraph::new();
        let edges = erdos_renyi(40, 300, 8);
        let ins: Vec<EdgeUpdate> =
            edges.iter().map(|&(u, v)| EdgeUpdate::insert(u, v)).collect();
        eng.apply_batch(&mut g, &ins);
        let del: Vec<EdgeUpdate> = edges[..150]
            .iter()
            .map(|&(u, v)| EdgeUpdate::delete(u, v))
            .collect();
        let stats = eng.apply_batch(&mut g, &del);
        assert_eq!(stats.applied, 150);
        let truth = exact_ppr(&g, 1, 0.15, 1e-12);
        for v in 0..g.num_vertices() as VertexId {
            assert!((eng.estimate(v) - truth[v as usize]).abs() <= 1e-3 + 1e-9);
        }
    }

    #[test]
    fn forced_dense_mode_agrees_with_sparse() {
        use crate::edge_map::Mode;
        let run = |force: Option<Mode>| {
            let cfg = PprConfig::new(0, 0.3, 1e-3);
            let mut eng = LigraEngine::with_options(
                cfg,
                EdgeMapOptions { force, ..Default::default() },
            );
            let mut g = DynamicGraph::new();
            let batch: Vec<EdgeUpdate> = erdos_renyi(30, 200, 4)
                .into_iter()
                .map(|(u, v)| EdgeUpdate::insert(u, v))
                .collect();
            eng.apply_batch(&mut g, &batch);
            (eng.estimates(), g)
        };
        let (dense, g) = run(Some(Mode::Dense));
        let (sparse, _) = run(Some(Mode::Sparse));
        let truth = exact_ppr(&g, 0, 0.3, 1e-12);
        for v in 0..truth.len() {
            assert!((dense[v] - truth[v]).abs() <= 1e-3 + 1e-9, "dense {v}");
            assert!((sparse[v] - truth[v]).abs() <= 1e-3 + 1e-9, "sparse {v}");
        }
    }
}
