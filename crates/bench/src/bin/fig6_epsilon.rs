//! Figure 6 — effect of the error threshold ε.
//!
//! Sweeps ε and reports mean slide latency for the sequential, parallel
//! and Ligra engines. The paper's shape: latency grows steeply as ε
//! shrinks for every engine, and the parallel speedup *widens* (smaller ε
//! ⇒ larger frontiers ⇒ more parallelism).
//!
//! Usage: `fig6_epsilon [--full]`

use dppr_bench::{ms, run_engine, EngineKind, ExperimentScale, Workload};
use dppr_core::PushVariant;
use dppr_graph::presets;
use std::time::Duration;

fn main() {
    let scale = ExperimentScale::from_args();
    // Scale note: the ε effect needs room to grow frontiers; even the
    // "quick" setting uses the mid-size preset (the paper's smallest graph
    // is 1.1M vertices).
    let (ds, epsilons, batch, budget): (_, &[f64], usize, Duration) = match scale {
        ExperimentScale::Quick => (
            presets::youtube_sim(),
            &[1e-4, 1e-5, 1e-6, 1e-7],
            2_000,
            Duration::from_secs(4),
        ),
        ExperimentScale::Full => (
            presets::lj_sim(),
            &[1e-4, 1e-5, 1e-6, 1e-7, 1e-8],
            5_000,
            Duration::from_secs(20),
        ),
    };
    let engines = [
        EngineKind::CpuSeq,
        EngineKind::CpuMt(PushVariant::OPT),
        EngineKind::Ligra,
    ];
    println!("# Figure 6: effect of ε (dataset {}, batch {batch})", ds.name);
    println!("epsilon\tengine\tslides\tmean_ms\tpushes\tspeedup_vs_seq");
    let workload = Workload::prepare(ds, 3, 0.1, 10);
    for &eps in epsilons {
        let mut seq_ms = None;
        for kind in engines {
            let summary = run_engine(kind, &workload, eps, batch, scale.slides(), budget);
            if summary.slides == 0 {
                continue;
            }
            let mean = ms(summary.mean_latency());
            if kind == EngineKind::CpuSeq {
                seq_ms = Some(mean);
            }
            println!(
                "{eps:.0e}\t{}\t{}\t{:.3}\t{}\t{:.2}",
                kind.label(),
                summary.slides,
                mean,
                summary.total_counters().pushes,
                seq_ms.unwrap_or(mean) / mean.max(1e-9),
            );
        }
    }
}
