//! End-to-end test of the HTTP front end, in-process: a real server on an
//! ephemeral port, a plain `TcpStream` client, every endpoint exercised
//! while the write loop slides in the background.

use dppr_graph::generators::erdos_renyi;
use dppr_graph::GraphStream;
use dppr_serve::{start, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn request(addr: SocketAddr, method: &str, target: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(conn, "{method} {target} HTTP/1.0\r\nHost: dppr\r\n\r\n").unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    request(addr, "GET", target)
}

/// Reads exactly one Content-Length-framed response off a keep-alive
/// connection, leaving the stream positioned at the next response.
fn read_response(conn: &mut TcpStream) -> (u16, String, String) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        let n = conn.read(&mut byte).expect("read header byte");
        assert!(n > 0, "EOF inside response head: {:?}", String::from_utf8_lossy(&head));
        head.push(byte[0]);
        assert!(head.len() < 8192, "unterminated response head");
    }
    let head = String::from_utf8(head).expect("utf8 head");
    let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    let len: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_owned))
        .expect("Content-Length header")
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; len];
    conn.read_exact(&mut body).expect("read body");
    (status, head, String::from_utf8(body).expect("utf8 body"))
}

#[test]
fn keep_alive_connection_serves_many_requests() {
    let stream = GraphStream::directed(erdos_renyi(120, 3_000, 9)).permuted(3);
    let handle = start(
        stream,
        0.1,
        &[0],
        ServeConfig { threads: 2, batch: 400, epsilon: 1e-3, max_slides: 2, ..ServeConfig::default() },
    )
    .expect("server starts");
    let addr = handle.addr();

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // Several sequential requests on ONE connection; HTTP/1.1 defaults to
    // keep-alive, so each response must announce it and leave the stream
    // open for the next.
    write!(conn, "GET /healthz HTTP/1.1\r\nHost: dppr\r\n\r\n").unwrap();
    let (status, head, body) = read_response(&mut conn);
    assert_eq!(status, 200);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("Connection: keep-alive"), "{head}");
    assert!(body.contains("\"ok\":true"), "{body}");

    write!(conn, "GET /topk?source=0&k=3 HTTP/1.1\r\nHost: dppr\r\n\r\n").unwrap();
    let (status, _, body) = read_response(&mut conn);
    assert_eq!(status, 200);
    assert!(body.contains("\"ranking\""), "{body}");

    // Percent-encoded params decode before routing (%30 → '0', %33 → '3').
    write!(conn, "GET /topk?source=%30&k=%33 HTTP/1.1\r\nHost: dppr\r\n\r\n").unwrap();
    let (status, _, body) = read_response(&mut conn);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"k\":3"), "{body}");

    // Non-finite floats in params are rejected, connection still alive
    // (the HTTP itself was well-formed, so only the request fails).
    for bad in ["nan", "inf", "-inf", "NaN", "Infinity"] {
        write!(conn, "GET /threshold?source=0&delta={bad} HTTP/1.1\r\nHost: dppr\r\n\r\n").unwrap();
        let (status, _, body) = read_response(&mut conn);
        assert_eq!(status, 400, "delta={bad} must be rejected: {body}");
        assert!(body.contains("finite"), "{body}");
    }

    // Pipelining: two requests in one write, two responses in order.
    write!(
        conn,
        "GET /score?source=0&v=1 HTTP/1.1\r\nHost: dppr\r\n\r\nGET /sessions HTTP/1.1\r\nHost: dppr\r\n\r\n"
    )
    .unwrap();
    let (status, _, body) = read_response(&mut conn);
    assert_eq!(status, 200);
    assert!(body.contains("\"vertex\":1"), "{body}");
    let (status, _, body) = read_response(&mut conn);
    assert_eq!(status, 200);
    assert!(body.contains("\"sessions\":[0]"), "{body}");

    // Explicit Connection: close is honoured: response, then EOF.
    write!(conn, "GET /healthz HTTP/1.1\r\nHost: dppr\r\nConnection: close\r\n\r\n").unwrap();
    let (status, head, _) = read_response(&mut conn);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head}");
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).expect("EOF after close");
    assert!(rest.is_empty(), "bytes after Connection: close response");

    // An invalid percent escape corrupts the request line itself, so the
    // 400 comes with Connection: close and the stream ends there.
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(conn, "GET /topk?source=%zz HTTP/1.1\r\nHost: dppr\r\n\r\n").unwrap();
    let (status, head, body) = read_response(&mut conn);
    assert_eq!(status, 400);
    assert!(body.contains("percent"), "{body}");
    assert!(head.contains("Connection: close"), "{head}");
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).expect("EOF after malformed request");
    assert!(rest.is_empty());

    // The whole exchange used exactly two accepted connections, many
    // requests — the thing HTTP/1.0-per-request could not do.
    assert_eq!(handle.conn_counters().accepted.load(std::sync::atomic::Ordering::Relaxed), 2);
    assert!(handle.conn_counters().requests.load(std::sync::atomic::Ordering::Relaxed) >= 11);
    handle.join();
}

#[test]
fn start_rejects_out_of_bound_sources() {
    let stream = GraphStream::directed(erdos_renyi(50, 400, 1)).permuted(1);
    match start(stream, 0.1, &[0, 4_000_000_000], ServeConfig::default()) {
        Err(e) => assert!(e.to_string().contains("vertex bound"), "{e}"),
        Ok(_) => panic!("out-of-bound source must be rejected"),
    }
}

#[test]
fn serves_every_endpoint_while_sliding() {
    let stream = GraphStream::directed(erdos_renyi(200, 6_000, 21)).permuted(5);
    let handle = start(
        stream,
        0.1,
        &[0, 5],
        ServeConfig {
            threads: 3,
            batch: 200,
            epsilon: 1e-3,
            max_slides: 8, // freeze the epoch afterwards → deterministic cache hits
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    // Health and initial sessions are live before start() returns.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\":true"), "{body}");
    let (status, body) = get(addr, "/sessions");
    assert_eq!(status, 200);
    assert!(body.contains("\"sessions\":[0,5]"), "{body}");

    // Queries against both sessions, concurrently with the write loop.
    let (status, body) = get(addr, "/topk?source=0&k=5");
    assert_eq!(status, 200);
    assert!(body.contains("\"ranking\":[{\"vertex\":"), "{body}");
    assert!(body.contains("\"set_is_certain\":"), "{body}");
    let (status, body) = get(addr, "/score?source=5&v=0");
    assert_eq!(status, 200);
    assert!(body.contains("\"estimate\":"), "{body}");
    assert!(body.contains("\"lo\":") && body.contains("\"hi\":"), "{body}");
    let (status, body) = get(addr, "/threshold?source=0&delta=0.01");
    assert_eq!(status, 200);
    assert!(body.contains("\"certain\":[") && body.contains("\"possible\":["), "{body}");
    let (status, body) = get(addr, "/compare?source=0&a=1&b=2");
    assert_eq!(status, 200);
    assert!(body.contains("\"order\":\""), "{body}");

    // Error paths: unknown session, missing/invalid params, bad endpoint.
    let (status, body) = get(addr, "/topk?source=77");
    assert_eq!(status, 404);
    assert!(body.contains("no open session for source 77"), "{body}");
    let (status, _) = get(addr, "/topk");
    assert_eq!(status, 400);
    let (status, _) = get(addr, "/score?source=0&v=zebra");
    assert_eq!(status, 400);
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);

    // Opening a session beyond the stream's vertex bound is rejected up
    // front (an unchecked id would cold-start a source+1-sized state).
    let (status, body) = request(addr, "POST", "/session/open?source=4000000000");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("vertex bound"), "{body}");

    // Session lifecycle over HTTP: open a new source, wait for the write
    // loop to apply it between batches, query it, close it again.
    let (status, body) = request(addr, "POST", "/session/open?source=9");
    assert_eq!(status, 200);
    assert!(body.contains("\"accepted\":true"), "{body}");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = get(addr, "/topk?source=9&k=3");
        if status == 200 {
            assert!(body.contains("\"ranking\""), "{body}");
            break;
        }
        assert!(Instant::now() < deadline, "session 9 never opened");
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, _) = request(addr, "POST", "/session/close?source=9");
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(10);
    while get(addr, "/topk?source=9&k=3").0 != 404 {
        assert!(Instant::now() < deadline, "session 9 never closed");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Wait for the slide cap; the epoch freezes, so a repeated identical
    // query must be served from the cache.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, body) = get(addr, "/stats");
        if body.contains("\"slides\":8") {
            break;
        }
        assert!(Instant::now() < deadline, "write loop never hit max_slides: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let hits_before = handle.cache().stats().hits;
    let (_, first) = get(addr, "/topk?source=0&k=7");
    let (_, second) = get(addr, "/topk?source=0&k=7");
    assert_eq!(first, second);
    assert!(
        handle.cache().stats().hits > hits_before,
        "frozen-epoch repeat query did not hit the cache"
    );

    // Stats reflect the traffic; shutdown over HTTP stops everything.
    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(body.contains("\"queries\":"), "{body}");
    assert!(body.contains("\"hit_rate\":"), "{body}");
    let (status, body) = request(addr, "POST", "/shutdown");
    assert_eq!(status, 200);
    assert!(body.contains("\"shutting_down\":true"), "{body}");
    assert!(handle.is_shutdown());
    let report = handle.join();
    assert_eq!(report.slides, 8);
    assert!(report.queries >= 10);
    assert!(report.updates_applied > 0);
    assert!(report.epoch >= 9); // bootstrap + 8 slides
    assert!(report.cache.hits >= 1);
}

/// HTTP/1.0 GET returning the full response head too (for Content-Type
/// checks).
fn get_with_head(addr: SocketAddr, target: &str) -> (u16, String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(conn, "GET {target} HTTP/1.0\r\nHost: dppr\r\n\r\n").unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, head.to_string(), body.to_string())
}

/// Waits until `/stats` reports at least one applied slide.
fn wait_for_slides(addr: SocketAddr, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, body) = get(addr, "/stats");
        if body.contains(&format!("\"slides\":{n}")) {
            break;
        }
        assert!(Instant::now() < deadline, "write loop never reached slide {n}: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// `/metrics` speaks Prometheus text format 0.0.4: every family announced
/// by HELP + TYPE exactly once before its samples, histograms framed as
/// cumulative `_bucket`/`_sum`/`_count`, labels quoted, counters monotone
/// across scrapes.
#[test]
fn metrics_exposition_is_prometheus_conformant() {
    let stream = GraphStream::directed(erdos_renyi(150, 4_000, 11)).permuted(2);
    let handle = start(
        stream,
        0.1,
        &[0],
        ServeConfig { threads: 2, batch: 300, epsilon: 1e-3, max_slides: 3, ..ServeConfig::default() },
    )
    .expect("server starts");
    let addr = handle.addr();
    for _ in 0..5 {
        assert_eq!(get(addr, "/topk?source=0&k=5").0, 200);
    }
    wait_for_slides(addr, 3);

    let (status, head, scrape1) = get_with_head(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "Prometheus scrapes key on the exposition content type: {head}"
    );

    // HELP and TYPE exactly once per family, and before any sample of it.
    let mut seen_help = std::collections::HashSet::new();
    let mut seen_type = std::collections::HashSet::new();
    for line in scrape1.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let fam = rest.split_whitespace().next().unwrap().to_string();
            assert!(seen_help.insert(fam.clone()), "duplicate HELP for {fam}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let fam = it.next().unwrap().to_string();
            let kind = it.next().unwrap();
            assert!(["counter", "gauge", "histogram"].contains(&kind), "{line}");
            assert!(seen_help.contains(&fam), "TYPE before HELP for {fam}");
            assert!(seen_type.insert(fam), "duplicate TYPE for {}", line);
        } else if !line.is_empty() {
            let name = line.split([' ', '{']).next().unwrap();
            let fam = name
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            assert!(seen_type.contains(fam), "sample before TYPE: {line}");
        }
    }

    // The pipeline-stage histograms demanded by the acceptance criteria
    // are all announced (WAL/checkpoint families register even when the
    // run is not durable — they are simply empty).
    for fam in [
        "dppr_http_request_seconds",
        "dppr_slide_apply_seconds",
        "dppr_push_wall_seconds",
        "dppr_push_iterations",
        "dppr_wal_append_seconds",
        "dppr_wal_fsync_seconds",
        "dppr_checkpoint_seconds",
    ] {
        assert!(seen_type.contains(fam), "family {fam} missing from /metrics");
    }

    // Histogram framing: cumulative buckets ending at +Inf == _count.
    let buckets: Vec<u64> = scrape1
        .lines()
        .filter(|l| l.starts_with("dppr_http_request_seconds_bucket{le="))
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
        .collect();
    assert!(!buckets.is_empty(), "no buckets rendered:\n{scrape1}");
    assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "non-cumulative buckets: {buckets:?}");
    let inf_line = scrape1
        .lines()
        .find(|l| l.starts_with("dppr_http_request_seconds_bucket{le=\"+Inf\"}"))
        .expect("+Inf bucket");
    let count_line = scrape1
        .lines()
        .find(|l| l.starts_with("dppr_http_request_seconds_count"))
        .expect("_count sample");
    assert_eq!(
        inf_line.rsplit(' ').next().unwrap(),
        count_line.rsplit(' ').next().unwrap(),
        "+Inf bucket must equal _count"
    );
    let served: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(served >= 5, "request histogram missed traffic: {count_line}");

    // Per-shard gauges carry quoted labels.
    assert!(
        scrape1.lines().any(|l| l.starts_with("dppr_shard_connections{shard=\"0\"}")),
        "labelled shard gauge missing:\n{scrape1}"
    );

    // Counters are monotone between scrapes, even with traffic in between.
    let counter_values = |scrape: &str| -> std::collections::HashMap<String, f64> {
        let families: std::collections::HashSet<&str> = scrape
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .filter_map(|r| {
                let mut it = r.split_whitespace();
                let fam = it.next()?;
                (it.next()? == "counter").then_some(fam)
            })
            .collect();
        scrape
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .filter_map(|l| {
                let (name, v) = l.rsplit_once(' ')?;
                families
                    .contains(name.split('{').next().unwrap())
                    .then(|| (name.to_string(), v.parse().unwrap()))
            })
            .collect()
    };
    for _ in 0..3 {
        assert_eq!(get(addr, "/score?source=0&v=1").0, 200);
    }
    let (_, _, scrape2) = get_with_head(addr, "/metrics");
    let (v1, v2) = (counter_values(&scrape1), counter_values(&scrape2));
    assert!(!v1.is_empty(), "no counter samples found");
    for (name, before) in &v1 {
        let after = v2.get(name).unwrap_or_else(|| panic!("{name} vanished between scrapes"));
        assert!(after >= before, "counter {name} went backwards: {before} -> {after}");
    }
    handle.join();
}

#[test]
fn trace_endpoint_returns_sampled_events() {
    let stream = GraphStream::directed(erdos_renyi(120, 3_000, 17)).permuted(4);
    let handle = start(
        stream,
        0.1,
        &[0],
        ServeConfig {
            threads: 2,
            batch: 300,
            epsilon: 1e-3,
            max_slides: 2,
            trace_sample: 1, // trace everything
            trace_capacity: 4096,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();
    for _ in 0..4 {
        assert_eq!(get(addr, "/topk?source=0&k=3").0, 200);
    }
    wait_for_slides(addr, 2);

    let (status, head, body) = get_with_head(addr, "/trace");
    assert_eq!(status, 200);
    assert!(head.contains("Content-Type: application/x-ndjson"), "{head}");
    assert!(!body.is_empty(), "trace_sample=1 but the ring is empty");
    for line in body.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
        assert!(line.contains("\"event\":"), "untagged trace event: {line}");
    }
    assert!(
        body.lines().any(|l| l.contains("\"event\":\"request\"")),
        "no request events:\n{body}"
    );
    assert!(body.lines().any(|l| l.contains("\"event\":\"slide\"")), "no slide events:\n{body}");
    // The handle-side dump (what the CLI prints on SIGTERM) sees the same
    // ring; the `/trace` request itself is traced after its response is
    // written, so the later dump may extend the scrape but never rewrite it.
    assert!(handle.trace_dump().starts_with(&body), "handle dump diverged from /trace");
    handle.join();
}

#[test]
fn healthz_and_stats_report_observability_fields() {
    let stream = GraphStream::directed(erdos_renyi(100, 2_500, 5)).permuted(9);
    let handle = start(
        stream,
        0.1,
        &[0],
        ServeConfig { threads: 2, batch: 300, epsilon: 1e-3, max_slides: 1, ..ServeConfig::default() },
    )
    .expect("server starts");
    let addr = handle.addr();

    // Fresh instance, not durable, no traffic: the health probe spells out
    // WHY it is healthy — no degraded reason, no fsync ever.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"degraded\":false"), "{body}");
    assert!(body.contains("\"degraded_reason\":null"), "{body}");
    assert!(body.contains("\"last_fsync_age_seconds\":null"), "{body}");

    // A fresh cache reports rate 0, not NaN; a pre-slide instance reports
    // updates_per_sec 0, not a division artifact.
    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(body.contains("\"hit_rate\":0"), "{body}");
    assert!(body.contains("\"updates_per_sec\":"), "{body}");
    assert!(!body.to_ascii_lowercase().contains("nan"), "{body}");
    // The stage-timing block is part of /stats now.
    assert!(body.contains("\"timings\":"), "{body}");
    assert!(body.contains("\"slide_apply\":"), "{body}");
    assert!(body.contains("\"trace\":"), "{body}");
    handle.join();
}
