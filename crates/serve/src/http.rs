//! Minimal std-only HTTP/1.1 plumbing: incremental request parsing and
//! response rendering for the event-driven front end.
//!
//! The serving layer speaks just enough HTTP for `curl`, browsers, and
//! load generators: request line + headers parsed incrementally from a
//! byte buffer (so a connection can deliver a request in arbitrarily many
//! TCP segments, or several pipelined requests in one), keep-alive by
//! HTTP/1.1 default with `Connection: close` honored both ways, query
//! parameters percent-decoded, and no bodies read (every endpoint is
//! parameterized through the query string, so `POST /session/open?source=7`
//! works from `curl -X POST` without chunked-body handling).

/// A parsed request line: method, path, and decoded query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased).
    pub method: String,
    /// The path without the query string, e.g. `/topk`.
    pub path: String,
    /// Query parameters in order of appearance, percent-decoded.
    pub params: Vec<(String, String)>,
    /// Whether the request line named `HTTP/1.1` (keep-alive by default).
    pub http11: bool,
}

/// Decodes `%xx` escapes and `+`-for-space in one query-string component.
/// Rejects truncated or non-hex escapes — the caller turns that into a 400
/// rather than handing handlers a raw `a%2Fb`.
pub fn percent_decode(raw: &str) -> Result<String, String> {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| format!("truncated percent escape in {raw:?}"))?;
                let hi = (hex[0] as char)
                    .to_digit(16)
                    .ok_or_else(|| format!("invalid percent escape in {raw:?}"))?;
                let lo = (hex[1] as char)
                    .to_digit(16)
                    .ok_or_else(|| format!("invalid percent escape in {raw:?}"))?;
                out.push((hi * 16 + lo) as u8);
                i += 2;
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8(out).map_err(|_| format!("percent escapes in {raw:?} are not valid UTF-8"))
}

impl Request {
    /// Parses a request line like `GET /topk?source=0&k=5 HTTP/1.1`.
    /// Query parameter keys and values are percent-decoded; an invalid
    /// escape fails the parse (the front end answers 400).
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let mut it = line.split_whitespace();
        let method = it
            .next()
            .ok_or_else(|| "empty request line".to_string())?
            .to_ascii_uppercase();
        let target = it.next().ok_or_else(|| "missing request target".to_string())?;
        if !target.starts_with('/') {
            return Err(format!("request target must be origin-form, got {target:?}"));
        }
        let version = it.next().unwrap_or("");
        if !version.starts_with("HTTP/") {
            return Err(format!("missing HTTP version, got {version:?}"));
        }
        let http11 = version == "HTTP/1.1";
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        let params = query
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| match kv.split_once('=') {
                Some((k, v)) => Ok((percent_decode(k)?, percent_decode(v)?)),
                None => Ok((percent_decode(kv)?, String::new())),
            })
            .collect::<Result<_, String>>()?;
        Ok(Request { method, path: path.to_string(), params, http11 })
    }

    /// First value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses a query parameter, with a default when absent.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.param(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| format!("invalid value for {key}: {raw:?}")),
        }
    }

    /// Parses a required query parameter.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let raw = self
            .param(key)
            .ok_or_else(|| format!("missing required parameter {key}"))?;
        raw.parse::<T>()
            .map_err(|_| format!("invalid value for {key}: {raw:?}"))
    }

    /// Parses a required float parameter, rejecting `NaN` and `±inf` —
    /// thresholds and accuracy knobs fed into comparisons must be finite
    /// (every comparison against `NaN` is false, which silently turns a
    /// query into nonsense instead of an error).
    pub fn require_finite(&self, key: &str) -> Result<f64, String> {
        let v: f64 = self.require(key)?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(format!("non-finite value for {key}: {v}"))
        }
    }

    /// Parses an optional float parameter with a default, rejecting
    /// non-finite values like [`Request::require_finite`].
    pub fn parsed_finite_or(&self, key: &str, default: f64) -> Result<f64, String> {
        let v = self.parsed_or(key, default)?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(format!("non-finite value for {key}: {v}"))
        }
    }
}

/// Cap on request line + headers. A client may not feed a connection more
/// than this without completing a request: past it the buffer would
/// otherwise grow without bound on a newline-free byte stream.
pub const MAX_REQUEST_BYTES: usize = 16 * 1024;

/// Progress of [`try_parse`] over a connection's input buffer.
#[derive(Debug)]
pub enum Parsed {
    /// No complete head yet — keep the buffer, read more bytes.
    Partial,
    /// One complete request: `consumed` bytes of the buffer belong to it,
    /// and `keep_alive` is the connection's fate after the response
    /// (HTTP/1.1 default, overridden by a `Connection` header either way).
    Complete {
        req: Request,
        consumed: usize,
        keep_alive: bool,
    },
}

/// Incrementally parses one request head (request line + headers) from
/// `buf`. Stateless: call again with the same buffer after reading more
/// bytes until it returns [`Parsed::Complete`], then drain `consumed`
/// bytes and call again for the next pipelined request.
///
/// Errors are protocol violations the caller should answer with a 400 and
/// a close: a malformed request line, an invalid percent escape, a head
/// that is not even ASCII-compatible, or (checked by the caller against
/// [`MAX_REQUEST_BYTES`]) an oversized head.
pub fn try_parse(buf: &[u8]) -> Result<Parsed, String> {
    // Find the end-of-head marker: \r\n\r\n, tolerating bare \n\n from
    // hand-typed clients (netcat).
    let Some((head_end, consumed)) = find_head_end(buf) else {
        return Ok(Parsed::Partial);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| "request head is not valid UTF-8".to_string())?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let req = Request::parse_line(request_line)?;
    // Keep-alive: HTTP/1.1 defaults to persistent, HTTP/1.0 to close;
    // a Connection header overrides in either direction.
    let mut keep_alive = req.http11;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    Ok(Parsed::Complete { req, consumed, keep_alive })
}

/// Returns `(head_len, head_len + terminator_len)` of the first complete
/// request head in `buf`.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if i + 1 < buf.len() && buf[i + 1] == b'\n' {
                return Some((i + 1, i + 2));
            }
            if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                return Some((i + 1, i + 3));
            }
        }
        i += 1;
    }
    None
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// A routed response: status, body, and an optional `Retry-After`
/// hint (load shedding).
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (`Arc<str>` so a cache hit is returned without
    /// copying).
    pub body: std::sync::Arc<str>,
    /// Seconds for a `Retry-After` header (503 load shedding).
    pub retry_after: Option<u32>,
    /// `Content-Type` override; `None` means `application/json` (the
    /// default for every endpoint except Prometheus/trace exposition).
    pub content_type: Option<&'static str>,
}

impl Response {
    /// A JSON response with no `Retry-After`.
    pub fn new(status: u16, body: impl Into<std::sync::Arc<str>>) -> Response {
        Response { status, body: body.into(), retry_after: None, content_type: None }
    }

    /// A response with an explicit `Content-Type` (e.g. the Prometheus
    /// text exposition format).
    pub fn with_content_type(
        status: u16,
        content_type: &'static str,
        body: impl Into<std::sync::Arc<str>>,
    ) -> Response {
        Response { status, body: body.into(), retry_after: None, content_type: Some(content_type) }
    }
}

/// Renders a complete HTTP/1.1 response head + body into `out`.
/// `keep_alive` controls the `Connection` header — the caller must close
/// the connection after flushing when it is false.
pub fn render_response(out: &mut Vec<u8>, resp: &Response, keep_alive: bool) {
    use std::io::Write as _;
    let _ = write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type.unwrap_or("application/json"),
        resp.body.len()
    );
    if let Some(secs) = resp.retry_after {
        let _ = write!(out, "Retry-After: {secs}\r\n");
    }
    let _ = write!(
        out,
        "Connection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    );
    out.extend_from_slice(resp.body.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_line_with_params() {
        let r = Request::parse_line("GET /topk?source=0&k=5&flag HTTP/1.0").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/topk");
        assert!(!r.http11);
        assert_eq!(r.param("source"), Some("0"));
        assert_eq!(r.parsed_or("k", 10usize).unwrap(), 5);
        assert_eq!(r.parsed_or("missing", 10usize).unwrap(), 10);
        assert_eq!(r.param("flag"), Some(""));
        assert_eq!(r.require::<u32>("source").unwrap(), 0);
        assert!(r.require::<u32>("k2").is_err());
        assert!(r.parsed_or("source", 1.5f64).is_ok());
    }

    #[test]
    fn parses_bare_paths_and_post() {
        let r = Request::parse_line("post /shutdown HTTP/1.1").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/shutdown");
        assert!(r.params.is_empty());
        assert!(r.http11);
        assert!(Request::parse_line("").is_err());
        assert!(Request::parse_line("GET").is_err());
        // Not HTTP at all: bad target form or missing version token.
        assert!(Request::parse_line("EHLO mail.example.com").is_err());
        assert!(Request::parse_line("GET example.com HTTP/1.1").is_err());
        assert!(Request::parse_line("GET /ok").is_err());
    }

    #[test]
    fn percent_decodes_params() {
        let r = Request::parse_line("GET /x?source=a%2Fb&q=hello+world%21&%6bey=1 HTTP/1.1")
            .unwrap();
        assert_eq!(r.param("source"), Some("a/b"));
        assert_eq!(r.param("q"), Some("hello world!"));
        assert_eq!(r.param("key"), Some("1"));
    }

    #[test]
    fn rejects_invalid_percent_escapes() {
        assert!(percent_decode("a%zzb").is_err());
        assert!(percent_decode("trail%2").is_err());
        assert!(percent_decode("trail%").is_err());
        assert!(Request::parse_line("GET /x?k=%GG HTTP/1.1").is_err());
        assert!(Request::parse_line("GET /x?%=1 HTTP/1.1").is_err()); // bare % in a key
        // Escapes decoding to invalid UTF-8 are rejected, not smuggled in.
        assert!(percent_decode("%ff%fe").is_err());
        // Decoded separators do not re-split the query string.
        let r = Request::parse_line("GET /x?k=a%26b%3Dc HTTP/1.1").unwrap();
        assert_eq!(r.param("k"), Some("a&b=c"));
    }

    #[test]
    fn finite_float_helpers_reject_nan_and_inf() {
        let r = Request::parse_line("GET /t?delta=NaN&eps=inf&ok=0.5 HTTP/1.1").unwrap();
        assert!(r.require_finite("delta").is_err());
        assert!(r.require_finite("eps").is_err());
        assert_eq!(r.require_finite("ok").unwrap(), 0.5);
        assert!(r.parsed_finite_or("delta", 1.0).is_err());
        assert_eq!(r.parsed_finite_or("missing", 1.0).unwrap(), 1.0);
        // The plain typed accessors still parse them (callers opt in to
        // finiteness), which is what the finite variants exist to fix.
        assert!(r.require::<f64>("delta").unwrap().is_nan());
    }

    #[test]
    fn try_parse_is_incremental() {
        let full = b"GET /topk?k=3 HTTP/1.1\r\nHost: x\r\n\r\n";
        for cut in 0..full.len() {
            match try_parse(&full[..cut]).unwrap() {
                Parsed::Partial => {}
                Parsed::Complete { .. } => panic!("complete at cut {cut}"),
            }
        }
        match try_parse(full).unwrap() {
            Parsed::Complete { req, consumed, keep_alive } => {
                assert_eq!(req.path, "/topk");
                assert_eq!(consumed, full.len());
                assert!(keep_alive);
            }
            Parsed::Partial => panic!("full head must parse"),
        }
    }

    #[test]
    fn try_parse_keep_alive_defaults_and_overrides() {
        let ka = |raw: &[u8]| match try_parse(raw).unwrap() {
            Parsed::Complete { keep_alive, .. } => keep_alive,
            Parsed::Partial => panic!("incomplete"),
        };
        assert!(ka(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(!ka(b"GET / HTTP/1.0\r\n\r\n"));
        assert!(!ka(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(ka(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"));
        // Bare-\n heads (netcat) parse too.
        assert!(ka(b"GET / HTTP/1.1\nHost: x\n\n"));
    }

    #[test]
    fn try_parse_pipelined_requests_consume_in_order(){
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (first, rest) = match try_parse(raw).unwrap() {
            Parsed::Complete { req, consumed, keep_alive } => {
                assert!(keep_alive);
                (req, &raw[consumed..])
            }
            Parsed::Partial => panic!("first request must parse"),
        };
        assert_eq!(first.path, "/a");
        match try_parse(rest).unwrap() {
            Parsed::Complete { req, consumed, keep_alive } => {
                assert_eq!(req.path, "/b");
                assert!(!keep_alive);
                assert_eq!(consumed, rest.len());
            }
            Parsed::Partial => panic!("second request must parse"),
        }
    }

    #[test]
    fn try_parse_rejects_garbage() {
        assert!(try_parse(b"\x00\xffbinary\r\n\r\n").is_err());
        assert!(try_parse(b"GET\r\n\r\n").is_err());
    }

    #[test]
    fn renders_responses_with_and_without_retry_after() {
        let mut out = Vec::new();
        render_response(&mut out, &Response::new(200, r#"{"ok":true}"#), true);
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Content-Length: 11\r\n"), "{s}");
        assert!(s.contains("Connection: keep-alive\r\n"), "{s}");
        assert!(s.ends_with("\r\n\r\n{\"ok\":true}"), "{s}");

        let mut out = Vec::new();
        let resp = Response {
            status: 503,
            body: r#"{"error":"behind"}"#.into(),
            retry_after: Some(1),
            content_type: None,
        };
        render_response(&mut out, &resp, false);
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("HTTP/1.1 503 Service Unavailable\r\n"), "{s}");
        assert!(s.contains("Retry-After: 1\r\n"), "{s}");
        assert!(s.contains("Connection: close\r\n"), "{s}");
    }
}
