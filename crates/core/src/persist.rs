//! Checkpointing a maintained PPR state.
//!
//! The indexing systems the paper aims to serve (HubPPR [46], distributed
//! exact PPR [18]) keep pre-computed PPR vectors on disk and maintain them
//! incrementally. This module provides the minimal durable format for
//! that: a plain-text, versioned snapshot of `(config, Ps, Rs)` that can
//! be written after any converged batch and re-attached to a graph later
//! — useful for restart, for shipping states between the sequential and
//! parallel engines, and for the serving layer's crash-recovery
//! checkpoints (`dppr-serve`'s durability module pairs these files with a
//! `dppr-wal` update log).
//!
//! Format v2 (line-oriented, `f64` round-trips via hex bits for
//! exactness; the trailer's CRC32 covers every byte before it, so a torn
//! or bit-flipped snapshot is detected instead of silently loaded):
//!
//! ```text
//! dppr-state v2
//! source <u32> alpha <hex-bits> epsilon <hex-bits> len <usize>
//! <p-bits> <r-bits>        (one line per vertex)
//! crc32 <8-hex-digits>
//! ```
//!
//! v1 is the same without the trailer; [`read_state`] still loads it
//! (without integrity protection), so snapshots written by older builds
//! stay usable.

use crate::checksum::{crc32, Crc32};
use crate::config::PprConfig;
use crate::state::PprState;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

const MAGIC_V1: &str = "dppr-state v1";
const MAGIC_V2: &str = "dppr-state v2";

/// A writer adapter that feeds everything it forwards through a CRC32
/// hasher, so the trailer can be computed without buffering the snapshot.
struct CrcWriter<W: Write> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Writes a v2 snapshot of `state` to `w` (header + vertex rows + CRC32
/// trailer).
pub fn write_state<W: Write>(state: &PprState, w: W) -> io::Result<()> {
    let mut w = CrcWriter { inner: BufWriter::new(w), crc: Crc32::new() };
    let cfg = state.config();
    writeln!(w, "{MAGIC_V2}")?;
    writeln!(
        w,
        "source {} alpha {:016x} epsilon {:016x} len {}",
        cfg.source,
        cfg.alpha.to_bits(),
        cfg.epsilon.to_bits(),
        state.len()
    )?;
    for v in 0..state.len() as u32 {
        writeln!(
            w,
            "{:016x} {:016x}",
            state.p(v).to_bits(),
            state.r(v).to_bits()
        )?;
    }
    let crc = w.crc.finish();
    // The trailer itself is outside the checksummed range.
    writeln!(w.inner, "crc32 {crc:08x}")?;
    w.inner.flush()
}

/// Reads a snapshot back (v1 or v2). The returned state is bit-identical
/// to the one written; a v2 snapshot whose bytes do not match its trailer
/// is rejected as [`io::ErrorKind::InvalidData`].
pub fn read_state<R: Read>(mut r: R) -> io::Result<PprState> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    let text = std::str::from_utf8(&bytes)
        .map_err(|_| bad("snapshot is not valid UTF-8".into()))?;

    let magic_end = text.find('\n').ok_or_else(|| bad("unexpected EOF reading header".into()))?;
    let body = match text[..magic_end].trim() {
        MAGIC_V1 => &text[magic_end + 1..],
        MAGIC_V2 => {
            // Split off the trailer line and verify it covers the rest.
            let content = text.strip_suffix('\n').unwrap_or(text);
            let trailer_at = content
                .rfind('\n')
                .ok_or_else(|| bad("unexpected EOF reading crc32 trailer".into()))?;
            let trailer = &content[trailer_at + 1..];
            let expected = trailer
                .strip_prefix("crc32 ")
                .ok_or_else(|| bad(format!("malformed crc32 trailer {trailer:?}")))?;
            let expected = u32::from_str_radix(expected.trim(), 16)
                .map_err(|_| bad(format!("malformed crc32 trailer {trailer:?}")))?;
            let covered = &text.as_bytes()[..trailer_at + 1];
            let actual = crc32(covered);
            if actual != expected {
                return Err(bad(format!(
                    "snapshot checksum mismatch: stored {expected:08x}, computed {actual:08x}"
                )));
            }
            &text[magic_end + 1..trailer_at + 1]
        }
        other => return Err(bad(format!("bad magic {other:?}"))),
    };

    let mut lines = body.lines();
    let header = lines
        .next()
        .ok_or_else(|| bad("unexpected EOF reading config".into()))?;
    let tokens: Vec<&str> = header.split_whitespace().collect();
    if tokens.len() != 8
        || tokens[0] != "source"
        || tokens[2] != "alpha"
        || tokens[4] != "epsilon"
        || tokens[6] != "len"
    {
        return Err(bad(format!("malformed config line {header:?}")));
    }
    let source: u32 = tokens[1].parse().map_err(|_| bad("bad source".into()))?;
    let alpha = f64::from_bits(parse_hex(tokens[3])?);
    let epsilon = f64::from_bits(parse_hex(tokens[5])?);
    let len: usize = tokens[7].parse().map_err(|_| bad("bad len".into()))?;
    if !(alpha > 0.0 && alpha < 1.0) || epsilon <= 0.0 {
        return Err(bad(format!("invalid parameters α={alpha} ε={epsilon}")));
    }
    let mut state = PprState::new(PprConfig::new(source, alpha, epsilon));
    state.ensure_len(len);
    for v in 0..len as u32 {
        let line = lines
            .next()
            .ok_or_else(|| bad(format!("unexpected EOF reading vertex row {v} of {len}")))?;
        let mut it = line.split_whitespace();
        let p = f64::from_bits(parse_hex(
            it.next().ok_or_else(|| bad("missing p".into()))?,
        )?);
        let r = f64::from_bits(parse_hex(
            it.next().ok_or_else(|| bad("missing r".into()))?,
        )?);
        state.set_p(v, p);
        state.set_r(v, r);
    }
    Ok(state)
}

/// Writes a snapshot to a file, crash-safely: the bytes go to a sibling
/// `<name>.tmp` file which is fsynced and atomically renamed into place,
/// so a crash mid-write leaves either the old snapshot or the new one —
/// never a truncated hybrid.
pub fn save_state<P: AsRef<Path>>(state: &PprState, path: P) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| bad(format!("not a file path: {}", path.display())))?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let file = std::fs::File::create(&tmp)?;
        write_state(state, &file)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads a snapshot from a file.
pub fn load_state<P: AsRef<Path>>(path: P) -> io::Result<PprState> {
    read_state(std::fs::File::open(path)?)
}

/// Order-sensitive fingerprint of a state's exact contents: source,
/// length, and every `(p, r)` bit pattern, mixed position-dependently.
/// Two states compare equal under this iff they are bit-identical — the
/// crash-recovery harness uses it to prove a recovered state matches the
/// never-crashed replay.
pub fn state_fingerprint(state: &PprState) -> u64 {
    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let cfg = state.config();
    let mut h = mix(cfg.source as u64 ^ ((state.len() as u64) << 32));
    h ^= mix(cfg.alpha.to_bits()).rotate_left(17);
    h ^= mix(cfg.epsilon.to_bits()).rotate_left(31);
    for v in 0..state.len() as u32 {
        let lane = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = h
            .wrapping_add(mix(state.p(v).to_bits() ^ lane))
            .wrapping_add(mix(state.r(v).to_bits() ^ lane.rotate_left(32)).rotate_left(1));
    }
    h
}

fn parse_hex(tok: &str) -> io::Result<u64> {
    u64::from_str_radix(tok, 16).map_err(|_| bad(format!("bad hex field {tok:?}")))
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counters;
    use crate::invariant::{apply_update, max_invariant_violation};
    use crate::par::{parallel_local_push, ParPushBuffers};
    use crate::variants::PushVariant;
    use dppr_graph::generators::erdos_renyi;
    use dppr_graph::{DynamicGraph, EdgeUpdate};

    fn converged_pair() -> (DynamicGraph, PprState) {
        let cfg = PprConfig::new(0, 0.15, 1e-4);
        let mut st = PprState::new(cfg);
        let mut g = DynamicGraph::new();
        let c = Counters::new();
        let mut seeds = Vec::new();
        for (u, v) in erdos_renyi(40, 300, 5) {
            if apply_update(&mut g, &mut st, EdgeUpdate::insert(u, v), &c) {
                seeds.push(u);
            }
        }
        let mut bufs = ParPushBuffers::new();
        parallel_local_push(&g, &st, PushVariant::OPT, &seeds, &c, &mut bufs);
        (g, st)
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let (_, st) = converged_pair();
        let mut buf = Vec::new();
        write_state(&st, &mut buf).unwrap();
        let back = read_state(&buf[..]).unwrap();
        assert_eq!(back.config(), st.config());
        assert_eq!(back.len(), st.len());
        assert_eq!(back.estimates(), st.estimates());
        assert_eq!(back.residuals(), st.residuals());
        assert_eq!(state_fingerprint(&back), state_fingerprint(&st));
    }

    #[test]
    fn v2_has_verified_trailer() {
        let (_, st) = converged_pair();
        let mut buf = Vec::new();
        write_state(&st, &mut buf).unwrap();
        let text = std::str::from_utf8(&buf).unwrap();
        assert!(text.starts_with("dppr-state v2\n"));
        let trailer = text.lines().last().unwrap();
        assert!(trailer.starts_with("crc32 "), "missing trailer: {trailer:?}");
        // Any single corrupted byte in the covered range must be caught.
        let mut torn = buf.clone();
        let mid = torn.len() / 2;
        torn[mid] ^= 0x20; // flips hex-digit case/value, still UTF-8
        let err = read_state(&torn[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn v1_without_trailer_still_loads() {
        let (_, st) = converged_pair();
        let mut buf = Vec::new();
        write_state(&st, &mut buf).unwrap();
        // Rewrite the v2 bytes as their v1 equivalent: swap the magic,
        // drop the trailer.
        let text = std::str::from_utf8(&buf).unwrap();
        let body_end = text.rfind("crc32 ").unwrap();
        let v1 = format!("{MAGIC_V1}\n{}", &text[MAGIC_V2.len() + 1..body_end]);
        let back = read_state(v1.as_bytes()).unwrap();
        assert_eq!(back.estimates(), st.estimates());
        assert_eq!(back.residuals(), st.residuals());
        assert_eq!(state_fingerprint(&back), state_fingerprint(&st));
    }

    #[test]
    fn empty_state_roundtrips() {
        // The emptiest state that can exist: a fresh source with no pushes
        // ever applied (PprState::new always materializes source+1 rows).
        let st = PprState::new(PprConfig::new(0, 0.3, 1e-3));
        assert_eq!(st.len(), 1);
        let mut buf = Vec::new();
        write_state(&st, &mut buf).unwrap();
        let back = read_state(&buf[..]).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.config(), st.config());
        assert_eq!(state_fingerprint(&back), state_fingerprint(&st));
    }

    #[test]
    fn truncated_header_is_clean_error() {
        // Every prefix of a valid snapshot that cuts into the header lines
        // must fail with InvalidData, never panic.
        let (_, st) = converged_pair();
        let mut buf = Vec::new();
        write_state(&st, &mut buf).unwrap();
        let second_newline = buf
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b == b'\n')
            .map(|(i, _)| i)
            .nth(1)
            .unwrap();
        for cut in [0, 5, MAGIC_V2.len(), MAGIC_V2.len() + 1, second_newline] {
            let err = read_state(&buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
    }

    #[test]
    fn len_field_body_mismatch_is_clean_error() {
        // A header that promises more rows than the body holds (v1, so no
        // checksum catches it first) must fail on the missing row.
        let claims_three = format!(
            "{MAGIC_V1}\nsource 0 alpha {:016x} epsilon {:016x} len 3\n{:016x} {:016x}\n",
            0.15f64.to_bits(),
            1e-4f64.to_bits(),
            0.5f64.to_bits(),
            0.0f64.to_bits()
        );
        let err = read_state(claims_three.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("vertex row"), "{err}");
        // A row with only one field is caught too.
        let half_row = format!(
            "{MAGIC_V1}\nsource 0 alpha {:016x} epsilon {:016x} len 1\n{:016x}\n",
            0.15f64.to_bits(),
            1e-4f64.to_bits(),
            0.5f64.to_bits()
        );
        let err = read_state(half_row.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn restored_state_resumes_maintenance() {
        let (mut g, st) = converged_pair();
        let mut buf = Vec::new();
        write_state(&st, &mut buf).unwrap();
        let mut resumed = read_state(&buf[..]).unwrap();
        // Keep updating through the resumed state.
        let c = Counters::new();
        let mut seeds = Vec::new();
        for (u, v) in erdos_renyi(40, 60, 77) {
            if apply_update(&mut g, &mut resumed, EdgeUpdate::insert(u, v), &c) {
                seeds.push(u);
            }
        }
        let mut bufs = ParPushBuffers::new();
        parallel_local_push(&g, &resumed, PushVariant::OPT, &seeds, &c, &mut bufs);
        assert!(resumed.converged());
        assert!(max_invariant_violation(&g, &resumed) < 1e-9);
    }

    #[test]
    fn file_roundtrip() {
        let (_, st) = converged_pair();
        let dir = std::env::temp_dir().join("dppr_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.dppr");
        save_state(&st, &path).unwrap();
        let back = load_state(&path).unwrap();
        assert_eq!(back.estimates(), st.estimates());
        // The staging file was renamed away, not left behind.
        assert!(!dir.join("state.dppr.tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_overwrites_atomically_and_truncation_is_a_clean_error() {
        let (_, st) = converged_pair();
        let dir = std::env::temp_dir().join("dppr_persist_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.dppr");
        // Round-trip over an existing file (the rename overwrites).
        save_state(&st, &path).unwrap();
        save_state(&st, &path).unwrap();
        let back = load_state(&path).unwrap();
        assert_eq!(back.estimates(), st.estimates());
        assert_eq!(back.residuals(), st.residuals());
        // A torn file — what a non-atomic writer could leave after a crash
        // — must come back as io::ErrorKind::InvalidData, not a panic.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_state(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // A directory path is a clean error too.
        assert!(save_state(&st, dir.join("..")).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(read_state(&b"nonsense"[..]).is_err());
        assert!(read_state(&b"dppr-state v1\nsource x alpha 0 epsilon 0 len 0\n"[..]).is_err());
        assert!(read_state(&[0xFF, 0xFE, b'\n'][..]).is_err()); // not UTF-8
        // Truncated vertex rows.
        let (_, st) = converged_pair();
        let mut buf = Vec::new();
        write_state(&st, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_state(&buf[..]).is_err());
        // Special values survive.
        let cfg = PprConfig::new(0, 0.5, 0.1);
        let mut tiny = PprState::new(cfg);
        tiny.ensure_len(2);
        tiny.set_p(1, f64::MIN_POSITIVE);
        tiny.set_r(1, -0.0);
        let mut buf = Vec::new();
        write_state(&tiny, &mut buf).unwrap();
        let back = read_state(&buf[..]).unwrap();
        assert_eq!(back.p(1).to_bits(), f64::MIN_POSITIVE.to_bits());
        assert_eq!(back.r(1).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let mut a = PprState::new(PprConfig::new(0, 0.15, 1e-4));
        a.ensure_len(3);
        a.set_p(1, 0.25);
        let mut same = PprState::new(PprConfig::new(0, 0.15, 1e-4));
        same.ensure_len(3);
        same.set_p(1, 0.25);
        assert_eq!(state_fingerprint(&a), state_fingerprint(&same));
        // Moving the value to another vertex, changing it, or changing the
        // config all change the fingerprint.
        let moved = same.clone_values();
        moved.set_p(1, 0.0);
        moved.set_p(2, 0.25);
        assert_ne!(state_fingerprint(&a), state_fingerprint(&moved));
        let tweaked = a.clone_values();
        tweaked.set_r(0, 1e-300);
        assert_ne!(state_fingerprint(&a), state_fingerprint(&tweaked));
        let mut other_cfg = PprState::new(PprConfig::new(1, 0.15, 1e-4));
        other_cfg.ensure_len(3);
        other_cfg.set_p(1, 0.25);
        assert_ne!(state_fingerprint(&a), state_fingerprint(&other_cfg));
    }
}
