//! Engine face-off on one live sliding window — a miniature of the paper's
//! Figure 5 (stream throughput across engines).
//!
//! ```text
//! cargo run --release --example throughput_demo
//! ```

use dppr::core::{
    DynamicPprEngine, ParallelEngine, PprConfig, PushVariant, SeqEngine, UpdateMode,
};
use dppr::graph::presets;
use dppr::mc::MonteCarloEngine;
use dppr::stream::{pick_top_degree_source, StreamDriver};
use dppr::vc::LigraEngine;

fn main() {
    let dataset = presets::small_sim();
    let seed = 11u64;
    let epsilon = dataset.default_epsilon;
    let batch = 200usize;
    let slides = 15usize;

    // Choose a hub source from the initial window, like the paper.
    let mut probe = dppr::graph::DynamicGraph::new();
    {
        let window = dppr::graph::SlidingWindow::new(dataset.stream(seed), 0.1);
        for upd in window.initial_updates() {
            probe.apply(upd);
        }
    }
    let source = pick_top_degree_source(&probe, 10, seed);
    let cfg = PprConfig::new(source, 0.15, epsilon);
    println!(
        "dataset {} | source {} (top-10 hub) | α=0.15 ε={epsilon:.0e} | batch {batch} × {slides} slides\n",
        dataset.name, source
    );
    println!(
        "{:<14} {:>12} {:>14} {:>12} {:>12}",
        "engine", "mean/slide", "updates/sec", "pushes", "traversals"
    );

    let engines: Vec<Box<dyn DynamicPprEngine>> = vec![
        Box::new(SeqEngine::new(cfg, UpdateMode::PerUpdate)),
        Box::new(SeqEngine::new(cfg, UpdateMode::Batched)),
        Box::new(ParallelEngine::new(cfg, PushVariant::VANILLA)),
        Box::new(ParallelEngine::new(cfg, PushVariant::OPT)),
        Box::new(LigraEngine::new(cfg)),
        Box::new(MonteCarloEngine::new(cfg, 6 * probe.num_vertices(), seed)),
    ];

    for mut engine in engines {
        let mut driver = StreamDriver::new(dataset.stream(seed), 0.1);
        driver.bootstrap(engine.as_mut());
        let summary = driver.run_slides(engine.as_mut(), batch, slides);
        let c = summary.total_counters();
        println!(
            "{:<14} {:>12.2?} {:>14.0} {:>12} {:>12}",
            summary.engine,
            summary.mean_latency(),
            summary.throughput(),
            c.pushes,
            c.edge_traversals,
        );
    }

    println!(
        "\n(The local-update engines keep the same ε-guarantee; Monte-Carlo's\n accuracy depends on its walk budget — see DESIGN.md.)"
    );
}
