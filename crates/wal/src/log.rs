//! The log itself: segment rotation, fsync policy, torn-tail repair on
//! open, and retention keyed to the newest durable checkpoint.
//!
//! Single-writer by construction: the serving write loop owns the `Wal`
//! exclusively, so no internal locking is needed. Appends go to the
//! *active* segment; when it outgrows `segment_bytes` it is sealed
//! (fsynced) and a fresh segment starts. [`Wal::prune_through`] deletes
//! sealed segments whose every record is at or below the durable
//! checkpoint epoch — the active segment is never deleted.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::fault;
use crate::record::WalRecord;
use crate::segment::{frame, scan, SEGMENT_MAGIC};

/// When appended records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append. Maximum durability, pays one
    /// device flush per slide.
    PerBatch,
    /// `fdatasync` at most once per interval; a crash can lose the
    /// batches acknowledged since the last flush.
    Interval(Duration),
    /// Never fsync on append (only on seal/shutdown). Fastest; a crash
    /// loses whatever the kernel had not written back.
    Off,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `batch`, `off`, or `interval:<ms>`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "batch" => Ok(FsyncPolicy::PerBatch),
            "off" => Ok(FsyncPolicy::Off),
            other => {
                let ms = other
                    .strip_prefix("interval:")
                    .and_then(|ms| ms.parse::<u64>().ok())
                    .ok_or_else(|| {
                        format!("bad fsync policy `{other}` (want batch, off, or interval:<ms>)")
                    })?;
                Ok(FsyncPolicy::Interval(Duration::from_millis(ms)))
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::PerBatch => write!(f, "batch"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// Tuning knobs for [`Wal::open`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Seal the active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// Flush discipline for appends.
    pub fsync: FsyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 8 << 20,
            fsync: FsyncPolicy::Interval(Duration::from_millis(50)),
        }
    }
}

/// Counters surfaced in `/stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    /// Records appended this process lifetime.
    pub appends: u64,
    /// Device flushes issued.
    pub syncs: u64,
    /// Payload + framing bytes written this process lifetime.
    pub bytes_written: u64,
    /// Segments deleted by retention.
    pub pruned_segments: u64,
    /// Wall time spent inside device flushes, total. Together with
    /// `syncs`, lets callers derive per-fsync latency deltas.
    pub sync_nanos: u64,
}

struct Segment {
    seq: u64,
    path: PathBuf,
    /// Highest record epoch in the segment; 0 if it has none.
    max_epoch: u64,
    len: u64,
}

/// A write-ahead log rooted at one directory.
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    /// All live segments in sequence order; the last one is active.
    segments: Vec<Segment>,
    active: File,
    last_sync: Instant,
    dirty: bool,
    stats: WalStats,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}.seg"))
}

fn parse_seq(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".seg")?.parse().ok()
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn create_segment(dir: &Path, seq: u64) -> io::Result<(File, Segment)> {
    let path = segment_path(dir, seq);
    let mut f = OpenOptions::new().create_new(true).append(true).open(&path)?;
    f.write_all(SEGMENT_MAGIC)?;
    f.sync_data()?;
    sync_dir(dir)?;
    let seg = Segment { seq, path, max_epoch: 0, len: SEGMENT_MAGIC.len() as u64 };
    Ok((f, seg))
}

impl Wal {
    /// Opens (or creates) the log under `dir`, repairing any torn tail:
    /// the first invalid frame truncates its segment to the valid prefix
    /// and discards every later segment. Returns the log plus all
    /// surviving records in append order — the caller replays the ones
    /// past its checkpoint.
    pub fn open(dir: &Path, opts: WalOptions) -> io::Result<(Wal, Vec<WalRecord>)> {
        fs::create_dir_all(dir)?;
        let mut found: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(seq) = entry.file_name().to_str().and_then(parse_seq) {
                found.push((seq, entry.path()));
            }
        }
        found.sort_by_key(|&(seq, _)| seq);
        let max_seen_seq = found.last().map_or(0, |&(seq, _)| seq);

        let mut records = Vec::new();
        let mut segments = Vec::new();
        let mut repaired = false;
        for (i, (seq, path)) in found.iter().enumerate() {
            let out = scan(path)?;
            let max_epoch = out.records.iter().map(WalRecord::epoch).max().unwrap_or(0);
            records.extend(out.records);
            if out.clean {
                segments.push(Segment {
                    seq: *seq,
                    path: path.clone(),
                    max_epoch,
                    len: out.valid_len,
                });
                continue;
            }
            // Torn or corrupt: keep the valid prefix of this segment (if
            // any) and drop everything after it in log order.
            repaired = true;
            if out.valid_len == 0 {
                fs::remove_file(path)?;
            } else {
                OpenOptions::new().write(true).open(path)?.set_len(out.valid_len)?;
                segments.push(Segment {
                    seq: *seq,
                    path: path.clone(),
                    max_epoch,
                    len: out.valid_len,
                });
            }
            for (_, later) in &found[i + 1..] {
                fs::remove_file(later)?;
            }
            break;
        }

        let active = match segments.last() {
            Some(last) => OpenOptions::new().append(true).open(&last.path)?,
            None => {
                let (f, seg) = create_segment(dir, max_seen_seq + 1)?;
                segments.push(seg);
                f
            }
        };
        if repaired {
            sync_dir(dir)?;
        }
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                opts,
                segments,
                active,
                last_sync: Instant::now(),
                dirty: false,
                stats: WalStats::default(),
            },
            records,
        ))
    }

    /// Appends one record, rotating and flushing per policy.
    ///
    /// Crash-injection sites: `append-partial` (dies after writing half
    /// the frame — the torn-tail case repair must handle) and
    /// `append-done` (dies after the full write, before any ack).
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        let bytes = frame(&rec.encode());
        let seg = self.segments.last_mut().expect("wal always has an active segment");
        if seg.len > SEGMENT_MAGIC.len() as u64
            && seg.len + bytes.len() as u64 > self.opts.segment_bytes
        {
            self.rotate()?;
        }
        if fault::crash_hit("append-partial") {
            let cut = bytes.len() / 2;
            let _ = self.active.write_all(&bytes[..cut]);
            let _ = self.active.sync_data();
            fault::die("append-partial");
        }
        self.active.write_all(&bytes)?;
        self.dirty = true;
        let seg = self.segments.last_mut().expect("wal always has an active segment");
        seg.len += bytes.len() as u64;
        seg.max_epoch = seg.max_epoch.max(rec.epoch());
        self.stats.appends += 1;
        self.stats.bytes_written += bytes.len() as u64;
        match self.opts.fsync {
            FsyncPolicy::PerBatch => self.sync()?,
            FsyncPolicy::Interval(d) => {
                if self.last_sync.elapsed() >= d {
                    self.sync()?;
                }
            }
            FsyncPolicy::Off => {}
        }
        fault::maybe_crash("append-done");
        Ok(())
    }

    /// Seals the active segment and starts the next one.
    fn rotate(&mut self) -> io::Result<()> {
        self.active.sync_data()?;
        self.dirty = false;
        let next_seq = self.segments.last().expect("active segment").seq + 1;
        let (f, seg) = create_segment(&self.dir, next_seq)?;
        self.active = f;
        self.segments.push(seg);
        fault::maybe_crash("rotate");
        Ok(())
    }

    /// Flushes the active segment to the device if it has unflushed
    /// appends.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            let t = Instant::now();
            self.active.sync_data()?;
            self.dirty = false;
            self.stats.syncs += 1;
            self.stats.sync_nanos += t.elapsed().as_nanos() as u64;
        }
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Deletes sealed segments whose newest record epoch is at or below
    /// `durable_epoch` (the newest durable checkpoint). Returns how many
    /// were removed.
    pub fn prune_through(&mut self, durable_epoch: u64) -> io::Result<usize> {
        let mut removed = 0;
        while self.segments.len() > 1 && self.segments[0].max_epoch <= durable_epoch {
            let seg = self.segments.remove(0);
            fs::remove_file(&seg.path)?;
            removed += 1;
        }
        if removed > 0 {
            sync_dir(&self.dir)?;
            self.stats.pruned_segments += removed as u64;
        }
        Ok(removed)
    }

    /// Live segment count (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Lifetime counters for stats reporting.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dppr_graph::EdgeUpdate;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_ID: AtomicU32 = AtomicU32::new(0);

    fn test_dir(tag: &str) -> PathBuf {
        let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir()
            .join(format!("dppr-wal-log-{}-{tag}-{id}", std::process::id()));
        fs::remove_dir_all(&d).ok();
        d
    }

    fn batch(epoch: u64, n: usize) -> WalRecord {
        WalRecord::Batch {
            epoch,
            window_start: epoch,
            window_end: epoch + n as u64,
            updates: (0..n as u32).map(|i| EdgeUpdate::insert(i, i + 1)).collect(),
        }
    }

    #[test]
    fn append_reopen_replays_everything() {
        let dir = test_dir("roundtrip");
        let recs: Vec<WalRecord> =
            (1..=5).map(|e| batch(e, e as usize)).chain([WalRecord::Checkpoint { epoch: 3 }]).collect();
        {
            let (mut wal, replay) = Wal::open(&dir, WalOptions::default()).unwrap();
            assert!(replay.is_empty());
            for r in &recs {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        let (_, replay) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(replay, recs);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_splits_and_replay_spans_segments() {
        let dir = test_dir("rotate");
        let opts = WalOptions { segment_bytes: 256, fsync: FsyncPolicy::Off };
        let recs: Vec<WalRecord> = (1..=20).map(|e| batch(e, 8)).collect();
        {
            let (mut wal, _) = Wal::open(&dir, opts.clone()).unwrap();
            for r in &recs {
                wal.append(r).unwrap();
            }
            assert!(wal.segment_count() > 2, "expected rotation, got {}", wal.segment_count());
            wal.sync().unwrap();
        }
        let (wal, replay) = Wal::open(&dir, opts).unwrap();
        assert_eq!(replay, recs);
        assert!(wal.segment_count() > 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_active_and_post_checkpoint_segments() {
        let dir = test_dir("prune");
        let opts = WalOptions { segment_bytes: 256, fsync: FsyncPolicy::Off };
        let (mut wal, _) = Wal::open(&dir, opts.clone()).unwrap();
        for e in 1..=20 {
            wal.append(&batch(e, 8)).unwrap();
        }
        wal.sync().unwrap();
        let before = wal.segment_count();
        assert!(before > 2);
        // Nothing durable yet below epoch 1 → nothing prunable.
        assert_eq!(wal.prune_through(0).unwrap(), 0);
        let removed = wal.prune_through(10).unwrap();
        assert!(removed > 0);
        assert_eq!(wal.segment_count(), before - removed);
        // Replay after pruning still has every record past epoch 10.
        drop(wal);
        let (_, replay) = Wal::open(&dir, opts).unwrap();
        let epochs: Vec<u64> = replay.iter().map(WalRecord::epoch).collect();
        assert!(epochs.contains(&20));
        assert!(epochs.windows(2).all(|w| w[0] < w[1]));
        assert!(*epochs.first().unwrap() <= 11, "pruned past the checkpoint: {epochs:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn never_prunes_everything() {
        let dir = test_dir("prune-all");
        let (mut wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
        wal.append(&batch(1, 2)).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.prune_through(u64::MAX).unwrap(), 0);
        assert_eq!(wal.segment_count(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = test_dir("torn");
        let opts = WalOptions { segment_bytes: 1 << 20, fsync: FsyncPolicy::Off };
        {
            let (mut wal, _) = Wal::open(&dir, opts.clone()).unwrap();
            for e in 1..=3 {
                wal.append(&batch(e, 4)).unwrap();
            }
            wal.sync().unwrap();
        }
        // Tear the final record.
        let path = segment_path(&dir, 1);
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 5).unwrap();

        let (mut wal, replay) = Wal::open(&dir, opts.clone()).unwrap();
        assert_eq!(replay, vec![batch(1, 4), batch(2, 4)]);
        // The log is usable again after repair.
        wal.append(&batch(3, 4)).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&dir, opts).unwrap();
        assert_eq!(replay, vec![batch(1, 4), batch(2, 4), batch(3, 4)]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_drops_later_segments_too() {
        let dir = test_dir("cascade");
        let opts = WalOptions { segment_bytes: 256, fsync: FsyncPolicy::Off };
        {
            let (mut wal, _) = Wal::open(&dir, opts.clone()).unwrap();
            for e in 1..=20 {
                wal.append(&batch(e, 8)).unwrap();
            }
            assert!(wal.segment_count() >= 3);
            wal.sync().unwrap();
        }
        // Flip a bit in the FIRST segment's second frame: everything from
        // there on — including whole later segments — must be discarded,
        // because replay order would otherwise have a hole.
        let first = segment_path(&dir, 1);
        let mut bytes = fs::read(&first).unwrap();
        let one = batch(1, 8).encode().len() + crate::segment::FRAME_HEADER;
        let at = SEGMENT_MAGIC.len() + one + 12; // inside the second frame's payload
        bytes[at] ^= 0x01;
        fs::write(&first, &bytes).unwrap();

        let (wal, replay) = Wal::open(&dir, opts).unwrap();
        assert_eq!(replay, vec![batch(1, 8)]);
        assert_eq!(wal.segment_count(), 1, "later segments must be gone");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fully_corrupt_single_segment_resets_log() {
        let dir = test_dir("reset");
        fs::create_dir_all(&dir).unwrap();
        fs::write(segment_path(&dir, 7), b"garbage, not a segment").unwrap();
        let (mut wal, replay) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert!(replay.is_empty());
        assert_eq!(wal.segment_count(), 1);
        wal.append(&batch(1, 1)).unwrap();
        wal.sync().unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("batch").unwrap(), FsyncPolicy::PerBatch);
        assert_eq!(FsyncPolicy::parse("off").unwrap(), FsyncPolicy::Off);
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert!(FsyncPolicy::parse("interval:abc").is_err());
        assert_eq!(FsyncPolicy::parse("interval:250").unwrap().to_string(), "interval:250");
    }
}
