//! `perf_report` — the machine-readable perf trajectory artifact.
//!
//! Times three things at `--quick` (default) or `--full` scale and writes
//! the results as JSON (default: `BENCH_<pr>.json` at the repo root where
//! `--pr N` defaults to 2; override the path entirely with `--out PATH`):
//!
//! * **batch ingest** — duplicate-checked ingest of a 100k-edge raw R-MAT
//!   stream on the degree-adaptive path vs the linear-scan baseline (the
//!   same stream as the `graph_ingest` criterion bench);
//! * **update throughput** — sliding-window updates/second per engine
//!   (CPU-Seq, CPU-MT[Opt], Monte-Carlo, Ligra);
//! * **push latency** — mean and max per-slide engine latency.
//!
//! The JSON is a trend artifact, not a CI gate: no thresholds are
//! enforced, the numbers exist so the perf trajectory across PRs is
//! inspectable. Regenerate with
//! `cargo run --release -p dppr-bench --bin perf_report -- --quick`.

use dppr_bench::{ms, run_engine, EngineKind, ExperimentScale, Workload};
use dppr_core::PushVariant;
use dppr_graph::generators::{rmat_stream, RmatParams};
use dppr_graph::{presets, DynamicGraph};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Same stream as `benches/graph_ingest.rs`: source-skewed,
/// destination-broad R-MAT arrivals with duplicates kept.
const INGEST_SCALE: u32 = 14;
const INGEST_EDGES: usize = 100_000;
const INGEST_SKEW: RmatParams = RmatParams { a: 0.57, b: 0.40, c: 0.02, d: 0.01 };

fn time_ingest(edges: &[(u32, u32)], linear_scan: bool) -> f64 {
    // Best of 3, so one scheduler hiccup does not pollute the artifact.
    let mut best = f64::MAX;
    for _ in 0..3 {
        let mut g = if linear_scan {
            DynamicGraph::new_linear_scan()
        } else {
            DynamicGraph::new()
        };
        let start = Instant::now();
        for &(u, v) in edges {
            g.insert_edge(u, v);
        }
        std::hint::black_box(g.num_edges());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct EngineRow {
    name: String,
    slides: usize,
    total_updates: usize,
    updates_per_sec: f64,
    mean_push_latency_ms: f64,
    max_push_latency_ms: f64,
    pushes: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = ExperimentScale::from_args();
    // The PR index labels the artifact and names the default output file
    // (`BENCH_<pr>.json` at the repo root), so later PRs can regenerate
    // their own trend point with `--pr N` instead of clobbering this one.
    let pr: u32 = match args.iter().position(|a| a == "--pr") {
        Some(i) => args
            .get(i + 1)
            .expect("--pr requires a number")
            .parse()
            .expect("--pr requires a number"),
        None => 2,
    };
    let out_path: PathBuf = match args.iter().position(|a| a == "--out") {
        Some(i) => PathBuf::from(
            args.get(i + 1).expect("--out requires a path argument"),
        ),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join(format!("../../BENCH_{pr}.json")),
    };

    // --- batch ingest -----------------------------------------------------
    let stream = rmat_stream(INGEST_SCALE, INGEST_EDGES, INGEST_SKEW, 0xD0D0);
    let adaptive_s = time_ingest(&stream, false);
    let linear_s = time_ingest(&stream, true);
    let n = stream.len() as f64;
    eprintln!(
        "ingest: adaptive {:.2} ms ({:.0} edges/s), linear-scan {:.2} ms, speedup {:.1}x",
        adaptive_s * 1e3,
        n / adaptive_s,
        linear_s * 1e3,
        linear_s / adaptive_s
    );

    // --- engines ----------------------------------------------------------
    let (dataset, slides, batch) = match scale {
        ExperimentScale::Quick => (presets::small_sim(), 10, 500),
        ExperimentScale::Full => (presets::youtube_sim(), 50, 1_000),
    };
    let workload = Workload::prepare(dataset, 7, 0.1, 10);
    let kinds = [
        EngineKind::CpuSeq,
        EngineKind::CpuMt(PushVariant::OPT),
        EngineKind::MonteCarlo { walks_per_vertex: 1 },
        EngineKind::Ligra,
    ];
    let mut rows: Vec<EngineRow> = Vec::new();
    for kind in kinds {
        let summary = run_engine(
            kind,
            &workload,
            workload.epsilon(),
            batch,
            slides,
            Duration::from_secs(30),
        );
        let row = EngineRow {
            name: kind.label(),
            slides: summary.slides,
            total_updates: summary.total_updates,
            updates_per_sec: summary.throughput(),
            mean_push_latency_ms: ms(summary.mean_latency()),
            max_push_latency_ms: ms(summary.max_latency()),
            pushes: summary.total_counters().pushes,
        };
        eprintln!(
            "{}: {} slides, {:.0} updates/s, mean slide {:.3} ms, max {:.3} ms",
            row.name, row.slides, row.updates_per_sec, row.mean_push_latency_ms,
            row.max_push_latency_ms
        );
        rows.push(row);
    }

    // --- JSON -------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"dppr-perf-report/v1\",\n");
    json.push_str(&format!("  \"pr\": {pr},\n"));
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            ExperimentScale::Quick => "quick",
            ExperimentScale::Full => "full",
        }
    ));
    json.push_str("  \"ingest\": {\n");
    json.push_str(&format!(
        "    \"stream\": \"rmat_stream(scale={INGEST_SCALE}, m={INGEST_EDGES}, a={}, b={}, c={}, d={}, seed=0xD0D0)\",\n",
        INGEST_SKEW.a, INGEST_SKEW.b, INGEST_SKEW.c, INGEST_SKEW.d
    ));
    json.push_str(&format!(
        "    \"adaptive_edges_per_sec\": {:.0},\n",
        n / adaptive_s
    ));
    json.push_str(&format!(
        "    \"linear_scan_edges_per_sec\": {:.0},\n",
        n / linear_s
    ));
    json.push_str(&format!(
        "    \"adaptive_speedup\": {:.2}\n",
        linear_s / adaptive_s
    ));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"workload\": {{ \"dataset\": \"{}\", \"batch\": {batch}, \"epsilon\": {} }},\n",
        workload.name,
        workload.epsilon()
    ));
    json.push_str("  \"engines\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"slides\": {}, \"total_updates\": {}, \"updates_per_sec\": {:.0}, \"mean_push_latency_ms\": {:.3}, \"max_push_latency_ms\": {:.3}, \"pushes\": {} }}{}\n",
            r.name,
            r.slides,
            r.total_updates,
            r.updates_per_sec,
            r.mean_push_latency_ms,
            r.max_push_latency_ms,
            r.pushes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", out_path.display()));
    println!("{json}");
    eprintln!("wrote {}", out_path.display());
}
