//! Property tests for the vertex-centric engine: the sparse (push) and
//! dense (pull) traversal modes must be observationally equivalent, and
//! the PPR port must match ground truth on arbitrary update scripts.

use dppr_core::{exact_ppr, DynamicPprEngine, PprConfig};
use dppr_graph::{DynamicGraph, EdgeOp, EdgeUpdate, VertexId};
use dppr_vc::edge_map::Mode;
use dppr_vc::{edge_map, vertex_map, Direction, EdgeMapOptions, LigraEngine, VertexSubset};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

fn update_script(n: u32, len: usize) -> impl Strategy<Value = Vec<EdgeUpdate>> {
    prop::collection::vec(
        (0..n, 0..n, prop::bool::weighted(0.8)).prop_map(|(u, v, ins)| EdgeUpdate {
            src: u,
            dst: v,
            op: if ins { EdgeOp::Insert } else { EdgeOp::Delete },
        }),
        len,
    )
}

/// BFS distances through edge_map with a forced mode.
fn bfs(g: &DynamicGraph, root: VertexId, force: Option<Mode>) -> Vec<u32> {
    let n = g.num_vertices();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let claimed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    dist[root as usize].store(0, Ordering::Relaxed);
    claimed[root as usize].store(true, Ordering::Relaxed);
    let mut frontier = VertexSubset::from_sparse(n, vec![root]);
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let lvl = level;
        frontier = edge_map(
            g,
            &mut frontier,
            Direction::Out,
            EdgeMapOptions { force, ..Default::default() },
            |_u, v| {
                if !claimed[v as usize].swap(true, Ordering::Relaxed) {
                    dist[v as usize].store(lvl, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            },
            |_u, v| {
                if !claimed[v as usize].load(Ordering::Relaxed) {
                    claimed[v as usize].store(true, Ordering::Relaxed);
                    dist[v as usize].store(lvl, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            },
            |v| !claimed[v as usize].load(Ordering::Relaxed),
        );
    }
    dist.iter().map(|d| d.load(Ordering::Relaxed)).collect()
}

/// Reference BFS.
fn bfs_reference(g: &DynamicGraph, root: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[root as usize] = 0;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Sparse, dense and auto edge_map all compute correct BFS distances.
    #[test]
    fn edge_map_modes_agree_on_bfs(script in update_script(30, 150), root in 0u32..30) {
        let mut g = DynamicGraph::new();
        for upd in script {
            g.apply(upd);
        }
        g.ensure_vertex(29);
        let expect = bfs_reference(&g, root);
        prop_assert_eq!(&bfs(&g, root, Some(Mode::Sparse)), &expect);
        prop_assert_eq!(&bfs(&g, root, Some(Mode::Dense)), &expect);
        prop_assert_eq!(&bfs(&g, root, None), &expect);
    }

    /// vertexSubset conversions never lose members.
    #[test]
    fn subset_conversions_lossless(ids in prop::collection::btree_set(0u32..64, 0..40)) {
        let ids: Vec<u32> = ids.into_iter().collect();
        let mut s = VertexSubset::from_sparse(64, ids.clone());
        for _ in 0..3 {
            s.to_dense();
            prop_assert_eq!(s.len(), ids.len());
            s.to_sparse();
            prop_assert_eq!(s.ids(), ids.as_slice());
        }
    }

    /// vertex_map output is exactly the filtered subset.
    #[test]
    fn vertex_map_is_filter(ids in prop::collection::btree_set(0u32..50, 0..30), m in 1u32..5) {
        let ids: Vec<u32> = ids.into_iter().collect();
        let mut s = VertexSubset::from_sparse(50, ids.clone());
        let out = vertex_map(&mut s, |v| v % m == 0);
        let expect: Vec<u32> = ids.iter().copied().filter(|v| v % m == 0).collect();
        prop_assert_eq!(out.collect_ids(), expect);
    }

    /// The Ligra PPR engine is ε-accurate on arbitrary scripts.
    #[test]
    fn ligra_ppr_accuracy(script in update_script(24, 120), batch in 1usize..30) {
        let cfg = PprConfig::new(0, 0.2, 1e-3);
        let mut eng = LigraEngine::new(cfg);
        let mut g = DynamicGraph::new();
        for chunk in script.chunks(batch) {
            eng.apply_batch(&mut g, chunk);
        }
        let truth = exact_ppr(&g, 0, 0.2, 1e-12);
        for (v, &t) in truth.iter().enumerate() {
            prop_assert!((eng.estimate(v as u32) - t).abs() <= 1e-3 + 1e-9, "vertex {}", v);
        }
    }
}
