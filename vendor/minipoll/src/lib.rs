//! Minimal mio-style readiness polling built directly on `poll(2)`.
//!
//! The build environment is offline (no mio, no libc crate), but on every
//! unix target std already links the platform libc, so declaring the one
//! symbol we need is enough. The API is deliberately stateless — callers
//! rebuild the descriptor set each iteration, which is both simpler than a
//! registration-based interface and plenty fast for the connection counts a
//! single event-loop shard owns (poll(2) is O(nfds) per call either way).
//!
//! ```no_run
//! use minipoll::{poll, PollFd, READABLE};
//! # let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! # use std::os::fd::AsRawFd;
//! let mut fds = [PollFd::new(listener.as_raw_fd(), READABLE)];
//! let n = poll(&mut fds, Some(std::time::Duration::from_millis(100))).unwrap();
//! if n > 0 && fds[0].readable() {
//!     // accept without blocking
//! }
//! ```

use std::io;
use std::time::Duration;

/// Interest / readiness bit: the descriptor is readable (or has a pending
/// connection, for listeners).
pub const READABLE: u8 = 0b01;
/// Interest / readiness bit: the descriptor is writable.
pub const WRITABLE: u8 = 0b10;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_short};

    // Mirrors `struct pollfd` from <poll.h>; identical layout on every
    // unix libc (fd, events, revents — all fixed-width).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct RawPollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    extern "C" {
        // nfds_t is `unsigned long` on linux and the BSDs.
        pub fn poll(fds: *mut RawPollFd, nfds: std::os::raw::c_ulong, timeout: c_int) -> c_int;
    }
}

/// One descriptor in a poll set: the fd, the caller's interest bits, and
/// (after [`poll`] returns) the kernel's readiness bits.
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    fd: i32,
    interest: u8,
    ready: u8,
    hup: bool,
}

impl PollFd {
    /// A poll entry for `fd` with the given interest bits
    /// ([`READABLE`] | [`WRITABLE`]).
    pub fn new(fd: i32, interest: u8) -> PollFd {
        PollFd { fd, interest, ready: 0, hup: false }
    }

    /// The wrapped descriptor.
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Whether the last [`poll`] reported the descriptor readable.
    pub fn readable(&self) -> bool {
        self.ready & READABLE != 0
    }

    /// Whether the last [`poll`] reported the descriptor writable.
    pub fn writable(&self) -> bool {
        self.ready & WRITABLE != 0
    }

    /// Whether the last [`poll`] reported hangup, error, or an invalid
    /// descriptor — the connection is dead either way.
    pub fn hup_or_err(&self) -> bool {
        self.hup
    }
}

/// Blocks until at least one entry is ready, the timeout elapses
/// (`Ok(0)`), or a signal interrupts the wait (also surfaced as `Ok(0)` —
/// event loops treat both as "re-check state and poll again"). `None`
/// means wait forever.
#[cfg(unix)]
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let mut raw: Vec<sys::RawPollFd> = fds
        .iter()
        .map(|p| sys::RawPollFd {
            fd: p.fd,
            events: (if p.interest & READABLE != 0 { sys::POLLIN } else { 0 })
                | (if p.interest & WRITABLE != 0 { sys::POLLOUT } else { 0 }),
            revents: 0,
        })
        .collect();
    let timeout_ms: i32 = match timeout {
        None => -1,
        // Round up so a 0 < t < 1ms deadline does not busy-spin.
        Some(t) => t.as_millis().min(i32::MAX as u128) as i32
            + if t.subsec_nanos() % 1_000_000 != 0 { 1 } else { 0 },
    };
    // SAFETY: `raw` is a valid, exclusively-borrowed array of `nfds`
    // initialized pollfd structs for the duration of the call.
    let rc = unsafe { sys::poll(raw.as_mut_ptr(), raw.len() as std::os::raw::c_ulong, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            for p in fds.iter_mut() {
                p.ready = 0;
                p.hup = false;
            }
            return Ok(0);
        }
        return Err(err);
    }
    for (p, r) in fds.iter_mut().zip(&raw) {
        p.ready = (if r.revents & sys::POLLIN != 0 { READABLE } else { 0 })
            | (if r.revents & sys::POLLOUT != 0 { WRITABLE } else { 0 });
        p.hup = r.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
    }
    Ok(rc as usize)
}

/// Degenerate non-unix fallback: reports every entry ready for its full
/// interest set after a short sleep, turning the event loop into a
/// throttled busy-poll. Functionally correct (non-blocking I/O returns
/// `WouldBlock` where the readiness report was optimistic), just not
/// efficient — unix targets always use the real `poll(2)` path.
#[cfg(not(unix))]
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let nap = timeout.unwrap_or(Duration::from_millis(10)).min(Duration::from_millis(10));
    std::thread::sleep(nap);
    for p in fds.iter_mut() {
        p.ready = p.interest;
        p.hup = false;
    }
    Ok(fds.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let mut fds = [PollFd::new(listener.as_raw_fd(), READABLE)];
        // Nothing pending: times out.
        let n = poll(&mut fds, Some(Duration::from_millis(1))).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());

        let _client = TcpStream::connect(addr).unwrap();
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].hup_or_err());
    }

    #[test]
    fn stream_readability_tracks_data_and_writability_is_immediate() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        let mut fds = [PollFd::new(server.as_raw_fd(), READABLE | WRITABLE)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable(), "fresh socket with empty send buffer");
        assert!(!fds[0].readable(), "no bytes sent yet");

        client.write_all(b"ping").unwrap();
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        drop(client);

        let mut fds = [PollFd::new(server.as_raw_fd(), READABLE)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        // A closed peer surfaces as readable (EOF) and usually POLLHUP.
        assert!(fds[0].readable() || fds[0].hup_or_err());
    }
}
