//! Maintenance of many PPR vectors side by side.
//!
//! §2.1 of the paper notes that the general (non-unit) personalization case
//! "can be reduced to the case with the unit vector scenario … by
//! maintaining multiple PPR vectors with different personalized unit
//! vectors", and the indexing systems it aims to serve (HubPPR [46],
//! distributed exact PPR [18]) maintain vectors for many hub vertices.
//! [`MultiSourcePpr`] does exactly that: one [`PprState`] per source,
//! updated against the same graph, with the per-source pushes themselves
//! running in parallel across sources (each push is independent — they
//! share only the read-only graph).

use crate::config::PprConfig;
use crate::counters::Counters;
use crate::invariant::restore_invariant_with_degree;
use crate::par::{parallel_local_push, ParPushBuffers};
use crate::state::PprState;
use crate::variants::PushVariant;
use dppr_graph::{DynamicGraph, EdgeUpdate, VertexId};
use rayon::prelude::*;

/// A bundle of PPR vectors for several sources over one dynamic graph.
pub struct MultiSourcePpr {
    states: Vec<PprState>,
    bufs: Vec<ParPushBuffers>,
    alpha: f64,
    epsilon: f64,
    variant: PushVariant,
    counters: Counters,
    seeds: Vec<VertexId>,
}

impl MultiSourcePpr {
    /// Creates one maintained vector per source, all with the same α and ε.
    pub fn new(sources: &[VertexId], alpha: f64, epsilon: f64, variant: PushVariant) -> Self {
        let states = sources
            .iter()
            .map(|&s| PprState::new(PprConfig::new(s, alpha, epsilon)))
            .collect::<Vec<_>>();
        let bufs = sources.iter().map(|_| ParPushBuffers::new()).collect();
        MultiSourcePpr {
            states,
            bufs,
            alpha,
            epsilon,
            variant,
            counters: Counters::new(),
            seeds: Vec::new(),
        }
    }

    /// Rebuilds a bundle from previously maintained states (e.g. loaded
    /// from a `persist` checkpoint): each state is adopted verbatim —
    /// values, length, and config — so maintenance resumes exactly where
    /// the checkpointed process stopped. α and ε are taken from the first
    /// state; every state must share them (they parameterize
    /// [`MultiSourcePpr::add_source`] for sessions opened later).
    ///
    /// # Panics
    /// When `states` is empty or the states disagree on α/ε.
    pub fn from_states(states: Vec<PprState>, variant: PushVariant) -> Self {
        assert!(!states.is_empty(), "from_states needs at least one state");
        let alpha = states[0].config().alpha;
        let epsilon = states[0].config().epsilon;
        for st in &states {
            assert!(
                st.config().alpha == alpha && st.config().epsilon == epsilon,
                "all restored states must share alpha/epsilon"
            );
        }
        let bufs = states.iter().map(|_| ParPushBuffers::new()).collect();
        MultiSourcePpr {
            states,
            bufs,
            alpha,
            epsilon,
            variant,
            counters: Counters::new(),
            seeds: Vec::new(),
        }
    }

    /// Number of maintained sources.
    pub fn num_sources(&self) -> usize {
        self.states.len()
    }

    /// The state maintained for the `i`-th source.
    pub fn state(&self, i: usize) -> &PprState {
        &self.states[i]
    }

    /// The source vertex of the `i`-th maintained vector.
    pub fn source(&self, i: usize) -> VertexId {
        self.states[i].config().source
    }

    /// All maintained sources, in index order.
    pub fn sources(&self) -> Vec<VertexId> {
        self.states.iter().map(|s| s.config().source).collect()
    }

    /// Cumulative counters across all sources.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Index of the maintained state for `source`, if any. Indices are
    /// not stable across [`MultiSourcePpr::remove_source`] (swap-remove),
    /// so callers that close sessions must re-resolve rather than cache.
    pub fn index_of(&self, source: VertexId) -> Option<usize> {
        self.states.iter().position(|s| s.config().source == source)
    }

    /// Starts maintaining a new source against an **already-populated**
    /// graph and returns its index: a [`PprState::cold_start`] state (which
    /// satisfies the invariant on any graph) is pushed to convergence from
    /// the unit residual at `source`. This is how the serving layer opens a
    /// session mid-stream without replaying the graph's edge history.
    pub fn add_source(&mut self, g: &DynamicGraph, source: VertexId) -> usize {
        let cfg = PprConfig::new(source, self.alpha, self.epsilon);
        let st = PprState::cold_start(cfg, g.num_vertices());
        let mut bufs = ParPushBuffers::new();
        parallel_local_push(g, &st, self.variant, &[source], &self.counters, &mut bufs);
        self.states.push(st);
        self.bufs.push(bufs);
        self.states.len() - 1
    }

    /// Stops maintaining the `i`-th source (swap-remove: the last index
    /// moves into `i`) and returns its source vertex.
    pub fn remove_source(&mut self, i: usize) -> VertexId {
        self.bufs.swap_remove(i);
        self.states.swap_remove(i).config().source
    }

    /// Applies a batch: mutates the graph once, then repairs and pushes
    /// every source's vector (sources processed in parallel; each source's
    /// own push uses the sequentially-seeded parallel kernel).
    pub fn apply_batch(&mut self, g: &mut DynamicGraph, batch: &[EdgeUpdate]) -> usize {
        // Graph mutation happens once, recording each update's post-update
        // out-degree (the d_j(u) of Lemma 3) so the invariant repairs can
        // be replayed exactly against every source's state afterwards.
        self.seeds.clear();
        let mut applied: Vec<(EdgeUpdate, usize)> = Vec::with_capacity(batch.len());
        for &upd in batch {
            if g.apply(upd) {
                applied.push((upd, g.out_degree(upd.src)));
                self.seeds.push(upd.src);
            }
        }
        let n = g.num_vertices();
        for st in &mut self.states {
            st.ensure_len(n);
        }
        let g = &*g;
        let seeds = &self.seeds;
        let applied_ref = &applied;
        let variant = self.variant;
        let counters = &self.counters;
        self.states
            .par_iter()
            .zip(self.bufs.par_iter_mut())
            .for_each(|(st, bufs)| {
                for &(upd, dout_after) in applied_ref {
                    restore_invariant_with_degree(st, upd.src, upd.dst, upd.op, dout_after);
                    counters.record_restore();
                }
                parallel_local_push(g, st, variant, seeds, counters, bufs);
            });
        applied.len()
    }

    /// The estimate of `v` w.r.t. the `i`-th source.
    pub fn estimate(&self, i: usize, v: VertexId) -> f64 {
        self.states[i].p(v)
    }

    /// Top-`k` vertices by estimate for the `i`-th source, descending
    /// (ties by ascending id). The workhorse of recommendation queries.
    pub fn top_k(&self, i: usize, k: usize) -> Vec<(VertexId, f64)> {
        top_k_of(&self.states[i].estimates(), k)
    }
}

/// Heap entry ordered so that the *worst* candidate is the heap maximum:
/// lower score is greater, ties broken by higher id greater (the inverse of
/// the answer order "descending score, ascending id").
struct ByWorst(VertexId, f64);

impl PartialEq for ByWorst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for ByWorst {}
impl PartialOrd for ByWorst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ByWorst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .1
            .partial_cmp(&self.1)
            .unwrap()
            .then(self.0.cmp(&other.0))
    }
}

/// Top-`k` entries of a score vector, descending (ties by ascending id).
///
/// Bounded max-k selection with a k-sized max-heap of the *worst* retained
/// candidate: O(k) extra memory and, on randomly ordered scores, expected
/// O(n + k log k) comparisons (once the heap is warm, a candidate beats the
/// k-th best with probability ~k/i, so heap pushes are rare). This runs on
/// every serving-layer query against an n-sized snapshot, where the
/// previous `select_nth_unstable_by` formulation's O(n) index allocation
/// per call was the dominant cost.
pub fn top_k_of(scores: &[f64], k: usize) -> Vec<(VertexId, f64)> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    let mut heap = std::collections::BinaryHeap::with_capacity(k + 1);
    for (v, &p) in scores.iter().enumerate() {
        let cand = ByWorst(v as VertexId, p);
        if heap.len() < k {
            heap.push(cand);
        } else if cand < *heap.peek().unwrap() {
            // Strictly better than the current k-th best: replace it.
            heap.pop();
            heap.push(cand);
        }
    }
    // Ascending in `ByWorst` order = best first, the answer order.
    heap.into_sorted_vec()
        .into_iter()
        .map(|ByWorst(v, p)| (v, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::exact_ppr;
    use crate::invariant::max_invariant_violation;
    use dppr_graph::generators::erdos_renyi;

    #[test]
    fn maintains_every_source_accurately() {
        let sources = [0u32, 3, 7];
        let mut multi = MultiSourcePpr::new(&sources, 0.2, 1e-3, PushVariant::OPT);
        let mut g = DynamicGraph::new();
        let edges = erdos_renyi(40, 400, 13);
        for chunk in edges.chunks(80) {
            let batch: Vec<EdgeUpdate> =
                chunk.iter().map(|&(u, v)| EdgeUpdate::insert(u, v)).collect();
            multi.apply_batch(&mut g, &batch);
        }
        for (i, &s) in sources.iter().enumerate() {
            let truth = exact_ppr(&g, s, 0.2, 1e-12);
            assert!(max_invariant_violation(&g, multi.state(i)) < 1e-9);
            for v in 0..g.num_vertices() as VertexId {
                assert!(
                    (multi.estimate(i, v) - truth[v as usize]).abs() <= 1e-3 + 1e-9,
                    "source {s} vertex {v}"
                );
            }
        }
    }

    #[test]
    fn deletions_propagate_to_all_sources() {
        let sources = [0u32, 1];
        let mut multi = MultiSourcePpr::new(&sources, 0.3, 1e-3, PushVariant::OPT);
        let mut g = DynamicGraph::new();
        let edges = erdos_renyi(20, 150, 5);
        let ins: Vec<EdgeUpdate> =
            edges.iter().map(|&(u, v)| EdgeUpdate::insert(u, v)).collect();
        multi.apply_batch(&mut g, &ins);
        let del: Vec<EdgeUpdate> = edges[..50]
            .iter()
            .map(|&(u, v)| EdgeUpdate::delete(u, v))
            .collect();
        let applied = multi.apply_batch(&mut g, &del);
        assert_eq!(applied, 50);
        for (i, &s) in sources.iter().enumerate() {
            let truth = exact_ppr(&g, s, 0.3, 1e-12);
            for v in 0..g.num_vertices() as VertexId {
                assert!((multi.estimate(i, v) - truth[v as usize]).abs() <= 1e-3 + 1e-9);
            }
        }
    }

    #[test]
    fn top_k_ordering() {
        let scores = [0.1, 0.5, 0.3, 0.5, 0.0];
        let top = top_k_of(&scores, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], (1, 0.5)); // tie broken by id
        assert_eq!(top[1], (3, 0.5));
        assert_eq!(top[2], (2, 0.3));
        assert_eq!(top_k_of(&scores, 0), vec![]);
        assert_eq!(top_k_of(&[], 5), vec![]);
    }

    /// The reference semantics `top_k_of` must preserve: full sort by
    /// (descending score, ascending id), truncated to k.
    fn top_k_by_full_sort(scores: &[f64], k: usize) -> Vec<(VertexId, f64)> {
        let mut all: Vec<(VertexId, f64)> = scores
            .iter()
            .enumerate()
            .map(|(v, &p)| (v as VertexId, p))
            .collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn top_k_heap_matches_full_sort_on_random_scores() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        for n in [1usize, 2, 17, 200, 1000] {
            // Coarse quantization forces plenty of exact ties, so the
            // (score, id) tie-break is genuinely exercised.
            let scores: Vec<f64> = (0..n)
                .map(|_| (rng.gen_range(0..20) as f64) / 20.0)
                .collect();
            for k in [0usize, 1, 2, 7, n / 2, n, n + 10] {
                assert_eq!(
                    top_k_of(&scores, k),
                    top_k_by_full_sort(&scores, k),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn add_source_on_populated_graph_is_epsilon_accurate() {
        let mut multi = MultiSourcePpr::new(&[0], 0.2, 1e-3, PushVariant::OPT);
        let mut g = DynamicGraph::new();
        let edges = erdos_renyi(40, 400, 99);
        let ins: Vec<EdgeUpdate> =
            edges.iter().map(|&(u, v)| EdgeUpdate::insert(u, v)).collect();
        multi.apply_batch(&mut g, &ins);
        // Open a session for vertex 7 against the live graph.
        let i = multi.add_source(&g, 7);
        assert_eq!(i, 1);
        assert_eq!(multi.source(i), 7);
        assert_eq!(multi.sources(), vec![0, 7]);
        assert!(max_invariant_violation(&g, multi.state(i)) < 1e-9);
        let truth = exact_ppr(&g, 7, 0.2, 1e-12);
        for v in 0..g.num_vertices() as VertexId {
            assert!((multi.estimate(i, v) - truth[v as usize]).abs() <= 1e-3 + 1e-9);
        }
        // And the late-opened source keeps tracking subsequent batches.
        let more: Vec<EdgeUpdate> = erdos_renyi(40, 80, 123)
            .into_iter()
            .map(|(u, v)| EdgeUpdate::insert(u, v))
            .collect();
        multi.apply_batch(&mut g, &more);
        let truth = exact_ppr(&g, 7, 0.2, 1e-12);
        for v in 0..g.num_vertices() as VertexId {
            assert!((multi.estimate(i, v) - truth[v as usize]).abs() <= 1e-3 + 1e-9);
        }
    }

    #[test]
    fn from_states_resumes_bitwise_identically() {
        use crate::persist::state_fingerprint;
        // Run one bundle over two batches; rebuild a second bundle from
        // states cloned mid-way and replay the second batch: both ends
        // must agree bit-for-bit (the crash-recovery contract).
        let edges = erdos_renyi(40, 400, 21);
        let (first, second) = edges.split_at(300);
        let b1: Vec<EdgeUpdate> = first.iter().map(|&(u, v)| EdgeUpdate::insert(u, v)).collect();
        let b2: Vec<EdgeUpdate> = second.iter().map(|&(u, v)| EdgeUpdate::insert(u, v)).collect();

        let mut live = MultiSourcePpr::new(&[0, 5], 0.2, 1e-3, PushVariant::OPT);
        let mut g_live = DynamicGraph::new();
        live.apply_batch(&mut g_live, &b1);
        let snapshot: Vec<PprState> =
            (0..live.num_sources()).map(|i| live.state(i).clone_values()).collect();
        live.apply_batch(&mut g_live, &b2);

        let mut resumed = MultiSourcePpr::from_states(snapshot, PushVariant::OPT);
        assert_eq!(resumed.sources(), vec![0, 5]);
        let mut g_resumed = DynamicGraph::new();
        // Rebuild the graph as of the snapshot, then replay the tail.
        for &(u, v) in first {
            g_resumed.insert_edge(u, v);
        }
        resumed.apply_batch(&mut g_resumed, &b2);
        for i in 0..2 {
            assert_eq!(
                state_fingerprint(resumed.state(i)),
                state_fingerprint(live.state(i)),
                "source index {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn from_states_rejects_empty() {
        let _ = MultiSourcePpr::from_states(Vec::new(), PushVariant::OPT);
    }

    #[test]
    fn remove_source_swaps_last_into_slot() {
        let mut multi = MultiSourcePpr::new(&[0, 3, 7], 0.2, 1e-3, PushVariant::OPT);
        assert_eq!(multi.remove_source(0), 0);
        assert_eq!(multi.num_sources(), 2);
        assert_eq!(multi.sources(), vec![7, 3]); // 7 swapped into index 0
        // The survivors still update correctly.
        let mut g = DynamicGraph::new();
        let ins: Vec<EdgeUpdate> = erdos_renyi(20, 150, 5)
            .into_iter()
            .map(|(u, v)| EdgeUpdate::insert(u, v))
            .collect();
        multi.apply_batch(&mut g, &ins);
        for i in 0..multi.num_sources() {
            let s = multi.source(i);
            let truth = exact_ppr(&g, s, 0.2, 1e-12);
            for v in 0..g.num_vertices() as VertexId {
                assert!((multi.estimate(i, v) - truth[v as usize]).abs() <= 1e-3 + 1e-9);
            }
        }
    }
}
