//! The logical records carried by the log.
//!
//! Two record kinds cover the serving write loop's durability needs:
//!
//! * [`WalRecord::Batch`] — one window slide: the epoch it produces when
//!   applied, the post-slide window position in *logical stream edges*
//!   (so recovery can fast-forward the sliding window), and the expanded
//!   arc updates themselves (inserts then deletes, exactly as handed to
//!   the engine).
//! * [`WalRecord::Checkpoint`] — a marker that the checkpoint for `epoch`
//!   is durable on disk; everything at or before it is prunable.
//!
//! Encoding is little-endian and self-describing enough to reject
//! garbage: a one-byte tag, fixed-width fields, and an update count that
//! must exactly match the remaining payload length.

use dppr_graph::{EdgeOp, EdgeUpdate};

/// Tag byte of a [`WalRecord::Batch`].
const TAG_BATCH: u8 = 1;
/// Tag byte of a [`WalRecord::Checkpoint`].
const TAG_CHECKPOINT: u8 = 2;

/// Bytes per encoded update: op (1) + src (4) + dst (4).
const UPDATE_BYTES: usize = 9;

/// One durable log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// One applied window slide.
    Batch {
        /// The epoch published after applying this batch (contiguous:
        /// each batch record's epoch is its predecessor's plus one).
        epoch: u64,
        /// Window start (logical stream position) *after* the slide.
        window_start: u64,
        /// Window end (logical stream position) *after* the slide.
        window_end: u64,
        /// The expanded arc updates, in application order.
        updates: Vec<EdgeUpdate>,
    },
    /// The checkpoint for `epoch` is durable; the log before it is dead.
    Checkpoint {
        /// Epoch the durable checkpoint captured.
        epoch: u64,
    },
}

/// A structural decoding failure (bad tag, short payload, trailing
/// bytes). Distinct from a CRC failure: the frame passed its checksum but
/// does not parse, which recovery treats the same way — an invalid tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wal record decode: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

impl WalRecord {
    /// The epoch this record talks about.
    pub fn epoch(&self) -> u64 {
        match *self {
            WalRecord::Batch { epoch, .. } | WalRecord::Checkpoint { epoch } => epoch,
        }
    }

    /// Serializes the record payload (framing is the segment layer's job).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WalRecord::Batch { epoch, window_start, window_end, updates } => {
                let mut out = Vec::with_capacity(1 + 8 * 3 + 4 + UPDATE_BYTES * updates.len());
                out.push(TAG_BATCH);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&window_start.to_le_bytes());
                out.extend_from_slice(&window_end.to_le_bytes());
                out.extend_from_slice(&(updates.len() as u32).to_le_bytes());
                for u in updates {
                    out.push(match u.op {
                        EdgeOp::Insert => 0,
                        EdgeOp::Delete => 1,
                    });
                    out.extend_from_slice(&u.src.to_le_bytes());
                    out.extend_from_slice(&u.dst.to_le_bytes());
                }
                out
            }
            WalRecord::Checkpoint { epoch } => {
                let mut out = Vec::with_capacity(1 + 8);
                out.push(TAG_CHECKPOINT);
                out.extend_from_slice(&epoch.to_le_bytes());
                out
            }
        }
    }

    /// Deserializes one record payload. The payload must be consumed
    /// exactly — trailing bytes are an error, so a frame length that lies
    /// about its content is caught even when the CRC (computed over the
    /// same lying bytes) matches.
    pub fn decode(buf: &[u8]) -> Result<WalRecord, DecodeError> {
        let mut r = Reader { buf, at: 0 };
        let tag = r.u8()?;
        let rec = match tag {
            TAG_BATCH => {
                let epoch = r.u64()?;
                let window_start = r.u64()?;
                let window_end = r.u64()?;
                if window_start > window_end {
                    return Err(DecodeError(format!(
                        "window start {window_start} past end {window_end}"
                    )));
                }
                let count = r.u32()? as usize;
                if r.remaining() != count * UPDATE_BYTES {
                    return Err(DecodeError(format!(
                        "update count {count} disagrees with {} payload bytes",
                        r.remaining()
                    )));
                }
                let mut updates = Vec::with_capacity(count);
                for _ in 0..count {
                    let op = match r.u8()? {
                        0 => EdgeOp::Insert,
                        1 => EdgeOp::Delete,
                        other => return Err(DecodeError(format!("bad op byte {other}"))),
                    };
                    let src = r.u32()?;
                    let dst = r.u32()?;
                    updates.push(EdgeUpdate { src, dst, op });
                }
                WalRecord::Batch { epoch, window_start, window_end, updates }
            }
            TAG_CHECKPOINT => WalRecord::Checkpoint { epoch: r.u64()? },
            other => return Err(DecodeError(format!("unknown tag {other}"))),
        };
        if r.remaining() != 0 {
            return Err(DecodeError(format!("{} trailing bytes", r.remaining())));
        }
        Ok(rec)
    }
}

/// Cursor over an encoded payload.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        if self.remaining() < N {
            return Err(DecodeError(format!(
                "need {N} bytes, have {}",
                self.remaining()
            )));
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.at..self.at + N]);
        self.at += N;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(epoch: u64) -> WalRecord {
        WalRecord::Batch {
            epoch,
            window_start: 10 * epoch,
            window_end: 10 * epoch + 100,
            updates: vec![
                EdgeUpdate::insert(1, 2),
                EdgeUpdate::insert(u32::MAX, 0),
                EdgeUpdate::delete(3, 4),
            ],
        }
    }

    #[test]
    fn roundtrip_both_kinds() {
        for rec in [batch(7), WalRecord::Checkpoint { epoch: 42 }] {
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec);
        }
        // Empty batches (a slide where nothing applied) are legal.
        let empty = WalRecord::Batch {
            epoch: 1,
            window_start: 0,
            window_end: 5,
            updates: vec![],
        };
        assert_eq!(WalRecord::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn rejects_structural_garbage() {
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[99]).is_err()); // unknown tag
        let mut bytes = batch(1).encode();
        bytes.pop(); // short payload
        assert!(WalRecord::decode(&bytes).is_err());
        let mut bytes = batch(1).encode();
        bytes.push(0); // trailing byte
        assert!(WalRecord::decode(&bytes).is_err());
        // Count field inflated past the payload.
        let mut bytes = batch(1).encode();
        bytes[25] = 200; // count lives after tag + 3×u64
        assert!(WalRecord::decode(&bytes).is_err());
        // Bad op byte.
        let mut bytes = batch(1).encode();
        bytes[29] = 7; // first update's op byte
        assert!(WalRecord::decode(&bytes).is_err());
        // Inverted window.
        let inverted = WalRecord::Batch {
            epoch: 1,
            window_start: 10,
            window_end: 3,
            updates: vec![],
        };
        assert!(WalRecord::decode(&inverted.encode()).is_err());
    }

    #[test]
    fn epoch_accessor() {
        assert_eq!(batch(9).epoch(), 9);
        assert_eq!(WalRecord::Checkpoint { epoch: 3 }.epoch(), 3);
    }
}
