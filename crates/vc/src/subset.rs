//! Ligra's `vertexSubset`: a set of vertices in either sparse (id list) or
//! dense (bitmap) representation.

use dppr_graph::VertexId;

/// A subset of the vertices `0..n`, stored sparse or dense.
#[derive(Debug, Clone)]
pub struct VertexSubset {
    n: usize,
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    Sparse(Vec<VertexId>),
    Dense(Vec<bool>, usize),
}

impl VertexSubset {
    /// An empty subset over `n` vertices.
    pub fn empty(n: usize) -> Self {
        VertexSubset { n, repr: Repr::Sparse(Vec::new()) }
    }

    /// A sparse subset from an id list (ids must be `< n` and distinct).
    pub fn from_sparse(n: usize, ids: Vec<VertexId>) -> Self {
        debug_assert!(ids.iter().all(|&v| (v as usize) < n));
        VertexSubset { n, repr: Repr::Sparse(ids) }
    }

    /// A dense subset from a bitmap of length `n`.
    pub fn from_dense(bits: Vec<bool>) -> Self {
        let count = bits.iter().filter(|&&b| b).count();
        VertexSubset { n: bits.len(), repr: Repr::Dense(bits, count) }
    }

    /// The universe size `n`.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse(ids) => ids.len(),
            Repr::Dense(_, count) => *count,
        }
    }

    /// Whether the subset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test. O(1) dense, O(|S|) sparse.
    pub fn contains(&self, v: VertexId) -> bool {
        match &self.repr {
            Repr::Sparse(ids) => ids.contains(&v),
            Repr::Dense(bits, _) => bits.get(v as usize).copied().unwrap_or(false),
        }
    }

    /// Whether the current representation is dense.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense(..))
    }

    /// Converts to the dense representation (idempotent).
    pub fn to_dense(&mut self) {
        if let Repr::Sparse(ids) = &self.repr {
            let mut bits = vec![false; self.n];
            for &v in ids {
                bits[v as usize] = true;
            }
            let count = ids.len();
            self.repr = Repr::Dense(bits, count);
        }
    }

    /// Converts to the sparse representation (idempotent).
    pub fn to_sparse(&mut self) {
        if let Repr::Dense(bits, _) = &self.repr {
            let ids: Vec<VertexId> = bits
                .iter()
                .enumerate()
                .filter_map(|(v, &b)| b.then_some(v as VertexId))
                .collect();
            self.repr = Repr::Sparse(ids);
        }
    }

    /// The member ids (forces a sparse conversion if needed).
    pub fn ids(&mut self) -> &[VertexId] {
        self.to_sparse();
        match &self.repr {
            Repr::Sparse(ids) => ids,
            Repr::Dense(..) => unreachable!(),
        }
    }

    /// Member ids without mutating the representation (allocates for
    /// dense subsets).
    pub fn collect_ids(&self) -> Vec<VertexId> {
        match &self.repr {
            Repr::Sparse(ids) => ids.clone(),
            Repr::Dense(bits, _) => bits
                .iter()
                .enumerate()
                .filter_map(|(v, &b)| b.then_some(v as VertexId))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_roundtrip() {
        let mut s = VertexSubset::from_sparse(10, vec![1, 5, 7]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(5));
        assert!(!s.contains(2));
        s.to_dense();
        assert!(s.is_dense());
        assert_eq!(s.len(), 3);
        assert!(s.contains(5));
        s.to_sparse();
        assert_eq!(s.ids(), &[1, 5, 7]);
    }

    #[test]
    fn dense_construction() {
        let s = VertexSubset::from_dense(vec![true, false, true]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.universe(), 3);
        assert_eq!(s.collect_ids(), vec![0, 2]);
    }

    #[test]
    fn empty_subset() {
        let mut s = VertexSubset::empty(4);
        assert!(s.is_empty());
        s.to_dense();
        assert!(s.is_empty());
        assert_eq!(s.collect_ids(), Vec::<VertexId>::new());
    }
}
