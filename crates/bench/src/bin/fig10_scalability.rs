//! Figure 10 — multi-core scalability.
//!
//! Runs `CPU-MT[Opt]` on dedicated rayon pools of growing size and reports
//! throughput and speedup over one worker. Paper's shape: throughput
//! scales with the core count (sub-linearly — the push is memory-bound).
//!
//! Usage: `fig10_scalability [--full]`

use dppr_bench::{ExperimentScale, Workload};
use dppr_core::{ParallelEngine, PushVariant};
use dppr_graph::presets;
use std::time::Duration;

fn main() {
    let scale = ExperimentScale::from_args();
    // Scale note: thread scaling needs per-iteration frontiers well past
    // the granularity threshold, which the small presets cannot produce
    // (their whole vertex set is a few thousand). Quick uses the
    // 100k-vertex preset; Full uses the DRAM-resident 16M-arc preset,
    // the regime the paper's graphs live in.
    let (ds, batch, budget) = match scale {
        ExperimentScale::Quick => (presets::lj_sim(), 10_000, Duration::from_secs(4)),
        ExperimentScale::Full => (presets::big_sim(), 50_000, Duration::from_secs(30)),
    };
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let mut threads = vec![1usize, 2, 4, 8, 16];
    threads.retain(|&t| t <= max_threads);
    if !threads.contains(&max_threads) {
        threads.push(max_threads);
    }
    // ε a notch below the default so frontiers are large enough to feed
    // all cores.
    let eps = ds.default_epsilon * 0.1;
    let workload = Workload::prepare(ds, 7, 0.1, 10);
    println!(
        "# Figure 10: scalability of CPU-MT[Opt] ({} | batch {batch} | ε {:.0e})",
        workload.name, eps
    );
    println!("threads\tslides\tupdates_per_sec\tspeedup_vs_1");
    let mut base: Option<f64> = None;
    for &t in &threads {
        let cfg = workload.config(eps);
        let mut engine = ParallelEngine::with_threads(cfg, PushVariant::OPT, t);
        let mut driver = workload.driver(0.1);
        driver.bootstrap(&mut engine);
        let mut slides = 0usize;
        let mut updates = 0usize;
        let mut latency = Duration::ZERO;
        while latency < budget {
            let part = driver.run_slides(&mut engine, batch, 1);
            if part.slides == 0 {
                break;
            }
            slides += part.slides;
            updates += part.total_updates;
            latency += part.total_latency;
        }
        let tput = updates as f64 / latency.as_secs_f64().max(1e-9);
        let b = *base.get_or_insert(tput);
        println!("{t}\t{slides}\t{tput:.0}\t{:.2}", tput / b);
    }
}
