//! The case runner and its configuration.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-case RNG handed to strategies.
pub type TestRng = SmallRng;

/// Mirror of `proptest::test_runner::Config`, restricted to the fields
/// this workspace sets. Extra fields exist so `..Config::default()`
/// struct-update syntax keeps working if more are named later.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Base seed mixed into every per-case seed. The default of 0 gives
    /// a fixed, reproducible stream per (test name, case index).
    pub rng_seed: u64,
    /// Accepted for compatibility; the stub never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            // The real crate defaults to 256; the stub keeps that so
            // suites that want a cheaper tier-1 must opt down explicitly.
            cases: 256,
            rng_seed: 0,
            max_shrink_iters: 0,
        }
    }
}

impl Config {
    /// `ProptestConfig::with_cases(n)` from the real API.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Why a case failed. The stub only distinguishes failure from
/// rejection for API compatibility; rejections abort the test too.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// FNV-1a, used to fold the test name into the seed.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn case_seed(config: &Config, name: &str, case: u32) -> u64 {
    config
        .rng_seed
        .wrapping_add(fnv1a(name))
        .wrapping_add((case as u64).wrapping_mul(0x9E3779B97F4A7C15))
}

/// Runs `body` for `config.cases` deterministic cases. Panics (failing
/// the enclosing `#[test]`) on the first case that returns an error,
/// reporting the case index and replay seed.
pub fn run<F>(config: &Config, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Replay hook: run exactly one case with the given seed.
    if let Ok(seed) = std::env::var("PROPTEST_STUB_SEED") {
        let seed: u64 = seed
            .parse()
            .expect("PROPTEST_STUB_SEED must be a u64 seed printed by a failure");
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(e) = body(&mut rng) {
            panic!("[{name}] replayed case (seed {seed}) failed: {e}");
        }
        return;
    }
    for case in 0..config.cases {
        let seed = case_seed(config, name, case);
        let mut rng = TestRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(m)) => {
                panic!("[{name}] case {case}/{} rejected: {m} (the stub does not resample; loosen the strategy)", config.cases)
            }
            Err(TestCaseError::Fail(m)) => {
                panic!(
                    "[{name}] case {case}/{} failed (replay with PROPTEST_STUB_SEED={seed}): {m}",
                    config.cases
                )
            }
        }
    }
}
