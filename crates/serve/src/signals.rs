//! SIGTERM/SIGINT → graceful-shutdown flag, with no libc crate.
//!
//! The handler does the only thing that is async-signal-safe here: one
//! atomic store. The serve command's wait loop polls [`triggered`] and
//! runs the normal shutdown path — acceptor unblocked, shards drain
//! their in-flight connections ([`crate::event`]'s shutdown handling),
//! the write loop flushes the WAL and writes a final checkpoint.
//!
//! `signal(2)` is declared directly (the precedent is the vendored
//! `minipoll`'s `poll(2)` binding): the offline build environment has no
//! libc crate, and the two signal numbers used are stable POSIX values
//! on every platform this serves on.

use std::sync::atomic::{AtomicBool, Ordering::SeqCst};

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

static TRIGGERED: AtomicBool = AtomicBool::new(false);

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    TRIGGERED.store(true, SeqCst);
}

/// Installs the termination handler for SIGINT and SIGTERM. Idempotent;
/// call once before entering the serve wait loop.
pub fn install() {
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// Whether a termination signal has arrived since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn raised_sigterm_sets_the_flag() {
        install();
        assert!(!triggered());
        unsafe {
            raise(SIGTERM);
        }
        assert!(triggered());
    }
}
