//! CRC32 (IEEE 802.3 polynomial), the integrity check shared by the
//! durable formats: `persist` v2 snapshot trailers and the `dppr-wal`
//! record framing both use it, so a snapshot or log frame that was torn or
//! bit-flipped on disk is detected before any of its contents are trusted.
//!
//! The build environment is offline (no `crc32fast`), so this is the plain
//! table-driven byte-at-a-time implementation — integrity checking is not
//! on any hot path (one pass per checkpoint load / log frame).

/// Reflected CRC32 lookup table for polynomial `0xEDB88320`.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC32 hasher (for writers that do not hold all bytes at
/// once).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds `bytes` through the hasher.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"dppr durable bytes".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
