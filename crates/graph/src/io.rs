//! SNAP-style edge-list text I/O.
//!
//! The paper's datasets ship as whitespace-separated `src dst` lines with
//! `#`-prefixed comments; this module reads and writes that format so users
//! can run the engines on the real SNAP files when they have them.

use crate::types::VertexId;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Parses an edge list from any reader. Lines starting with `#` or `%` and
/// blank lines are skipped; each remaining line must contain at least two
/// whitespace-separated integers (extra columns such as timestamps or
/// weights are ignored).
pub fn parse_edge_list<R: BufRead>(reader: R) -> io::Result<Vec<(VertexId, VertexId)>> {
    let mut edges = Vec::new();
    let mut line = String::new();
    let mut reader = reader;
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<VertexId> {
            tok.ok_or_else(|| bad_line(lineno, t))?
                .parse::<VertexId>()
                .map_err(|_| bad_line(lineno, t))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        edges.push((u, v));
    }
    Ok(edges)
}

fn bad_line(lineno: usize, content: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed edge-list line {lineno}: {content:?}"),
    )
}

/// Reads an edge list from a file.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> io::Result<Vec<(VertexId, VertexId)>> {
    parse_edge_list(BufReader::new(File::open(path)?))
}

/// Writes an edge list (one `src\tdst` per line) with a comment header.
pub fn write_edge_list<P: AsRef<Path>>(
    path: P,
    edges: &[(VertexId, VertexId)],
    comment: &str,
) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    if !comment.is_empty() {
        writeln!(w, "# {comment}")?;
    }
    for &(u, v) in edges {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_snap_format() {
        let text = "# Directed graph\n# Nodes: 3 Edges: 3\n0\t1\n1 2\n\n% matrix-market style comment\n2 0 extra-col\n";
        let edges = parse_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_edge_list(Cursor::new("0 x\n")).is_err());
        assert!(parse_edge_list(Cursor::new("42\n")).is_err());
        assert!(parse_edge_list(Cursor::new("-1 2\n")).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("dppr_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        let edges = vec![(0, 1), (5, 3), (2, 2)];
        write_edge_list(&path, &edges, "test graph").unwrap();
        let back = read_edge_list(&path).unwrap();
        assert_eq!(back, edges);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_input() {
        assert!(parse_edge_list(Cursor::new("")).unwrap().is_empty());
        assert!(parse_edge_list(Cursor::new("# only comments\n")).unwrap().is_empty());
    }
}
