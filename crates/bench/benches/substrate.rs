//! Substrate micro-benchmarks: the atomic f64 primitive, graph mutation,
//! CSR snapshotting, `RestoreInvariant`, and Monte-Carlo walk maintenance.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dppr_core::{AtomicF64, Counters, PprConfig, PprState};
use dppr_graph::generators::{barabasi_albert, erdos_renyi, undirected_to_directed};
use dppr_graph::{CsrGraph, DynamicGraph, EdgeUpdate};
use dppr_mc::MonteCarloPpr;
use rayon::prelude::*;

fn bench_atomic_f64(c: &mut Criterion) {
    let mut group = c.benchmark_group("atomic_f64");
    let slots: Vec<AtomicF64> = (0..1024).map(|_| AtomicF64::new(0.0)).collect();

    group.bench_function("fetch_add_uncontended", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 1023;
            slots[i].fetch_add(1.0)
        })
    });

    group.bench_function("fetch_add_contended_24t", |b| {
        let hot = AtomicF64::new(0.0);
        b.iter_custom(|iters| {
            let start = std::time::Instant::now();
            (0..iters).into_par_iter().for_each(|_| {
                hot.fetch_add(1.0);
            });
            start.elapsed()
        })
    });

    group.bench_function("swap", |b| {
        b.iter(|| slots[0].swap(2.0))
    });
    group.finish();
}

fn bench_graph_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_ops");
    let edges = undirected_to_directed(&barabasi_albert(10_000, 5, 3));
    group.throughput(Throughput::Elements(edges.len() as u64));

    group.bench_function("insert_unchecked", |b| {
        b.iter_batched(
            DynamicGraph::new,
            |mut g| {
                for &(u, v) in &edges {
                    g.insert_edge_unchecked(u, v);
                }
                g
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("insert_checked", |b| {
        b.iter_batched(
            DynamicGraph::new,
            |mut g| {
                for &(u, v) in &edges {
                    g.insert_edge(u, v);
                }
                g
            },
            BatchSize::LargeInput,
        )
    });

    let built = DynamicGraph::from_edges(edges.iter().copied());
    group.bench_function("delete_all", |b| {
        b.iter_batched(
            || built.clone(),
            |mut g| {
                for &(u, v) in &edges {
                    g.delete_edge(u, v);
                }
                g
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("csr_snapshot", |b| {
        b.iter(|| CsrGraph::from_dynamic(&built))
    });
    group.finish();
}

fn bench_restore_invariant(c: &mut Criterion) {
    let mut group = c.benchmark_group("restore_invariant");
    let base = erdos_renyi(5_000, 60_000, 5);
    let extra = erdos_renyi(5_000, 70_000, 6);
    let news: Vec<EdgeUpdate> = extra
        .into_iter()
        .filter(|e| !base.contains(e))
        .take(10_000)
        .map(|(u, v)| EdgeUpdate::insert(u, v))
        .collect();
    group.throughput(Throughput::Elements(news.len() as u64));
    group.sample_size(20);
    group.bench_function("insert_10k", |b| {
        b.iter_batched(
            || {
                let g = DynamicGraph::from_edges(base.iter().copied());
                let mut st = PprState::new(PprConfig::new(0, 0.15, 1e-5));
                st.ensure_len(g.num_vertices());
                (g, st)
            },
            |(mut g, mut st)| {
                let counters = Counters::new();
                for &upd in &news {
                    dppr_core::apply_update(&mut g, &mut st, upd, &counters);
                }
                (g, st)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_mc_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_maintenance");
    group.sample_size(10);
    let edges = undirected_to_directed(&barabasi_albert(5_000, 5, 21));
    let g = DynamicGraph::from_edges(edges.iter().copied());
    group.bench_function("single_update_50k_walks", |b| {
        b.iter_batched(
            || {
                let mut mc = MonteCarloPpr::new(0, 0.15, 50_000, 9);
                mc.rebuild(&g);
                let mut g2 = g.clone();
                // The update under test: a new out-edge at the hub.
                let hub = g2.top_out_degree_vertices(1)[0];
                let mut v = 0u32;
                while g2.has_edge(hub, v) || hub == v {
                    v += 1;
                }
                g2.insert_edge(hub, v);
                (mc, g2, hub)
            },
            |(mut mc, g2, hub)| {
                mc.on_update(&g2, hub);
                mc
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_atomic_f64,
    bench_graph_ops,
    bench_restore_invariant,
    bench_mc_update
);
criterion_main!(benches);
