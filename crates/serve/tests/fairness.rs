//! Pins per-connection fairness inside one event-loop shard: a client
//! that pipelines a deep burst of requests must not monopolize the
//! shard's drive loop — other connections get served between its
//! per-tick budget slices.

use dppr_serve::event::{spawn_shard, ConnCounters, Router, ShardConfig};
use dppr_serve::http::{Request, Response};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::Duration;

/// Stamps every response with a process-global service order, so the
/// test can observe cross-connection interleaving exactly.
struct SeqRouter(Arc<AtomicU64>);

impl Router for SeqRouter {
    fn route(&mut self, _req: &Request) -> Response {
        let n = self.0.fetch_add(1, Relaxed);
        Response::new(200, format!("{{\"seq\":{n}}}"))
    }
}

/// Reads one Content-Length-framed response off a keep-alive stream and
/// returns the `seq` stamp from its body.
fn read_seq(conn: &mut TcpStream) -> u64 {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        let n = conn.read(&mut byte).expect("read header byte");
        assert!(n > 0, "EOF inside response head");
        head.push(byte[0]);
        assert!(head.len() < 4096, "unterminated response head");
    }
    let head = String::from_utf8(head).unwrap();
    let len: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_owned))
        .expect("Content-Length header")
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; len];
    conn.read_exact(&mut body).expect("read body");
    let body = String::from_utf8(body).unwrap();
    let seq = body
        .strip_prefix("{\"seq\":")
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unexpected body {body}"));
    seq.parse().unwrap()
}

#[test]
fn pipelining_burst_does_not_starve_the_other_connection() {
    const BURST: usize = 256;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    // Client A: one deep pipelined burst, written before the shard even
    // exists so the whole pipeline is buffered server-side up front.
    let mut client_a = TcpStream::connect(addr).unwrap();
    let (server_a, _) = listener.accept().unwrap();
    let mut burst = Vec::new();
    for _ in 0..BURST {
        burst.extend_from_slice(b"GET /a HTTP/1.1\r\nHost: x\r\n\r\n");
    }
    client_a.write_all(&burst).unwrap();

    // Client B: a single request, buffered just the same.
    let mut client_b = TcpStream::connect(addr).unwrap();
    let (server_b, _) = listener.accept().unwrap();
    client_b.write_all(b"GET /b HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();

    // Let loopback delivery settle so both inputs are kernel-buffered.
    std::thread::sleep(Duration::from_millis(50));

    // Enqueue A then B *before* spawning the shard: adoption order (and
    // thus drive order) is deterministic — A is always driven first.
    let (queue_tx, queue_rx) = sync_channel::<TcpStream>(4);
    queue_tx.send(server_a).unwrap();
    queue_tx.send(server_b).unwrap();

    let shutdown = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(ConnCounters::default());
    let seq = Arc::new(AtomicU64::new(0));
    let cfg = ShardConfig {
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(10),
    };
    let shard = spawn_shard(
        "fairness-test".into(),
        cfg,
        queue_rx,
        queue_tx.clone(),
        Arc::clone(&shutdown),
        Arc::clone(&counters),
        SeqRouter(Arc::clone(&seq)),
    )
    .unwrap();

    client_b.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    client_a.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let seq_b = read_seq(&mut client_b);
    let mut seq_a_last = 0;
    for _ in 0..BURST {
        seq_a_last = read_seq(&mut client_a);
    }

    // B was served while A's pipeline still had requests pending: the
    // budget preempted A. Without the per-tick cap, A's entire buffered
    // burst is answered before B's first request.
    assert!(
        seq_b < seq_a_last,
        "single-request client starved behind the {BURST}-deep pipeline \
         (b={seq_b}, a_last={seq_a_last})"
    );
    // And B waited at most a few budget slices, not the whole burst.
    assert!(
        seq_b < 64,
        "B should be served within a few ticks of adoption, got seq {seq_b}"
    );

    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    shard.join();
    assert_eq!(counters.requests.load(Relaxed), BURST as u64 + 1);
}
