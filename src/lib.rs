//! # dppr — Parallel Personalized PageRank on Dynamic Graphs
//!
//! A Rust reproduction of Guo, Li, Sha & Tan, *Parallel Personalized
//! PageRank on Dynamic Graphs*, PVLDB 11(1), 2017.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] — dynamic graph substrate, generators, sliding-window streams.
//! * [`core`] — the local-update PPR engines (sequential and parallel) and
//!   their building blocks.
//! * [`mc`] — the incremental Monte-Carlo baseline.
//! * [`vc`] — the Ligra-style vertex-centric engine and its PPR port.
//! * [`stream`] — the sliding-window experiment harness.
//! * [`serve`] — the concurrent query-serving subsystem: epoch snapshots,
//!   session registry, query cache, std-only HTTP front end.
//!
//! ## Quickstart
//!
//! ```
//! use dppr::core::{ParallelEngine, PprConfig, PushVariant, DynamicPprEngine};
//! use dppr::graph::{DynamicGraph, EdgeUpdate};
//!
//! // Maintain PPR for source 0 with α = 0.15, ε = 1e-4.
//! let mut g = DynamicGraph::new();
//! let cfg = PprConfig::new(0, 0.15, 1e-4);
//! let mut engine = ParallelEngine::new(cfg, PushVariant::OPT);
//!
//! // Edges arrive in batches...
//! let batch = vec![
//!     EdgeUpdate::insert(0, 1),
//!     EdgeUpdate::insert(1, 2),
//!     EdgeUpdate::insert(2, 0),
//! ];
//! engine.apply_batch(&mut g, &batch);
//!
//! // ...and estimates are always ε-accurate.
//! let p = engine.estimates();
//! assert!(p[0] > 0.0);
//! ```

pub use dppr_core as core;
pub use dppr_graph as graph;
pub use dppr_mc as mc;
pub use dppr_serve as serve;
pub use dppr_stream as stream;
pub use dppr_vc as vc;
