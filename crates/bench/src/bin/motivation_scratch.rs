//! Motivation experiment (paper §1): "computation of PPR from scratch is
//! prohibitively slow against high rate of graph updates".
//!
//! For each batch size, compares three ways of answering after a window
//! slide:
//!
//! * `incremental` — the paper's approach: restore + parallel push;
//! * `scratch-push` — recompute the PPR vector with a fresh push over the
//!   whole window;
//! * `scratch-jacobi` — recompute with power iteration (the first scheme
//!   of §6, Ω(m) per refresh).
//!
//! Expected shape: incremental wins by orders of magnitude at small batch
//! sizes and the gap narrows as the batch approaches the window size.
//!
//! Usage: `motivation_scratch [--full]`

use dppr_bench::{ms, ExperimentScale, Workload};
use dppr_core::{exact_ppr, DynamicPprEngine, ParallelEngine, PushVariant};
use dppr_graph::{DynamicGraph, EdgeUpdate};
use std::time::{Duration, Instant};

fn main() {
    let scale = ExperimentScale::from_args();
    let (ds, batches): (_, &[usize]) = match scale {
        ExperimentScale::Quick => (dppr_graph::presets::small_sim(), &[10, 100, 1_000]),
        ExperimentScale::Full => (dppr_graph::presets::lj_sim(), &[100, 1_000, 10_000]),
    };
    let eps = ds.default_epsilon;
    let workload = Workload::prepare(ds, 11, 0.1, 10);
    let cfg = workload.config(eps);
    println!(
        "# Motivation: incremental vs from-scratch per slide ({}, ε {eps:.0e})",
        workload.name
    );
    println!("batch\tincremental_ms\tscratch_push_ms\tscratch_jacobi_ms\tspeedup_vs_push\tspeedup_vs_jacobi");

    for &batch in batches {
        // Incremental: maintained engine over `slides` slides.
        let mut engine = ParallelEngine::new(cfg, PushVariant::OPT);
        let mut driver = workload.driver(0.1);
        driver.bootstrap(&mut engine);
        let slides = scale.slides().min(driver.window().remaining_slides(batch));
        if slides == 0 {
            continue;
        }
        let inc = driver.run_slides(&mut engine, batch, slides);
        let inc_ms = ms(inc.mean_latency());

        // From scratch per slide: rebuild on the final window (one
        // representative recomputation each, averaged over 3 runs).
        let reps = 3;
        let mut push_total = Duration::ZERO;
        for _ in 0..reps {
            let t = Instant::now();
            let mut fresh = ParallelEngine::new(cfg, PushVariant::OPT);
            let mut g = DynamicGraph::new();
            let batch_updates: Vec<EdgeUpdate> = driver
                .window()
                .window_edges()
                .flat_map(|(u, v)| {
                    let mut arcs = vec![EdgeUpdate::insert(u, v)];
                    if driver.window().stream().is_undirected() {
                        arcs.push(EdgeUpdate::insert(v, u));
                    }
                    arcs
                })
                .collect();
            fresh.apply_batch(&mut g, &batch_updates);
            push_total += t.elapsed();
        }
        let push_ms = ms(push_total / reps);

        let mut jacobi_total = Duration::ZERO;
        for _ in 0..reps {
            let t = Instant::now();
            let p = exact_ppr(driver.graph(), cfg.source, cfg.alpha, eps);
            std::hint::black_box(p);
            jacobi_total += t.elapsed();
        }
        let jacobi_ms = ms(jacobi_total / reps);

        println!(
            "{batch}\t{inc_ms:.3}\t{push_ms:.3}\t{jacobi_ms:.3}\t{:.1}\t{:.1}",
            push_ms / inc_ms.max(1e-9),
            jacobi_ms / inc_ms.max(1e-9),
        );
    }
}
