//! `RestoreInvariant` (Algorithm 1) and the Eq. 2 invariant checker.
//!
//! When the directed edge `u → v` is inserted or deleted, the invariant
//!
//! ```text
//! Ps(w) + α·Rs(w) = Σ_{x ∈ Nout(w)} (1−α)·Ps(x)/dout(w) + α·1{w=s}
//! ```
//!
//! breaks **only at `w = u`** (only `u`'s out-neighborhood changed), and is
//! repaired by a constant-time residual adjustment:
//!
//! ```text
//! Rs(u) ±= [(1−α)·Ps(v) − Ps(u) − α·Rs(u) + α·1{u=s}] / (α·dout(u))
//! ```
//!
//! with `+` for insertion and `−` for deletion, where `dout(u)` is the
//! **post-update** out-degree (this is the `d_j(u)` of Lemma 3; it also
//! matches the worked example of Figure 1 digit-for-digit — see the unit
//! tests). Deleting the last out-edge is the one degenerate case: the sum
//! side of the invariant becomes empty, so `Rs(u)` is set directly from
//! `Ps(u) + α·Rs(u) = α·1{u=s}`.


use crate::counters::Counters;
use crate::state::PprState;
use dppr_graph::{DynamicGraph, EdgeOp, EdgeUpdate, VertexId};

/// Repairs the invariant for the update `(u, v, op)`. Must be called
/// **after** the edge change has been applied to `g`, with `state` already
/// grown to cover `g`'s vertices.
pub fn restore_invariant(
    g: &DynamicGraph,
    state: &PprState,
    u: VertexId,
    v: VertexId,
    op: EdgeOp,
) {
    restore_invariant_with_degree(state, u, v, op, g.out_degree(u));
}

/// [`restore_invariant`] with the post-update out-degree supplied by the
/// caller. This is what makes *replaying* a batch of repairs against
/// several states possible after the graph has already absorbed the whole
/// batch (`dout(u)` must be the degree right after *this* update — the
/// `d_j(u)` of Lemma 3 — not the final one).
pub fn restore_invariant_with_degree(
    state: &PprState,
    u: VertexId,
    v: VertexId,
    op: EdgeOp,
    dout_after: usize,
) {
    let cfg = *state.config();
    let alpha = cfg.alpha;
    let indicator = if u == cfg.source { alpha } else { 0.0 };

    if dout_after == 0 {
        // Deleting u's last out-edge: invariant with an empty sum.
        debug_assert_eq!(op, EdgeOp::Delete);
        let r_new = (indicator - state.p(u)) / alpha;
        state.set_r(u, r_new);
        return;
    }

    let numerator =
        (1.0 - alpha) * state.p(v) - state.p(u) - alpha * state.r(u) + indicator;
    // This division is per-*update*, not per-edge, and `dout_after` is a
    // historical degree (the d_j(u) of Lemma 3) that the graph's maintained
    // `inv_out_degree` cannot supply mid-replay. It also keeps the serial
    // and parallel restore paths bit-identical — do not rewrite it as a
    // multiply by a cached reciprocal.
    let delta = numerator / (alpha * dout_after as f64);
    state.set_r(u, state.r(u) + op.sign() * delta);
}

/// Applies one update end-to-end: mutates the graph, grows the state, and
/// repairs the invariant. Returns `false` (leaving everything unchanged)
/// if the graph mutation was a no-op (duplicate insert / absent delete).
pub fn apply_update(
    g: &mut DynamicGraph,
    state: &mut PprState,
    upd: EdgeUpdate,
    counters: &Counters,
) -> bool {
    if !g.apply(upd) {
        return false;
    }
    state.ensure_len(g.num_vertices());
    restore_invariant(g, state, upd.src, upd.dst, upd.op);
    counters.record_restore();
    true
}

/// Applies a whole update batch with **parallel invariant repair**.
///
/// The paper treats the restore phase as a sequential O(k) prelude ("as
/// repairing the invariant only takes a constant time, the parallel push
/// dominates", §4). For very large batches the prelude itself becomes
/// measurable; this routine exploits that repairs for *different* source
/// vertices commute — a repair writes only `Rs(u)` and reads only
/// estimates, which no repair writes — so after the (inherently serial)
/// graph mutation records each update's post-degree, the repairs run
/// grouped by source across rayon workers, preserving per-source order
/// (the `d_j(u)` recursion of Lemma 3 is order-sensitive within a source).
///
/// Appends the sources of applied updates to `seeds` and returns how many
/// updates changed the graph. Produces bit-identical state to the serial
/// [`apply_update`] loop.
pub fn apply_batch_parallel_restore(
    g: &mut DynamicGraph,
    state: &mut PprState,
    batch: &[EdgeUpdate],
    counters: &Counters,
    seeds: &mut Vec<VertexId>,
) -> usize {
    use rayon::prelude::*;

    // Serial phase: mutate the graph, recording post-update degrees.
    let mut records: Vec<(EdgeUpdate, usize)> = Vec::with_capacity(batch.len());
    for &upd in batch {
        if g.apply(upd) {
            records.push((upd, g.out_degree(upd.src)));
            seeds.push(upd.src);
        }
    }
    state.ensure_len(g.num_vertices());
    let applied = records.len();

    // Group by source, stably, so each source's repairs replay in arrival
    // order.
    records.sort_by_key(|(upd, _)| upd.src);
    let state = &*state;
    let groups: Vec<&[(EdgeUpdate, usize)]> = records
        .chunk_by(|a, b| a.0.src == b.0.src)
        .collect();
    groups.par_iter().with_min_len(16).for_each(|group| {
        for &(upd, dout_after) in *group {
            restore_invariant_with_degree(state, upd.src, upd.dst, upd.op, dout_after);
        }
    });
    counters.record_restores(applied as u64);
    applied
}

/// Largest absolute violation of Eq. 2 over all vertices. Exactly zero only
/// in exact arithmetic; tests compare against a small tolerance. O(n + m).
pub fn max_invariant_violation(g: &DynamicGraph, state: &PprState) -> f64 {
    let cfg = *state.config();
    let alpha = cfg.alpha;
    let mut worst: f64 = 0.0;
    for w in 0..g.num_vertices() as VertexId {
        let indicator = if w == cfg.source { alpha } else { 0.0 };
        let rhs = if g.out_degree(w) == 0 {
            indicator
        } else {
            let sum: f64 = g
                .out_neighbors(w)
                .iter()
                .map(|&x| state.p(x))
                .sum();
            (1.0 - alpha) * sum * g.inv_out_degree(w) + indicator
        };
        let lhs = state.p(w) + alpha * state.r(w);
        worst = worst.max((lhs - rhs).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PprConfig;

    /// The 4-vertex graph of Figure 1: edges 1→4? No — the figure's
    /// topology (recovered from the arithmetic, see DESIGN.md) is
    /// 2→1, 3→1, 3→2, 4→3, 1→4 with vertex ids 1..=4 (we use 0..=3 with
    /// the same numbering shifted by −1).
    fn figure1_graph() -> DynamicGraph {
        DynamicGraph::from_edges([(1, 0), (2, 0), (2, 1), (3, 2), (0, 3)])
    }

    fn figure1_state() -> PprState {
        // α = 0.5, ε = 0.1, source = vertex "1" (our id 0).
        let cfg = PprConfig::new(0, 0.5, 0.1);
        let mut st = PprState::new(cfg);
        st.ensure_len(4);
        let p = [0.5, 0.25, 0.1875, 0.0625];
        let r = [0.0625, 0.0, 0.0, 0.0625];
        for v in 0..4u32 {
            st.set_p(v, p[v as usize]);
            st.set_r(v, r[v as usize]);
        }
        st
    }

    #[test]
    fn figure1_initial_state_satisfies_invariant() {
        let g = figure1_graph();
        let st = figure1_state();
        assert!(max_invariant_violation(&g, &st) < 1e-12);
    }

    #[test]
    fn figure1_insert_matches_paper() {
        // Figure 1(b): inserting e1 = v1→v2 (our 0→1) moves R(v1) from
        // 0.0625 to 0.15625 (the figure prints 0.1562).
        let mut g = figure1_graph();
        let mut st = figure1_state();
        let c = Counters::new();
        assert!(apply_update(&mut g, &mut st, EdgeUpdate::insert(0, 1), &c));
        assert!((st.r(0) - 0.15625).abs() < 1e-12);
        // Only u's residual changes; estimates are untouched.
        assert_eq!(st.p(0), 0.5);
        assert_eq!(st.r(1), 0.0);
        assert!(max_invariant_violation(&g, &st) < 1e-12);
        assert_eq!(c.snapshot().restore_ops, 1);
    }

    #[test]
    fn figure2_batch_matches_paper() {
        // Figure 2(b): inserting e1 = v1→v2 and e2 = v4→v1 moves R(v1) to
        // 0.1562 and R(v4) to 0.2187 (paper's rounding of 0.21875).
        let mut g = figure1_graph();
        let mut st = figure1_state();
        let c = Counters::new();
        assert!(apply_update(&mut g, &mut st, EdgeUpdate::insert(0, 1), &c));
        assert!(apply_update(&mut g, &mut st, EdgeUpdate::insert(3, 0), &c));
        assert!((st.r(0) - 0.15625).abs() < 1e-12);
        assert!((st.r(3) - 0.21875).abs() < 1e-12);
        assert!(max_invariant_violation(&g, &st) < 1e-12);
    }

    #[test]
    fn insert_then_delete_restores_residual() {
        let mut g = figure1_graph();
        let mut st = figure1_state();
        let c = Counters::new();
        let r0 = st.r(0);
        apply_update(&mut g, &mut st, EdgeUpdate::insert(0, 1), &c);
        apply_update(&mut g, &mut st, EdgeUpdate::delete(0, 1), &c);
        assert!((st.r(0) - r0).abs() < 1e-12);
        assert!(max_invariant_violation(&g, &st) < 1e-12);
    }

    #[test]
    fn deleting_last_out_edge() {
        // Vertex 0 (the source) has the single out-edge 0→3; removing it
        // leaves dout(0)=0 and the invariant P(0) + α·R(0) = α.
        let mut g = figure1_graph();
        let mut st = figure1_state();
        let c = Counters::new();
        assert!(apply_update(&mut g, &mut st, EdgeUpdate::delete(0, 3), &c));
        assert_eq!(g.out_degree(0), 0);
        let cfg = *st.config();
        assert!(
            (st.p(0) + cfg.alpha * st.r(0) - cfg.alpha).abs() < 1e-12,
            "empty-sum invariant must hold"
        );
        assert!(max_invariant_violation(&g, &st) < 1e-12);
    }

    #[test]
    fn noop_updates_leave_state_alone() {
        let mut g = figure1_graph();
        let mut st = figure1_state();
        let c = Counters::new();
        let before = st.residuals();
        // Duplicate insert and missing delete must not touch the state.
        assert!(!apply_update(&mut g, &mut st, EdgeUpdate::insert(1, 0), &c));
        assert!(!apply_update(&mut g, &mut st, EdgeUpdate::delete(0, 1), &c));
        assert_eq!(st.residuals(), before);
        assert_eq!(c.snapshot().restore_ops, 0);
    }

    #[test]
    fn new_vertex_via_insert() {
        let mut g = figure1_graph();
        let mut st = figure1_state();
        let c = Counters::new();
        // Vertex 9 did not exist; the edge 9→0 materializes it.
        assert!(apply_update(&mut g, &mut st, EdgeUpdate::insert(9, 0), &c));
        assert_eq!(st.len(), 10);
        assert!(max_invariant_violation(&g, &st) < 1e-12);
    }

    #[test]
    fn parallel_restore_is_bit_identical_to_serial() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(44);
        let cfg = PprConfig::new(0, 0.15, 0.01);
        // One long batch with repeated sources (the order-sensitive case).
        let batch: Vec<EdgeUpdate> = (0..400)
            .map(|_| {
                let u = rng.gen_range(0..12u32);
                let v = rng.gen_range(0..12u32);
                if rng.gen_bool(0.75) {
                    EdgeUpdate::insert(u, v)
                } else {
                    EdgeUpdate::delete(u, v)
                }
            })
            .collect();

        let c = Counters::new();
        let mut g1 = DynamicGraph::new();
        let mut st1 = PprState::new(cfg);
        let mut applied_serial = 0;
        for &upd in &batch {
            if apply_update(&mut g1, &mut st1, upd, &c) {
                applied_serial += 1;
            }
        }

        let mut g2 = DynamicGraph::new();
        let mut st2 = PprState::new(cfg);
        let mut seeds = Vec::new();
        let applied_parallel =
            apply_batch_parallel_restore(&mut g2, &mut st2, &batch, &c, &mut seeds);

        assert_eq!(applied_serial, applied_parallel);
        assert_eq!(seeds.len(), applied_parallel);
        assert_eq!(g1.num_edges(), g2.num_edges());
        // Per-source order is preserved, so the floating point results are
        // bit-identical, not merely close.
        assert_eq!(st1.residuals(), st2.residuals());
        assert_eq!(st1.estimates(), st2.estimates());
        assert!(max_invariant_violation(&g2, &st2) < 1e-9);
    }

    #[test]
    fn parallel_restore_empty_batch() {
        let cfg = PprConfig::new(0, 0.15, 0.01);
        let c = Counters::new();
        let mut g = DynamicGraph::new();
        let mut st = PprState::new(cfg);
        let mut seeds = Vec::new();
        assert_eq!(
            apply_batch_parallel_restore(&mut g, &mut st, &[], &c, &mut seeds),
            0
        );
        assert!(seeds.is_empty());
    }

    #[test]
    fn invariant_holds_under_random_updates() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(17);
        let cfg = PprConfig::new(0, 0.15, 0.01);
        let mut st = PprState::new(cfg);
        let mut g = DynamicGraph::new();
        let c = Counters::new();
        for _ in 0..500 {
            let u = rng.gen_range(0..20u32);
            let v = rng.gen_range(0..20u32);
            let upd = if rng.gen_bool(0.7) {
                EdgeUpdate::insert(u, v)
            } else {
                EdgeUpdate::delete(u, v)
            };
            apply_update(&mut g, &mut st, upd, &c);
            g.check_consistency().unwrap();
        }
        assert!(max_invariant_violation(&g, &st) < 1e-9);
    }
}
