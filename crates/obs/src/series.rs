//! In-process metrics time-series: a fixed-capacity ring of periodic
//! snapshots of selected metric values.
//!
//! The serving layer decides *what* to sample (counter values, gauge
//! readings, windowed histogram percentiles) and *when* (its audit
//! ticker); this module owns the mechanics: a bounded ring of
//! `(timestamp, values)` rows over a fixed name list, plus windowed
//! queries — last/min/max/avg over the points in a trailing window and
//! an endpoint-delta rate for counter-shaped series. SLO burn-rate
//! evaluation and the `/series` endpoint both read through
//! [`SeriesRing::window`], so the same numbers drive health decisions
//! and dashboards.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One sampled row: every series' value at one instant.
#[derive(Clone, Debug)]
struct Sample {
    at_nanos: u64,
    values: Vec<f64>,
}

/// Fixed-capacity ring of periodic samples over a fixed set of series
/// names. Pushing past capacity drops the oldest row.
pub struct SeriesRing {
    names: Vec<&'static str>,
    cap: usize,
    samples: Mutex<VecDeque<Sample>>,
}

/// Aggregates over the points of one series inside a query window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SeriesWindow {
    /// `(at_nanos, value)` pairs, oldest first.
    pub points: Vec<(u64, f64)>,
    pub last: f64,
    pub min: f64,
    pub max: f64,
    pub avg: f64,
    /// Endpoint delta per second: `(last − first) / Δt`. Meaningful for
    /// counter-shaped series; 0 when the window holds fewer than two
    /// points or spans no time.
    pub rate_per_sec: f64,
}

impl SeriesRing {
    /// `names` fixes the column set; every pushed row must supply one
    /// value per name. `cap` bounds the number of retained rows.
    pub fn new(names: Vec<&'static str>, cap: usize) -> Self {
        SeriesRing { names, cap: cap.max(1), samples: Mutex::new(VecDeque::new()) }
    }

    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|&n| n == name)
    }

    pub fn len(&self) -> usize {
        self.samples.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Timestamp of the newest row, if any.
    pub fn latest_at_nanos(&self) -> Option<u64> {
        self.samples.lock().unwrap().back().map(|s| s.at_nanos)
    }

    /// Append one row. Panics if `values` does not match the name list
    /// — a bug in the sampler, not a runtime condition.
    pub fn push(&self, at_nanos: u64, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.names.len(),
            "series row width {} != name count {}",
            values.len(),
            self.names.len()
        );
        let mut samples = self.samples.lock().unwrap();
        if samples.len() == self.cap {
            samples.pop_front();
        }
        samples.push_back(Sample { at_nanos, values });
    }

    /// Points of `name` with `at_nanos >= newest − window_nanos`,
    /// aggregated. `None` when the name is unknown or no rows exist.
    /// `window_nanos == 0` means "everything retained".
    pub fn window(&self, name: &str, window_nanos: u64) -> Option<SeriesWindow> {
        let idx = self.index_of(name)?;
        let samples = self.samples.lock().unwrap();
        let newest = samples.back()?.at_nanos;
        let cutoff = if window_nanos == 0 { 0 } else { newest.saturating_sub(window_nanos) };
        let points: Vec<(u64, f64)> = samples
            .iter()
            .filter(|s| s.at_nanos >= cutoff)
            .map(|s| (s.at_nanos, s.values[idx]))
            .collect();
        drop(samples);
        Some(Self::aggregate(points))
    }

    /// Like [`SeriesRing::window`] but over the newest `count` rows
    /// regardless of their timestamps — the shape burn-rate windows
    /// want ("last 5 ticks"), immune to ticker jitter.
    pub fn last_n(&self, name: &str, count: usize) -> Option<SeriesWindow> {
        let idx = self.index_of(name)?;
        let samples = self.samples.lock().unwrap();
        if samples.is_empty() {
            return None;
        }
        let skip = samples.len().saturating_sub(count.max(1));
        let points: Vec<(u64, f64)> =
            samples.iter().skip(skip).map(|s| (s.at_nanos, s.values[idx])).collect();
        drop(samples);
        Some(Self::aggregate(points))
    }

    fn aggregate(points: Vec<(u64, f64)>) -> SeriesWindow {
        if points.is_empty() {
            return SeriesWindow::default();
        }
        let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0f64);
        for &(_, v) in &points {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        let (first_t, first_v) = points[0];
        let (last_t, last_v) = points[points.len() - 1];
        let dt = last_t.saturating_sub(first_t) as f64 / 1e9;
        let rate = if points.len() >= 2 && dt > 0.0 { (last_v - first_v) / dt } else { 0.0 };
        SeriesWindow {
            last: last_v,
            min,
            max,
            avg: sum / points.len() as f64,
            rate_per_sec: rate,
            points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> SeriesRing {
        SeriesRing::new(vec!["reqs", "p99"], 4)
    }

    #[test]
    fn push_and_window_aggregates() {
        let r = ring();
        assert!(r.is_empty());
        assert!(r.window("reqs", 0).is_none());
        r.push(1_000_000_000, vec![10.0, 0.5]);
        r.push(2_000_000_000, vec![30.0, 0.7]);
        r.push(3_000_000_000, vec![90.0, 0.6]);
        let w = r.window("reqs", 0).unwrap();
        assert_eq!(w.points.len(), 3);
        assert_eq!(w.last, 90.0);
        assert_eq!(w.min, 10.0);
        assert_eq!(w.max, 90.0);
        assert!((w.avg - 130.0 / 3.0).abs() < 1e-12);
        // (90 − 10) over 2 seconds.
        assert!((w.rate_per_sec - 40.0).abs() < 1e-12);
        let p = r.window("p99", 0).unwrap();
        assert_eq!(p.max, 0.7);
        assert_eq!(p.last, 0.6);
    }

    #[test]
    fn window_cutoff_trims_old_points() {
        let r = ring();
        for i in 1..=4u64 {
            r.push(i * 1_000_000_000, vec![i as f64, 0.0]);
        }
        // Window of 1.5s from newest (t=4s) keeps t=3s and t=4s.
        let w = r.window("reqs", 1_500_000_000).unwrap();
        assert_eq!(w.points.len(), 2);
        assert_eq!(w.points[0].1, 3.0);
        assert!((w.rate_per_sec - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let r = ring();
        for i in 0..6u64 {
            r.push(i, vec![i as f64, 0.0]);
        }
        assert_eq!(r.len(), 4);
        let w = r.window("reqs", 0).unwrap();
        assert_eq!(w.points[0].1, 2.0);
        assert_eq!(r.latest_at_nanos(), Some(5));
    }

    #[test]
    fn last_n_ignores_timestamps() {
        let r = ring();
        r.push(0, vec![1.0, 0.0]);
        r.push(1, vec![2.0, 0.0]);
        r.push(2, vec![4.0, 0.0]);
        let w = r.last_n("reqs", 2).unwrap();
        assert_eq!(w.points.len(), 2);
        assert_eq!(w.min, 2.0);
        // Asking for more rows than retained returns them all.
        assert_eq!(r.last_n("reqs", 99).unwrap().points.len(), 3);
        assert!(r.last_n("nope", 2).is_none());
    }

    #[test]
    fn unknown_name_and_width_mismatch() {
        let r = ring();
        r.push(0, vec![0.0, 0.0]);
        assert!(r.window("nope", 0).is_none());
        assert_eq!(r.index_of("p99"), Some(1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.push(1, vec![0.0]);
        }));
        assert!(result.is_err(), "short row must panic");
    }

    #[test]
    fn single_point_has_zero_rate() {
        let r = ring();
        r.push(5, vec![7.0, 0.0]);
        let w = r.window("reqs", 0).unwrap();
        assert_eq!(w.rate_per_sec, 0.0);
        assert_eq!(w.last, 7.0);
        assert_eq!(w.avg, 7.0);
    }
}
