//! One-off sizing probe: sequential vs parallel push across graph scales,
//! including a DRAM-resident graph (beyond L3). Not part of the paper's
//! figure set; used to choose `PushOpts::seq_threshold` and to document
//! the cache-residency effect in EXPERIMENTS.md.

use dppr_bench::Workload;
use dppr_core::{ParallelEngine, PushOpts, PushVariant, SeqEngine, UpdateMode};
use dppr_graph::generators::barabasi_albert;
use dppr_graph::presets::Dataset;
use dppr_graph::presets;

fn big_sim() -> Dataset {
    Dataset {
        name: "big-sim",
        edges: barabasi_albert(1_000_000, 8, 0xFEED_0042),
        undirected: true,
        default_epsilon: 1e-5,
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut cases = vec![
        ("youtube", presets::youtube_sim(), 2_000usize, 1e-6f64, 8usize),
        ("lj", presets::lj_sim(), 10_000, 1e-6, 8),
    ];
    if full {
        cases.push(("big(16M arcs)", big_sim(), 50_000, 1e-5, 4));
    }
    for (name, ds, batch, eps, slides) in cases {
        let w = Workload::prepare(ds, 3, 0.1, 10);
        let cfg = w.config(eps);
        let mut e = SeqEngine::new(cfg, UpdateMode::Batched);
        let mut d = w.driver(0.1);
        d.bootstrap(&mut e);
        let s = d.run_slides(&mut e, batch, slides);
        let seq_ms = s.mean_latency().as_secs_f64() * 1e3;
        println!("{name} seq: {seq_ms:.2}ms");
        for thresh in [4096usize, 16384, usize::MAX] {
            let mut e = ParallelEngine::new(cfg, PushVariant::OPT);
            e.set_opts(PushOpts { seq_threshold: thresh });
            let mut d = w.driver(0.1);
            d.bootstrap(&mut e);
            let s = d.run_slides(&mut e, batch, slides);
            let par_ms = s.mean_latency().as_secs_f64() * 1e3;
            println!(
                "{name} par thresh={thresh}: {par_ms:.2}ms (speedup {:.2})",
                seq_ms / par_ms
            );
        }
    }
}
