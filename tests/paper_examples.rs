//! The paper's worked examples (Figures 1–3), checked end-to-end through
//! the public facade API.
//!
//! Paper ids `v1..v4` map to our `0..3`. The figure graph (recovered from
//! the arithmetic; see DESIGN.md) is 2→1, 3→1, 3→2, 4→3, 1→4, with
//! α = 0.5 and ε = 0.1, source `v1`.

use dppr::core::seq::{sequential_local_push, SeqPushBuffers};
use dppr::core::{
    apply_update, max_invariant_violation, Counters, ParallelEngine, PprConfig, PprState,
    PushVariant, SeqEngine, UpdateMode,
};
use dppr::core::{DynamicPprEngine, exact_ppr};
use dppr::graph::{DynamicGraph, EdgeUpdate};

fn figure_graph() -> DynamicGraph {
    DynamicGraph::from_edges([(1, 0), (2, 0), (2, 1), (3, 2), (0, 3)])
}

fn figure_state() -> PprState {
    let cfg = PprConfig::new(0, 0.5, 0.1);
    let mut st = PprState::new(cfg);
    st.ensure_len(4);
    for (v, (p, r)) in [(0.5, 0.0625), (0.25, 0.0), (0.1875, 0.0), (0.0625, 0.0625)]
        .into_iter()
        .enumerate()
    {
        st.set_p(v as u32, p);
        st.set_r(v as u32, r);
    }
    st
}

#[test]
fn figure1_sequential_single_update() {
    let mut g = figure_graph();
    let mut st = figure_state();
    let c = Counters::new();
    assert!(apply_update(&mut g, &mut st, EdgeUpdate::insert(0, 1), &c));
    assert!((st.r(0) - 0.15625).abs() < 1e-12, "Figure 1(b)");
    let mut bufs = SeqPushBuffers::new();
    sequential_local_push(&g, &st, &[0], &c, &mut bufs);
    // Figure 1(d).
    assert!((st.p(0) - 0.578125).abs() < 1e-12);
    assert!((st.r(1) - 0.078125).abs() < 1e-12);
    assert!((st.r(2) - 0.0390625).abs() < 1e-12);
    assert!(max_invariant_violation(&g, &st) < 1e-12);
}

#[test]
fn figure2_parallel_batch_update() {
    // Drive the same batch through the public ParallelEngine (vanilla
    // variant reproduces the figure's stale-snapshot trace exactly).
    // The engine starts from the empty graph, so first bring it to the
    // figure's initial state by replaying the base edges and pushing.
    let cfg = PprConfig::new(0, 0.5, 0.1);
    let mut engine = ParallelEngine::new(cfg, PushVariant::VANILLA);
    let mut g = DynamicGraph::new();
    let base: Vec<EdgeUpdate> = [(1, 0), (2, 0), (2, 1), (3, 2), (0, 3)]
        .into_iter()
        .map(|(u, v)| EdgeUpdate::insert(u, v))
        .collect();
    engine.apply_batch(&mut g, &base);
    // The figure's initial state is one ε-approximation of this graph;
    // ours may differ in residual placement but both satisfy Eq. 2 and
    // ε-accuracy. Now the batch of Figure 2:
    let batch = vec![EdgeUpdate::insert(0, 1), EdgeUpdate::insert(3, 0)];
    engine.apply_batch(&mut g, &batch);
    assert!(max_invariant_violation(&g, engine.state()) < 1e-12);
    let truth = exact_ppr(&g, 0, 0.5, 1e-14);
    for v in 0..4u32 {
        assert!(
            (engine.estimate(v) - truth[v as usize]).abs() <= 0.1 + 1e-12,
            "vertex {v}"
        );
    }
}

#[test]
fn figure3_parallel_loss_account() {
    // Both pushes start from R(v1)=1; the parallel (vanilla) push costs 5
    // operations, the sequential 4 — the extra push on v3 is the paper's
    // parallel loss.
    let g = figure_graph();
    let cfg = PprConfig::new(0, 0.5, 0.1);

    let c_seq = Counters::new();
    let st = PprState::new(cfg);
    let mut stq = st;
    stq.ensure_len(4);
    stq.set_p(0, 0.0);
    stq.set_r(0, 1.0);
    let mut bufs = SeqPushBuffers::new();
    sequential_local_push(&g, &stq, &[0], &c_seq, &mut bufs);
    assert_eq!(c_seq.snapshot().pushes, 4);

    let c_par = Counters::new();
    let mut stp = PprState::new(cfg);
    stp.ensure_len(4);
    stp.set_p(0, 0.0);
    stp.set_r(0, 1.0);
    let mut pbufs = dppr::core::par::ParPushBuffers::new();
    dppr::core::par::parallel_local_push(
        &g,
        &stp,
        PushVariant::VANILLA,
        &[0],
        &c_par,
        &mut pbufs,
    );
    assert_eq!(c_par.snapshot().pushes, 5);

    // Both converge to ε-equivalent states.
    for v in 0..4u32 {
        assert!((stp.p(v) - stq.p(v)).abs() <= 0.2 + 1e-12);
    }
}

#[test]
fn example1_and_2_prose_claims() {
    // Example 1: after the single insert, only v1 is pushed and
    // convergence is reached with no further activation.
    let mut g = figure_graph();
    let mut st = figure_state();
    let c = Counters::new();
    apply_update(&mut g, &mut st, EdgeUpdate::insert(0, 1), &c);
    assert!(st.r(0) > 0.1, "v1 must be activated");
    assert!(st.r(1) <= 0.1 && st.r(2) <= 0.1 && st.r(3) <= 0.1);

    // Example 2: with the batch {e1, e2}, both v1 and v4 are activated and
    // the parallel push converges in one iteration.
    let mut g = figure_graph();
    let mut st = figure_state();
    apply_update(&mut g, &mut st, EdgeUpdate::insert(0, 1), &c);
    apply_update(&mut g, &mut st, EdgeUpdate::insert(3, 0), &c);
    assert!(st.r(0) > 0.1 && st.r(3) > 0.1);
    let c2 = Counters::new();
    let mut bufs = dppr::core::par::ParPushBuffers::new();
    dppr::core::par::parallel_local_push(
        &g,
        &st,
        PushVariant::VANILLA,
        &[0, 3],
        &c2,
        &mut bufs,
    );
    assert_eq!(c2.snapshot().iterations, 1);
}

#[test]
fn cpu_base_equals_cpu_seq_on_single_updates() {
    // With |ΔE| = 1 the batched and per-update engines are the same
    // algorithm; check they produce identical states on a shared script.
    let cfg = PprConfig::new(0, 0.5, 0.1);
    let script = [
        EdgeUpdate::insert(0, 1),
        EdgeUpdate::insert(1, 2),
        EdgeUpdate::insert(2, 0),
        EdgeUpdate::delete(0, 1),
        EdgeUpdate::insert(0, 3),
        EdgeUpdate::insert(3, 1),
    ];
    let mut base = SeqEngine::new(cfg, UpdateMode::PerUpdate);
    let mut seq = SeqEngine::new(cfg, UpdateMode::Batched);
    let mut g1 = DynamicGraph::new();
    let mut g2 = DynamicGraph::new();
    for upd in script {
        base.apply_batch(&mut g1, &[upd]);
        seq.apply_batch(&mut g2, &[upd]);
    }
    assert_eq!(base.estimates(), seq.estimates());
}
