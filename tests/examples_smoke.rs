//! Smoke test: the shipped examples must actually run, not just compile.
//!
//! `cargo test` builds every example target of this package before the
//! test binaries execute, so the executables are guaranteed to exist
//! under `target/<profile>/examples/` next to this test's own binary.
//! The end-to-end examples are run on tiny graphs (`DPPR_EXAMPLE_N`)
//! so the smoke test stays fast; `quickstart` additionally self-checks
//! the ε-guarantee with an `assert!` before exiting, and `serving` spins
//! up the real HTTP server on an ephemeral port.

use std::path::PathBuf;
use std::process::Command;

/// `target/<profile>/examples/<name>`, resolved relative to the test
/// executable (`target/<profile>/deps/examples_smoke-<hash>`).
fn example_path(name: &str) -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop(); // <hash> file -> deps/
    dir.pop(); // deps/ -> <profile>/
    let path = dir.join("examples").join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    assert!(
        path.exists(),
        "example binary missing at {path:?}; examples should be built by `cargo test`"
    );
    path
}

fn run_tiny(name: &str) -> String {
    let out = Command::new(example_path(name))
        .env("DPPR_EXAMPLE_N", "120")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn example {name}: {e}"));
    assert!(
        out.status.success(),
        "example {name} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8(out.stdout).expect("example output is UTF-8")
}

#[test]
fn quickstart_runs_and_verifies_epsilon_guarantee() {
    let stdout = run_tiny("quickstart");
    // The example prints the measured max error and asserts it is <= ε
    // itself; just confirm it got to the end.
    assert!(
        stdout.contains("max |estimate"),
        "unexpected quickstart output:\n{stdout}"
    );
    assert!(
        stdout.contains("top-5 by PPR"),
        "unexpected quickstart output:\n{stdout}"
    );
}

#[test]
fn serving_example_answers_live_queries() {
    let stdout = run_tiny("serving");
    assert!(
        stdout.contains("serving sessions"),
        "unexpected serving output:\n{stdout}"
    );
    assert!(
        stdout.contains("\"ranking\""),
        "no top-k response in serving output:\n{stdout}"
    );
    assert!(
        stdout.contains("opened  ->"),
        "mid-stream session open missing in serving output:\n{stdout}"
    );
    assert!(
        stdout.contains("updates/s under load"),
        "no final report in serving output:\n{stdout}"
    );
}

#[test]
fn who_to_follow_runs_and_recommends() {
    let stdout = run_tiny("who_to_follow");
    assert!(
        stdout.contains("tracking PPR for hub users"),
        "unexpected who_to_follow output:\n{stdout}"
    );
    // The actual recommendation lines look like "  follow   123?  ppr 0.1".
    assert!(
        stdout.contains("  follow ") && stdout.contains("?  ppr "),
        "no recommendation lines in who_to_follow output:\n{stdout}"
    );
}
