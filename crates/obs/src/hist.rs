//! Fixed-bucket log-scale histograms.
//!
//! Every histogram in the process shares ONE bucket layout, computed
//! once: integral upper bounds growing by `b += max(b/5, 1)` (a factor
//! of ~1.2 past 5), starting at 0 and covering the full `u64` range
//! with ~240 buckets plus a final catch-all. Sharing the layout is what
//! makes [`HistSnapshot::merge`] exact: merging per-shard histograms is
//! bucket-wise addition, so the merged quantiles equal those of a
//! single histogram fed the union of the samples.
//!
//! Hot paths record into a plain-`u64` [`LocalHistogram`] owned by the
//! recording thread and flush it into the shared atomic [`Histogram`]
//! once per event-loop tick; cold paths (one slide every few ms) call
//! [`Histogram::record`] directly.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;

/// Inclusive upper bounds of every bucket except the last; a value `v`
/// lands in the first bucket with `bound >= v`. The final bucket (index
/// `bounds().len()`) catches everything above the largest bound.
pub fn bounds() -> &'static [u64] {
    static BOUNDS: OnceLock<Vec<u64>> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut b = Vec::with_capacity(256);
        let mut v: u64 = 0;
        loop {
            b.push(v);
            let step = (v / 5).max(1);
            match v.checked_add(step) {
                Some(next) => v = next,
                None => break,
            }
        }
        b
    })
}

/// Total bucket count: one per bound plus the overflow bucket.
pub fn num_buckets() -> usize {
    bounds().len() + 1
}

/// Index of the bucket a value lands in.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    // First bound >= value. bounds() is strictly increasing, so this is
    // exact; values above the last bound go to the overflow bucket.
    bounds().partition_point(|&b| b < value)
}

/// A mergeable atomic histogram. Cheap enough to `record` directly on
/// cold paths; hot paths should batch through [`LocalHistogram`].
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        let buckets = (0..num_buckets()).map(|_| AtomicU64::new(0)).collect();
        Histogram { buckets, count: AtomicU64::new(0), sum: AtomicU64::new(0) }
    }

    /// Record one observation (shared-atomic path).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
    }

    /// Fold a thread-local batch in. One pass over the non-zero buckets;
    /// called once per event-loop tick, not per observation.
    pub fn merge_local(&self, local: &LocalHistogram) {
        if local.count == 0 {
            return;
        }
        for (i, &n) in local.buckets.iter().enumerate() {
            if n != 0 {
                self.buckets[i].fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(local.count, Relaxed);
        self.sum.fetch_add(local.sum, Relaxed);
    }

    /// Consistent-enough snapshot for rendering (individual loads are
    /// relaxed; scrapes tolerate a tick of skew).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
        }
    }
}

/// Unsynchronized accumulator owned by one thread. Record is two array
/// ops and two adds — no atomics, no sharing.
#[derive(Clone)]
pub struct LocalHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    pub fn new() -> Self {
        LocalHistogram { buckets: vec![0; num_buckets()], count: 0, sum: 0 }
    }

    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        // Wrapping, to match the shared histogram's atomic fetch_add.
        self.sum = self.sum.wrapping_add(value);
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Drain into the shared histogram and reset to empty.
    pub fn flush(&mut self, into: &Histogram) {
        into.merge_local(self);
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
    }
}

/// Point-in-time histogram contents; supports exact merge and quantile
/// extraction (exact at bucket resolution — a quantile reports the
/// upper bound of the bucket holding that rank, so any value recorded
/// exactly on a bound is reported exactly).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistSnapshot {
    /// Bucket-wise sum. Exact because every histogram shares `bounds()`.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; other.buckets.len()];
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Value at quantile `q` in [0, 1]: the upper bound of the bucket
    /// containing rank `ceil(q * count)` (the overflow bucket reports
    /// `u64::MAX`). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bounds().get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Mean of the recorded values (exact — the sum is exact even
    /// though individual values are bucketed).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(upper_bound, cumulative_count)` for every bucket up to and
    /// including the last non-empty one, ready for Prometheus `le`
    /// rendering (the caller appends the `+Inf` line from `count`).
    /// `None` upper bound marks the overflow bucket.
    pub fn cumulative_nonempty(&self) -> Vec<(Option<u64>, u64)> {
        let last = match self.buckets.iter().rposition(|&n| n != 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(last + 1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate().take(last + 1) {
            cum += n;
            out.push((bounds().get(i).copied(), cum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing_and_cover_u64() {
        let b = bounds();
        assert_eq!(b[0], 0);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        // ~1.2 growth keeps the table small but the error under 20%.
        assert!(b.len() < 300, "bucket table unexpectedly large: {}", b.len());
        // Everything up to the last bound is indexable; beyond it, the
        // overflow bucket catches the rest.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(*b.last().unwrap()), b.len() - 1);
        assert_eq!(bucket_index(u64::MAX), b.len());
    }

    #[test]
    fn exact_boundary_roundtrips_through_quantile() {
        for &v in &[0u64, 1, 6, 1000, 1_000_000] {
            // Snap v to a bound first so the report is exact.
            let bound = bounds()[bucket_index(v)];
            let h = Histogram::new();
            h.record(bound);
            assert_eq!(h.snapshot().quantile(0.5), bound);
        }
    }

    #[test]
    fn local_flush_matches_direct_recording() {
        let direct = Histogram::new();
        let batched = Histogram::new();
        let mut local = LocalHistogram::new();
        for v in [0u64, 3, 17, 17, 250, 99_999, u64::MAX] {
            direct.record(v);
            local.record(v);
        }
        local.flush(&batched);
        assert_eq!(direct.snapshot(), batched.snapshot());
        assert!(local.is_empty());
        // Flushing an empty local is a no-op.
        local.flush(&batched);
        assert_eq!(direct.snapshot(), batched.snapshot());
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Bucket resolution is ~20%, so p50 of 1..=1000 lies in [500, 600].
        let p50 = s.p50();
        assert!((500..=600).contains(&p50), "p50 = {p50}");
        let p99 = s.p99();
        assert!((990..=1188).contains(&p99), "p99 = {p99}");
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
    }
}
