//! Run configuration shared by every engine.

use dppr_graph::VertexId;

/// The PPR problem parameters of the paper's Table 2: the source vertex
/// `s`, teleport probability `α`, and error threshold `ε`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PprConfig {
    /// The personalization vertex `s`.
    pub source: VertexId,
    /// Teleport probability `α ∈ (0, 1)`; the paper's default is 0.15.
    pub alpha: f64,
    /// Error threshold `ε > 0`; estimates are ε-accurate at convergence.
    pub epsilon: f64,
}

impl PprConfig {
    /// Creates a validated configuration.
    ///
    /// # Panics
    /// If `alpha ∉ (0, 1)` or `epsilon ≤ 0`.
    pub fn new(source: VertexId, alpha: f64, epsilon: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "teleport probability must lie in (0,1), got {alpha}"
        );
        assert!(epsilon > 0.0, "error threshold must be positive, got {epsilon}");
        PprConfig { source, alpha, epsilon }
    }

    /// The paper's default parameters (`α = 0.15`) for a given source and ε.
    pub fn with_default_alpha(source: VertexId, epsilon: f64) -> Self {
        Self::new(source, 0.15, epsilon)
    }
}

/// Which of the two push phases of Algorithms 2/3 is running: positive
/// residuals are drained first, then negative ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Drain residuals `> ε`.
    Pos,
    /// Drain residuals `< −ε`.
    Neg,
}

impl Phase {
    /// The paper's `pushCond(r, phase)` (Algorithm 3, lines 8–10).
    #[inline]
    pub fn active(self, r: f64, epsilon: f64) -> bool {
        match self {
            Phase::Pos => r > epsilon,
            Phase::Neg => r < -epsilon,
        }
    }

    /// `PushCondLocal` (Algorithm 4, lines 1–5): true iff the residual
    /// *crossed* the activation threshold with this update — the heart of
    /// local duplicate detection. Exactly one updater observes the crossing
    /// because residuals move monotonically within a phase.
    #[inline]
    pub fn crossed(self, r_pre: f64, r_cur: f64, epsilon: f64) -> bool {
        !self.active(r_pre, epsilon) && self.active(r_cur, epsilon)
    }

    /// Both phases, in execution order.
    pub const BOTH: [Phase; 2] = [Phase::Pos, Phase::Neg];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let c = PprConfig::new(3, 0.15, 1e-6);
        assert_eq!(c.source, 3);
        assert_eq!(PprConfig::with_default_alpha(0, 1e-3).alpha, 0.15);
    }

    #[test]
    #[should_panic(expected = "teleport probability")]
    fn rejects_alpha_one() {
        PprConfig::new(0, 1.0, 1e-6);
    }

    #[test]
    #[should_panic(expected = "error threshold")]
    fn rejects_zero_epsilon() {
        PprConfig::new(0, 0.5, 0.0);
    }

    #[test]
    fn push_condition() {
        let e = 0.1;
        assert!(Phase::Pos.active(0.2, e));
        assert!(!Phase::Pos.active(0.1, e)); // strict inequality
        assert!(!Phase::Pos.active(-0.2, e));
        assert!(Phase::Neg.active(-0.2, e));
        assert!(!Phase::Neg.active(-0.1, e));
        assert!(!Phase::Neg.active(0.2, e));
    }

    #[test]
    fn crossing_detection() {
        let e = 0.1;
        // Only the increment that moves r across +ε reports a crossing.
        assert!(Phase::Pos.crossed(0.05, 0.15, e));
        assert!(!Phase::Pos.crossed(0.15, 0.25, e));
        assert!(!Phase::Pos.crossed(0.01, 0.05, e));
        assert!(Phase::Neg.crossed(-0.05, -0.15, e));
        assert!(!Phase::Neg.crossed(-0.15, -0.2, e));
    }
}
