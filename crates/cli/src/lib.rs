//! `dppr` — command-line front end for the workspace.
//!
//! ```text
//! dppr generate --model ba --n 10000 --m 5 --seed 1 --out edges.txt
//! dppr info     --preset lj-sim            # or --graph edges.txt
//! dppr run      --preset small-sim --engine cpu-mt --batch 1000 --slides 20
//! dppr query    --graph edges.txt --source 0 --epsilon 1e-5 --top 10
//! dppr serve    --preset small-sim --port 7171 --threads 4 --num-sources 8
//! dppr exact    --graph edges.txt --source 0 --top 10
//! ```
//!
//! Every subcommand prints TSV so output can be piped into standard
//! tooling. See `dppr help` for the full option list.

pub mod args;
pub mod commands;

use args::{err, Args, CliError};

/// Dispatches a parsed command line; returns the text to print.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "generate" => commands::generate(args),
        "info" => commands::info(args),
        "run" => commands::run(args),
        "query" => commands::query(args),
        "serve" => commands::serve(args),
        "exact" => commands::exact(args),
        "help" | "" => Ok(HELP.to_string()),
        other => Err(err(format!("unknown command {other:?}; try `dppr help`"))),
    }
}

/// Usage text.
pub const HELP: &str = "\
dppr — dynamic Personalized PageRank toolkit

USAGE: dppr <command> [options]

COMMANDS
  generate   Write a synthetic edge list.
             --model ba|er|rmat  --n N  --m M  --seed S  --out FILE
             (ba: m = edges per new vertex; er/rmat: m = edge count;
              rmat: n is rounded up to a power of two)
  info       Graph statistics.
             --preset NAME | --graph FILE [--undirected]
  run        Stream a sliding window through an engine.
             --preset NAME | --graph FILE [--undirected]
             --engine cpu-base|cpu-seq|cpu-mt|ligra|mc  [--variant opt|eager|dupdetect|vanilla]
             --batch K  --slides N  --alpha A  --epsilon E
             [--source V | --top-bucket B]  [--seed S]  [--threads T]
             [--walks-per-vertex W]  [--counters]
  query      Maintain PPR over the full graph, then answer queries.
             --graph FILE|--preset NAME [--undirected]
             --source V  --alpha A  --epsilon E  [--top K] [--threshold D]
             [--save-state FILE]
  serve      Serve top-k/score/threshold/compare queries over HTTP while
             the update stream slides in the background.
             --graph FILE|--preset NAME [--undirected]
             [--port P (7171; 0 = ephemeral)]  [--threads T]
             [--sources 0,3,9 | --num-sources K]  [--cache-capacity N]
             [--session-capacity N]  [--alpha A] [--epsilon E] [--batch K]
             [--max-slides N]  [--slide-pause-ms MS]  [--run-secs S]
             [--seed S]  [--read-timeout-ms MS (10000)]
             [--write-timeout-ms MS (10000)]  [--shed-after-ms MS (1000;
             0 = never shed)]  [--conn-backlog N (256 per shard)]
             [--write-shards N (1; partition sessions across N
             independent write loops by stable source hash)]
             [--data-dir DIR (durable WAL + checkpoints; restart recovers
             checkpoint + log tail)]  [--fsync batch|off|interval:MS
             (interval:50)]  [--checkpoint-every N (64 slides)]
             [--segment-kb KB (8192)]
             [--trace-sample N (trace every Nth request/slide; 0 = off)]
             [--trace-capacity N (1024 ring-buffered events)]
             [--audit-sample N (recompute ground truth for N live
             sessions per tick and report dppr_audit_* error metrics;
             0 = off)]  [--audit-interval-ms MS (500; audit/series/SLO
             observer tick)]
             [--slo-p99-ms MS (latency SLO target; breach sheds load)]
             [--slo-availability F (e.g. 0.999 served fraction)]
             [--slo-topk-overlap F (e.g. 0.9 audited top-10 overlap)]
             Connections are HTTP/1.1 keep-alive, served by poll(2)
             event-loop shards; overload answers 503 + Retry-After.
             SIGTERM/SIGINT drain connections, flush the WAL, write a
             final checkpoint, and dump the trace ring to stderr.
             Endpoints: /topk?source=S&k=K  /score?source=S&v=V
             /threshold?source=S&delta=D  /compare?source=S&a=A&b=B
             /sessions  /session/open?source=S  /session/close?source=S
             /stats  /healthz (incl. SLO burn rates)
             /metrics (Prometheus text)
             /trace[?limit=N&kind=request|slide] (sampled JSON lines)
             /series[?name=N&window=S] (in-process metrics time-series)
             /shutdown
  exact      Ground-truth PPR via Gauss–Jacobi.
             --graph FILE|--preset NAME [--undirected] --source V [--alpha A] [--top K]
  help       This text.
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_paths() {
        let a = Args::parse(["help"]).unwrap();
        assert!(dispatch(&a).unwrap().contains("USAGE"));
        let a = Args::parse(Vec::<String>::new()).unwrap();
        assert!(dispatch(&a).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let a = Args::parse(["frobnicate"]).unwrap();
        assert!(dispatch(&a).is_err());
    }
}
