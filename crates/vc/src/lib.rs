//! A Ligra-style vertex-centric engine, and dynamic PPR implemented on it.
//!
//! The paper's `Ligra` baseline (§5.1) runs the batched parallel push on
//! top of Shun & Blelloch's Ligra abstraction [42] — `vertexSubset`,
//! `edgeMap`, `vertexMap` with automatic sparse (push) / dense (pull)
//! switching — to quantify what the *application-specific* optimizations
//! (eager propagation, local duplicate detection) buy over a general-purpose
//! graph framework, which "lack[s] application knowledge to perform specific
//! optimizations".
//!
//! [`subset`] and [`edge_map`] implement the abstraction; [`ppr`] ports the
//! vanilla batched push onto it ([`LigraEngine`]), deliberately using only
//! what the abstraction offers: stale residual snapshots (bulk-synchronous
//! semantics cannot propagate eagerly) and CAS-claim frontier dedup (the
//! generic `edgeMap` contract).

pub mod edge_map;
pub mod ppr;
pub mod subset;

pub use edge_map::{edge_map, vertex_map, Direction, EdgeMapOptions};
pub use ppr::LigraEngine;
pub use subset::VertexSubset;
