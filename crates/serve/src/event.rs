//! The readiness-polled event loop: one shard per serving thread.
//!
//! Each shard owns a set of client connections outright — no locking, no
//! handoff after accept — and multiplexes them with `poll(2)` (the
//! vendored [`minipoll`] wrapper). The acceptor thread distributes fresh
//! connections round-robin over shards through a **bounded** queue; a
//! shard that cannot keep up pushes back at the acceptor, which sheds
//! load with `503 Retry-After` instead of queueing without limit.
//!
//! A shard iteration:
//!
//! 1. build the poll set — the wake pipe, plus every connection with its
//!    current interest (read while awaiting requests, write while
//!    responses are pending);
//! 2. poll with a timeout capped by the nearest connection deadline (and
//!    a 100 ms ceiling so shutdown is always noticed);
//! 3. adopt newly accepted connections from the queue;
//! 4. drive readable/writable connections through their state machines,
//!    routing every complete request via the shard's [`Router`];
//! 5. reap connections that hit their read or write deadline.
//!
//! The wake pipe (a `UnixStream` pair; self-pipe trick) is written by the
//! acceptor after every enqueue and by `shutdown`, so a shard blocked in
//! `poll` reacts immediately rather than at the timeout ceiling.

use crate::conn::{Close, Conn, Step};
use crate::http::{Request, Response};
use crate::json::error_body;
use minipoll::{poll, PollFd, READABLE};
use std::io::{self, Read as _, Write as _};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Ceiling on a shard's poll timeout: the latency bound on noticing a
/// shutdown flag or a missed wake.
const POLL_CEILING: Duration = Duration::from_millis(100);

/// Requests answered per connection per event-loop tick. Without this
/// cap one chatty pipelining client monopolizes its shard: the drive
/// loop would answer its entire buffered pipeline before any other
/// connection gets a turn. A capped connection is marked deferred and
/// re-driven next iteration (with a zero poll timeout, so the leftover
/// requests wait one round-robin lap, not a poll ceiling).
const REQUESTS_PER_TICK: u32 = 8;

/// Routes one parsed request to a response. Implemented by the server
/// (which closes over the registry, cache, epoch reader, and control
/// channel); the event loop itself is protocol-only.
pub trait Router: Send + 'static {
    /// Answer `req`. Infallible at this layer: routing errors are encoded
    /// as 4xx/5xx responses.
    fn route(&mut self, req: &Request) -> Response;

    /// Stage timing for one answered request (parse → route → serialize,
    /// in nanoseconds), called right after the response is enqueued. The
    /// default does nothing; the server's router accumulates these into
    /// thread-local histograms.
    fn observe_http(
        &mut self,
        _req: &Request,
        _status: u16,
        _parse_ns: u64,
        _route_ns: u64,
        _write_ns: u64,
    ) {
    }

    /// Called once per event-loop iteration with this shard's live
    /// connection count and the depth of its accept queue — the flush
    /// point for thread-local telemetry.
    fn on_tick(&mut self, _live_conns: usize, _queue_depth: u64) {}
}

/// Timeouts and bounds one shard enforces.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Close a connection with no complete request for this long.
    pub read_timeout: Duration,
    /// Close a connection whose peer stops draining responses for this
    /// long.
    pub write_timeout: Duration,
}

/// Live connection-layer counters, shared by every shard of an instance
/// (all monotone; incremented straight from the loops so `/stats` sees
/// them without waiting for a join).
#[derive(Debug, Default)]
pub struct ConnCounters {
    /// Connections adopted by a shard.
    pub accepted: AtomicU64,
    /// Connections fully closed.
    pub closed: AtomicU64,
    /// HTTP requests answered (any endpoint, any status).
    pub requests: AtomicU64,
    /// 400s sent for malformed/oversized request heads.
    pub bad_requests: AtomicU64,
    /// Connections reaped by the read/idle deadline.
    pub read_timeouts: AtomicU64,
    /// Connections reaped by the write-stall deadline.
    pub write_timeouts: AtomicU64,
}

/// The accept-side of a shard: the bounded hand-off queue plus the wake
/// pipe. Cloneable so the acceptor can own one per shard while the
/// server handle keeps the join side.
pub struct ShardGate {
    queue: SyncSender<TcpStream>,
    wake_tx: UnixStream,
    /// Connections sitting in `queue`, not yet adopted by the shard —
    /// the queue-depth gauge behind `/stats` and `/metrics`.
    depth: Arc<AtomicU64>,
}

impl ShardGate {
    /// Tries to hand a fresh connection to this shard. On success the
    /// shard is woken; `Err` returns the stream so the caller can try
    /// another shard or shed.
    pub fn try_adopt(&self, conn: TcpStream) -> Result<(), TcpStream> {
        match self.queue.try_send(conn) {
            Ok(()) => {
                self.depth.fetch_add(1, Relaxed);
                self.wake();
                Ok(())
            }
            Err(TrySendError::Full(c)) | Err(TrySendError::Disconnected(c)) => Err(c),
        }
    }

    /// Wakes the shard out of `poll` (idempotent; a full pipe already
    /// guarantees a pending wake).
    pub fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1]);
    }

    /// A second gate to the same shard.
    pub fn try_clone(&self) -> io::Result<ShardGate> {
        Ok(ShardGate {
            queue: self.queue.clone(),
            wake_tx: self.wake_tx.try_clone()?,
            depth: self.depth.clone(),
        })
    }
}

/// A handle to one spawned shard: its gate plus the join handle.
pub struct ShardHandle {
    gate: ShardGate,
    join: Option<JoinHandle<()>>,
}

impl ShardHandle {
    /// A gate for the acceptor.
    pub fn gate(&self) -> io::Result<ShardGate> {
        self.gate.try_clone()
    }

    /// Wakes the shard out of `poll`.
    pub fn wake(&self) {
        self.gate.wake();
    }

    /// Joins the shard thread (the instance shutdown flag must already be
    /// set, or this blocks until it is).
    pub fn join(mut self) {
        self.gate.wake();
        if let Some(h) = self.join.take() {
            let _ = h.join();
        }
    }
}

/// Spawns one shard event loop. `shutdown` is the instance-wide flag; the
/// shard exits (flushing best-effort) once it is set.
pub fn spawn_shard<R: Router>(
    name: String,
    cfg: ShardConfig,
    queue_rx: Receiver<TcpStream>,
    queue_tx: SyncSender<TcpStream>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ConnCounters>,
    mut router: R,
) -> io::Result<ShardHandle> {
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    let depth = Arc::new(AtomicU64::new(0));
    let loop_depth = depth.clone();
    let join = std::thread::Builder::new().name(name).spawn(move || {
        let mut conns: Vec<Conn> = Vec::new();
        loop {
            if shutdown.load(SeqCst) {
                drain_on_shutdown(&mut conns);
                return;
            }

            // 1. poll set: wake pipe first, then every connection.
            let mut fds = Vec::with_capacity(conns.len() + 1);
            fds.push(PollFd::new(wake_rx.as_raw_fd(), READABLE));
            for c in &conns {
                fds.push(PollFd::new(c.stream().as_raw_fd(), c.interest()));
            }

            // 2. timeout: nearest deadline, bounded by the ceiling. A
            // deferred connection (per-tick request budget hit with input
            // still buffered) forces an immediate pass: its pending
            // requests generate no readiness edge, so waiting would
            // strand them for a full poll ceiling.
            let now = Instant::now();
            let mut timeout = POLL_CEILING;
            for c in &conns {
                if c.deferred {
                    timeout = Duration::ZERO;
                    break;
                }
                let dl = c.deadline(cfg.read_timeout, cfg.write_timeout);
                timeout = timeout.min(dl.saturating_duration_since(now));
            }
            if poll(&mut fds, Some(timeout)).is_err() {
                // EINVAL/ENOMEM-class failures: back off instead of
                // spinning; the loop state itself is still consistent.
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            let now = Instant::now();

            // 3. drain the wake pipe and adopt queued connections. The
            // queue is drained every iteration regardless of the wake
            // byte, so a lost wake only costs one poll ceiling.
            if fds[0].readable() {
                let mut sink = [0u8; 64];
                while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
            }
            while let Ok(stream) = queue_rx.try_recv() {
                loop_depth.fetch_sub(1, Relaxed);
                if let Ok(c) = Conn::new(stream, now) {
                    stats.accepted.fetch_add(1, Relaxed);
                    conns.push(c);
                }
            }

            // 4./5. drive ready connections; reap dead or expired ones.
            // fds[1..] lines up with conns before this iteration's
            // adoptions (new conns get their first edge next round).
            let mut closed = Vec::new();
            for fi in 1..fds.len() {
                let step = drive(&mut conns[fi - 1], &fds[fi], now, &stats, &mut router);
                if let Step::Close(why) = step {
                    match why {
                        Close::ReadTimeout => stats.read_timeouts.fetch_add(1, Relaxed),
                        Close::WriteTimeout => stats.write_timeouts.fetch_add(1, Relaxed),
                        _ => 0,
                    };
                    closed.push(fi - 1);
                }
            }
            // Also reap connections that saw no readiness but expired.
            for (ci, c) in conns.iter().enumerate() {
                if closed.contains(&ci) {
                    continue;
                }
                if let Some(why) = c.expired(now, cfg.read_timeout, cfg.write_timeout) {
                    match why {
                        Close::ReadTimeout => stats.read_timeouts.fetch_add(1, Relaxed),
                        Close::WriteTimeout => stats.write_timeouts.fetch_add(1, Relaxed),
                        _ => 0,
                    };
                    closed.push(ci);
                }
            }
            closed.sort_unstable_by(|a, b| b.cmp(a));
            closed.dedup();
            for ci in closed {
                conns.swap_remove(ci);
                stats.closed.fetch_add(1, Relaxed);
            }

            // 6. flush thread-local telemetry once per iteration.
            router.on_tick(conns.len(), loop_depth.load(Relaxed));
        }
    })?;
    Ok(ShardHandle {
        gate: ShardGate { queue: queue_tx, wake_tx, depth },
        join: Some(join),
    })
}

/// Drives one connection through a readiness edge: read, parse+route as
/// many requests as are buffered, flush.
fn drive<R: Router>(
    c: &mut Conn,
    fd: &PollFd,
    now: Instant,
    stats: &ConnCounters,
    router: &mut R,
) -> Step {
    if fd.hup_or_err() && !fd.readable() {
        // Dead socket with nothing left to read (a closed peer that still
        // has bytes for us stays readable and is drained below).
        return Step::Close(Close::Done);
    }
    if fd.readable() {
        if let Step::Close(why) = c.fill(now) {
            return Step::Close(why);
        }
    }
    // Parse and answer buffered requests (pipelining), independent of
    // which edge woke us — requests may already sit in the buffer. At
    // most `REQUESTS_PER_TICK` per connection per pass: a deep pipeline
    // yields to the shard's other connections and resumes next tick.
    c.deferred = false;
    let mut budget = REQUESTS_PER_TICK;
    loop {
        if budget == 0 {
            // More input may be buffered; come back after other
            // connections have had their turn.
            c.deferred = c.wants_requests();
            break;
        }
        let t0 = Instant::now();
        match c.next_request(now) {
            Ok(Some((req, keep_alive))) => {
                budget -= 1;
                let t1 = Instant::now();
                stats.requests.fetch_add(1, Relaxed);
                let resp = router.route(&req);
                let t2 = Instant::now();
                c.enqueue(&resp, keep_alive);
                let t3 = Instant::now();
                router.observe_http(
                    &req,
                    resp.status,
                    (t1 - t0).as_nanos() as u64,
                    (t2 - t1).as_nanos() as u64,
                    (t3 - t2).as_nanos() as u64,
                );
            }
            Ok(None) => break,
            Err(msg) => {
                stats.bad_requests.fetch_add(1, Relaxed);
                c.enqueue(&Response::new(400, error_body(&msg)), false);
                break;
            }
        }
    }
    if c.has_pending_output() || fd.writable() {
        if let Step::Close(why) = c.flush(now) {
            return Step::Close(why);
        }
    }
    Step::Continue
}

/// Best-effort flush of pending responses at shutdown: one short poll
/// round per connection's remaining output, then drop everything.
fn drain_on_shutdown(conns: &mut Vec<Conn>) {
    let deadline = Instant::now() + Duration::from_millis(200);
    while Instant::now() < deadline {
        let mut pending = false;
        let now = Instant::now();
        for c in conns.iter_mut() {
            if c.has_pending_output() {
                match c.flush(now) {
                    Step::Continue => pending = c.has_pending_output() || pending,
                    Step::Close(_) => {}
                }
            }
        }
        if !pending {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    conns.clear();
}
