//! The 2×2 optimization matrix of the parallel push (paper Table 3).

/// Which optimizations the parallel push runs with.
///
/// | variant                      | eager propagation | local dup. detection |
/// |------------------------------|-------------------|----------------------|
/// | [`PushVariant::OPT`]         | ✓                 | ✓                    |
/// | [`PushVariant::EAGER`]       | ✓                 | ✗ (atomic-flag dedup)|
/// | [`PushVariant::DUP_DETECT`]  | ✗                 | ✓                    |
/// | [`PushVariant::VANILLA`]     | ✗                 | ✗                    |
///
/// Without eager propagation the push follows Algorithm 3's session order
/// (self-update, then neighbor-propagation on the stale residual snapshot);
/// with it, Algorithm 4's (neighbor-propagation reading fresh residuals,
/// then a consistent self-update). Without local duplicate detection the
/// next frontier is deduplicated through a shared per-vertex atomic claim
/// flag (the synchronization `UniqueEnqueue` cost the paper attributes to
/// the unoptimized version); with it, the threshold-crossing test on the
/// atomic add's before/after values decides enqueueing with no shared
/// structure at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PushVariant {
    /// Run Algorithm 4's eager session order.
    pub eager: bool,
    /// Use local duplicate detection for frontier generation.
    pub local_dup: bool,
}

impl PushVariant {
    /// Fully optimized (the paper's `Opt`).
    pub const OPT: PushVariant = PushVariant { eager: true, local_dup: true };
    /// Eager propagation only.
    pub const EAGER: PushVariant = PushVariant { eager: true, local_dup: false };
    /// Local duplicate detection only.
    pub const DUP_DETECT: PushVariant = PushVariant { eager: false, local_dup: true };
    /// Neither optimization (Algorithm 3 as written).
    pub const VANILLA: PushVariant = PushVariant { eager: false, local_dup: false };

    /// All four variants in the paper's Table 3 order.
    pub const ALL: [PushVariant; 4] =
        [Self::OPT, Self::EAGER, Self::DUP_DETECT, Self::VANILLA];

    /// The paper's name for this variant.
    pub fn name(self) -> &'static str {
        match (self.eager, self.local_dup) {
            (true, true) => "Opt",
            (true, false) => "Eager",
            (false, true) => "DupDetect",
            (false, false) => "Vanilla",
        }
    }
}

impl std::fmt::Display for PushVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_table_3() {
        assert_eq!(PushVariant::OPT.name(), "Opt");
        assert_eq!(PushVariant::EAGER.name(), "Eager");
        assert_eq!(PushVariant::DUP_DETECT.name(), "DupDetect");
        assert_eq!(PushVariant::VANILLA.name(), "Vanilla");
    }

    #[test]
    fn all_lists_four_distinct() {
        let mut set = std::collections::HashSet::new();
        for v in PushVariant::ALL {
            assert!(set.insert(v));
        }
        assert_eq!(set.len(), 4);
    }
}
