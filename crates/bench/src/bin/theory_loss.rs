//! Lemma 4 — parallel loss, measured.
//!
//! Runs the lock-step parallel and sequential pushes from a unit residual
//! at a hub vertex and reports, per graph: iterations, push counts, the
//! push-count ratio (the loss), and the fraction of iterations where the
//! parallel residual mass dominates the sequential one (Lemma 4 predicts
//! 100% as ε→0).
//!
//! Usage: `theory_loss [--full]`

use dppr_bench::ExperimentScale;
use dppr_core::par::parallel_push_lockstep;
use dppr_core::seq::sequential_push_lockstep;
use dppr_core::{PprConfig, PprState};
use dppr_graph::generators::{barabasi_albert, undirected_to_directed};
use dppr_graph::DynamicGraph;

fn main() {
    let scale = ExperimentScale::from_args();
    let sizes: &[(u32, usize)] = match scale {
        ExperimentScale::Quick => &[(500, 3), (1_000, 4), (2_000, 5)],
        ExperimentScale::Full => &[(2_000, 4), (10_000, 5), (50_000, 7)],
    };
    println!("# Lemma 4: parallel loss on BA graphs (unit residual at top hub)");
    println!(
        "n\tm_per_node\teps\tpushes_par\tpushes_seq\tloss_ratio\titers_par\titers_seq\tl1_dominance_frac"
    );
    for &(n, m) in sizes {
        for eps_exp in [4, 6, 8] {
            let eps = 10f64.powi(-eps_exp);
            let g = DynamicGraph::from_edges(undirected_to_directed(&barabasi_albert(
                n,
                m,
                n as u64,
            )));
            let hub = g.top_out_degree_vertices(1)[0];
            let cfg = PprConfig::new(hub, 0.15, eps);
            let mk = || {
                let mut st = PprState::new(cfg);
                st.ensure_len(g.num_vertices());
                st.set_p(hub, 0.0);
                st.set_r(hub, 1.0);
                st
            };
            let stp = mk();
            let tp = parallel_push_lockstep(&g, &stp, &[hub]);
            let stq = mk();
            let tq = sequential_push_lockstep(&g, &stq, &[hub]);
            let common = tp.l1_after_iteration.len().min(tq.l1_after_iteration.len());
            let dominated = tp
                .l1_after_iteration
                .iter()
                .zip(&tq.l1_after_iteration)
                .filter(|(p, q)| p >= q)
                .count();
            println!(
                "{n}\t{m}\t{eps:.0e}\t{}\t{}\t{:.4}\t{}\t{}\t{:.3}",
                tp.pushes,
                tq.pushes,
                tp.pushes as f64 / tq.pushes.max(1) as f64,
                tp.frontier_sizes.len(),
                tq.frontier_sizes.len(),
                if common == 0 { 1.0 } else { dominated as f64 / common as f64 },
            );
        }
    }
}
