//! Integration coverage for the extension layers: ε-aware queries,
//! multi-source maintenance, and the parallel batch-restore prelude —
//! all driven through the public facade over a live stream.

use dppr::core::queries::{above_threshold, compare, top_k};
use dppr::core::multi::MultiSourcePpr;
use dppr::core::{
    exact_ppr, DynamicPprEngine, ParallelEngine, PprConfig, PushVariant,
};
use dppr::graph::generators::{barabasi_albert, undirected_to_directed};
use dppr::graph::{DynamicGraph, GraphStream};
use dppr::stream::StreamDriver;

fn stream() -> GraphStream {
    let edges = undirected_to_directed(&barabasi_albert(500, 4, 9));
    GraphStream::directed(edges).permuted(2)
}

#[test]
fn query_verdicts_are_sound_against_ground_truth() {
    let eps = 1e-4;
    let cfg = PprConfig::new(0, 0.15, eps);
    let mut engine = ParallelEngine::new(cfg, PushVariant::OPT);
    let mut driver = StreamDriver::new(stream(), 0.1);
    driver.bootstrap(&mut engine);
    driver.run_slides(&mut engine, 100, 10);
    let truth = exact_ppr(driver.graph(), 0, 0.15, 1e-13);

    // Every interval must contain the truth.
    let ans = top_k(engine.state(), 20);
    for b in &ans.ranking {
        let t = truth.get(b.vertex as usize).copied().unwrap_or(0.0);
        assert!(b.lo <= t + 1e-12 && t <= b.hi + 1e-12, "vertex {}", b.vertex);
    }
    // If the set is certain, it must equal the exact top-k set.
    if ans.set_is_certain {
        let mut exact_top: Vec<(u32, f64)> = truth
            .iter()
            .enumerate()
            .map(|(v, &t)| (v as u32, t))
            .collect();
        exact_top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let want: std::collections::HashSet<u32> =
            exact_top.iter().take(20).map(|&(v, _)| v).collect();
        let got: std::collections::HashSet<u32> =
            ans.ranking.iter().map(|b| b.vertex).collect();
        assert_eq!(want, got);
    }

    // Threshold certainty: every "certain" vertex truly qualifies, and no
    // qualifying vertex is missed by certain ∪ possible.
    let delta = 0.002;
    let t_ans = above_threshold(engine.state(), delta);
    for b in &t_ans.certain {
        assert!(truth[b.vertex as usize] >= delta - 1e-12);
    }
    let covered: std::collections::HashSet<u32> = t_ans
        .certain
        .iter()
        .chain(&t_ans.possible)
        .map(|b| b.vertex)
        .collect();
    for (v, &t) in truth.iter().enumerate() {
        if t >= delta {
            assert!(covered.contains(&(v as u32)), "missed qualifying vertex {v}");
        }
    }

    // Decidable comparisons must agree with the truth.
    for a in 0..20u32 {
        for b in 0..20u32 {
            if let Some(ord) = compare(engine.state(), a, b) {
                let want = truth[a as usize]
                    .partial_cmp(&truth[b as usize])
                    .unwrap();
                if ord != std::cmp::Ordering::Equal {
                    assert_eq!(ord, want, "compare({a},{b})");
                }
            }
        }
    }
}

#[test]
fn multi_source_tracks_each_hub_through_slides() {
    let sources = [0u32, 1, 2];
    let mut multi = MultiSourcePpr::new(&sources, 0.15, 1e-4, PushVariant::OPT);
    let mut g = DynamicGraph::new();
    let mut window = dppr::graph::SlidingWindow::new(stream(), 0.1);
    multi.apply_batch(&mut g, &window.initial_updates());
    for _ in 0..8 {
        let Some(batch) = window.slide(100) else { break };
        multi.apply_batch(&mut g, &batch);
    }
    for (i, &s) in sources.iter().enumerate() {
        let truth = exact_ppr(&g, s, 0.15, 1e-13);
        for (v, &t) in truth.iter().enumerate() {
            assert!(
                (multi.estimate(i, v as u32) - t).abs() <= 1e-4 + 1e-10,
                "source {s} vertex {v}"
            );
        }
        // Top-k through the bundle agrees with a fresh ranking.
        let top = multi.top_k(i, 5);
        assert_eq!(top.len(), 5);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}

#[test]
fn parallel_restore_engine_matches_serial_restore_engine() {
    let cfg = PprConfig::new(0, 0.15, 1e-4);
    let run = |parallel_restore: bool| {
        let mut engine = ParallelEngine::new(cfg, PushVariant::OPT);
        engine.set_parallel_restore(parallel_restore);
        let mut driver = StreamDriver::new(stream(), 0.1);
        driver.bootstrap(&mut engine);
        driver.run_slides(&mut engine, 150, 8);
        (engine.estimates(), driver.graph().num_edges())
    };
    let (serial, edges_a) = run(false);
    let (parallel, edges_b) = run(true);
    assert_eq!(edges_a, edges_b);
    for v in 0..serial.len().max(parallel.len()) {
        let a = serial.get(v).copied().unwrap_or(0.0);
        let b = parallel.get(v).copied().unwrap_or(0.0);
        // Restore is bit-identical; only the pushes' float ordering may
        // differ, so 2ε covers it with margin.
        assert!((a - b).abs() <= 2e-4 + 1e-10, "vertex {v}");
    }
}
