//! The immutable per-session query snapshot.

use dppr_core::queries::{
    above_threshold_scores, bounded_score, compare_scores, top_k_scores, BoundedScore,
    ThresholdAnswer, TopKAnswer,
};
use dppr_core::PprState;
use dppr_graph::VertexId;

/// One source's frozen estimate vector, tagged with the publication epoch.
///
/// A snapshot is built by the write loop *after* a batch has converged, so
/// its estimates are ε-accurate for the graph as of that epoch, and it is
/// never mutated afterwards — readers answer every query kind from it
/// without further coordination.
#[derive(Debug, Clone)]
pub struct QuerySnapshot {
    source: VertexId,
    epoch: u64,
    alpha: f64,
    epsilon: f64,
    estimates: Vec<f64>,
}

impl QuerySnapshot {
    /// A snapshot from raw parts (tests / custom pipelines).
    pub fn new(
        source: VertexId,
        epoch: u64,
        alpha: f64,
        epsilon: f64,
        estimates: Vec<f64>,
    ) -> Self {
        QuerySnapshot { source, epoch, alpha, epsilon, estimates }
    }

    /// Freezes the current estimates of a maintained state. Called by the
    /// write loop at the publication point (post-batch, converged).
    pub fn from_state(state: &PprState, epoch: u64) -> Self {
        let cfg = state.config();
        QuerySnapshot {
            source: cfg.source,
            epoch,
            alpha: cfg.alpha,
            epsilon: cfg.epsilon,
            estimates: state.estimates(),
        }
    }

    /// The source vertex this snapshot answers for.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// The epoch at which this snapshot was published.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The teleport probability of the maintained vector.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The accuracy guarantee: every estimate is within ε of the true PPR
    /// value for the epoch's graph.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// Whether the snapshot covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }

    /// The frozen estimate vector.
    pub fn estimates(&self) -> &[f64] {
        &self.estimates
    }

    /// Sum of all estimates (consistency checks in the stress suite).
    pub fn total_mass(&self) -> f64 {
        self.estimates.iter().sum()
    }

    /// The ε-interval around one vertex's estimate.
    pub fn score(&self, v: VertexId) -> BoundedScore {
        bounded_score(&self.estimates, self.epsilon, v)
    }

    /// Top-`k` with interval bounds and a set-certainty verdict.
    pub fn top_k(&self, k: usize) -> TopKAnswer {
        top_k_scores(&self.estimates, self.epsilon, k)
    }

    /// Vertices whose true value may reach `delta`, split by certainty.
    pub fn above_threshold(&self, delta: f64) -> ThresholdAnswer {
        above_threshold_scores(&self.estimates, self.epsilon, delta)
    }

    /// ε-aware comparison of two vertices.
    pub fn compare(&self, a: VertexId, b: VertexId) -> Option<std::cmp::Ordering> {
        compare_scores(&self.estimates, self.epsilon, a, b)
    }

    /// Order-insensitive fingerprint of the snapshot's exact contents
    /// (f64 bit patterns mixed position-dependently). The stress suite
    /// compares reader-side fingerprints against writer-side ones to prove
    /// no torn state is ever observed.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = self.source as u64 ^ (self.epoch.rotate_left(32));
        for (i, &p) in self.estimates.iter().enumerate() {
            let mut z = p.to_bits() ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            h = h.wrapping_add(z ^ (z >> 31));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dppr_core::{queries, DynamicPprEngine, ParallelEngine, PprConfig, PushVariant};
    use dppr_graph::generators::erdos_renyi;
    use dppr_graph::{DynamicGraph, EdgeUpdate};

    fn converged_engine() -> (DynamicGraph, ParallelEngine) {
        let mut g = DynamicGraph::new();
        let mut e = ParallelEngine::new(PprConfig::new(0, 0.2, 1e-3), PushVariant::OPT);
        let batch: Vec<EdgeUpdate> = erdos_renyi(50, 500, 9)
            .into_iter()
            .map(|(u, v)| EdgeUpdate::insert(u, v))
            .collect();
        e.apply_batch(&mut g, &batch);
        (g, e)
    }

    #[test]
    fn snapshot_answers_match_live_state_queries() {
        let (_, e) = converged_engine();
        let snap = QuerySnapshot::from_state(e.state(), 42);
        assert_eq!(snap.epoch(), 42);
        assert_eq!(snap.source(), 0);
        assert_eq!(snap.len(), e.estimates().len());
        assert_eq!(snap.top_k(5), queries::top_k(e.state(), 5));
        assert_eq!(
            snap.above_threshold(0.01),
            queries::above_threshold(e.state(), 0.01)
        );
        assert_eq!(snap.compare(0, 1), queries::compare(e.state(), 0, 1));
        let b = snap.score(3);
        assert_eq!(b.estimate, e.estimate(3));
        assert!(b.lo <= b.estimate && b.estimate <= b.hi);
        // Out-of-range vertex reads as an unmaterialized zero.
        assert_eq!(snap.score(10_000).estimate, 0.0);
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let a = QuerySnapshot::new(0, 1, 0.15, 1e-3, vec![0.1, 0.2, 0.3]);
        let same = QuerySnapshot::new(0, 1, 0.15, 1e-3, vec![0.1, 0.2, 0.3]);
        let reordered = QuerySnapshot::new(0, 1, 0.15, 1e-3, vec![0.2, 0.1, 0.3]);
        let other_epoch = QuerySnapshot::new(0, 2, 0.15, 1e-3, vec![0.1, 0.2, 0.3]);
        assert_eq!(a.fingerprint(), same.fingerprint());
        assert_ne!(a.fingerprint(), reordered.fingerprint());
        assert_ne!(a.fingerprint(), other_epoch.fingerprint());
    }
}
