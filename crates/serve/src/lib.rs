//! `dppr-serve` — concurrent query serving over maintained PPR vectors.
//!
//! The paper's premise is that PPR must stay fresh *while* a high-rate
//! update stream mutates the graph; the systems it aims to serve (HubPPR,
//! distributed exact PPR, and the online-serving framing of Zhang et al.
//! and Lin) all answer per-source queries continuously. This crate is that
//! read path:
//!
//! * [`epoch`] — single-writer / many-reader snapshot publication with an
//!   atomic pointer swap and epoch-based deferred reclamation. Readers are
//!   lock-free and can never observe a torn state; the writer is never
//!   blocked by readers.
//! * [`snapshot`] — [`QuerySnapshot`], an immutable `(estimates, ε,
//!   epoch)` frozen at the publication point, answering top-k / score /
//!   threshold / compare via the slice-based query kernels in
//!   `dppr_core::queries`.
//! * [`registry`] — the [`SessionRegistry`]: many tracked sources over one
//!   `MultiSourcePpr`, with open/close and LRU eviction past a capacity
//!   budget.
//! * [`cache`] — the [`QueryCache`], keyed by `(source, query, params)`
//!   and implicitly invalidated by every epoch bump.
//! * [`http`] / [`json`] — a hand-rolled HTTP/1.1 + JSON layer (the build
//!   environment is offline: no tokio, no serde, no hyper). Requests are
//!   parsed incrementally ([`http::try_parse`]) with percent-decoded
//!   query params; responses carry explicit keep-alive semantics.
//! * [`conn`] — the per-connection state machine: non-blocking reads into
//!   a bounded head buffer, pipelined request extraction, buffered
//!   writes, and read/write deadline accounting.
//! * [`event`] — the readiness-polled serving loop: one `poll(2)` shard
//!   per thread (via the vendored `minipoll` wrapper), each owning its
//!   connections outright, fed by a bounded accept queue with
//!   `503 Retry-After` load shedding when full.
//! * [`server`] — the assembled instance: write loop sliding
//!   `StreamDriver` batches in the background, epoch publication after
//!   every batch, acceptor + event-loop shards answering queries
//!   concurrently (keep-alive clients cost one poll registration, not one
//!   thread), and query-side shedding while a slide lags the stream.
//! * [`durability`] — checkpoints + the `dppr-wal` write-ahead log: every
//!   slide batch is logged before its epoch publishes, a background
//!   checkpointer snapshots session states, and a restarted instance
//!   recovers as *newest checkpoint + WAL-tail replay* (torn final
//!   records are truncated away).
//! * [`signals`] — SIGTERM/SIGINT → graceful shutdown: drain in-flight
//!   connections, flush the WAL, write a final checkpoint.
//! * [`audit`] — the observer thread: online accuracy audits against a
//!   sequential ground-truth solve (`dppr_audit_*`), the in-process
//!   metrics time-series behind `GET /series`, and SLO burn-rate
//!   evaluation (`dppr_slo_*`, the `/healthz` degraded reason, and the
//!   latency-breach shed flag).
//!
//! Start one with [`start`]; drive it with `dppr serve` from the CLI.

pub mod audit;
pub mod cache;
pub mod conn;
pub mod durability;
pub mod epoch;
pub mod event;
pub mod http;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod signals;
pub mod snapshot;

pub use cache::{CacheStats, QueryCache, QueryKind};
pub use conn::{Close, Conn, Step};
pub use durability::{DurabilityConfig, RecoveryReport};
pub use dppr_wal::FsyncPolicy;
pub use epoch::{EpochDomain, Reader, SnapshotCell};
pub use event::{ConnCounters, Router, ShardConfig};
pub use http::{Request, Response};
pub use metrics::ServerMetrics;
pub use registry::{OpenOutcome, SessionEntry, SessionRegistry};
pub use server::{
    boot_probe, boot_probe_shards, pick_top_degree_sources, shard_data_dir, shard_of, start,
    BootProbe, ServeConfig, ServeReport, ServerHandle, ServerStats,
};
pub use snapshot::QuerySnapshot;
