//! On-disk segment format and the torn-tail-tolerant scanner.
//!
//! A segment file is an 8-byte magic (`DPPRWAL1`) followed by frames:
//!
//! ```text
//! [u32 len][u32 crc32(payload)][payload bytes]      (little-endian)
//! ```
//!
//! The scanner walks frames until the first one that is short, oversized,
//! fails its CRC, or fails to decode, and reports the byte offset of the
//! valid prefix. Recovery truncates to that offset — a torn final frame
//! (the only kind of damage a crashed append can produce) costs exactly
//! the un-acknowledged tail, never earlier records.

use std::fs;
use std::io::{self, Read};
use std::path::Path;

use dppr_core::crc32;

use crate::record::WalRecord;

/// First 8 bytes of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"DPPRWAL1";

/// Frame header size: u32 length + u32 CRC.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single frame payload. Far above anything the write
/// loop produces; its real job is to stop a corrupted length field from
/// driving a multi-gigabyte allocation during the scan.
pub const MAX_FRAME_PAYLOAD: u32 = 64 << 20;

/// Wraps one encoded record payload in a frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() as u64 <= MAX_FRAME_PAYLOAD as u64, "oversized wal payload");
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What a segment scan found.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Every record in the valid prefix, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (magic + whole valid frames).
    /// `0` means even the magic is missing or wrong.
    pub valid_len: u64,
    /// True iff the file is exactly the valid prefix — no torn tail,
    /// no corruption, no trailing garbage.
    pub clean: bool,
}

/// Scans a segment file, stopping at the first invalid byte.
///
/// Never errors on corruption — corruption is a *result* (`clean:
/// false`), not a failure. I/O errors (file unreadable) still surface.
pub fn scan(path: &Path) -> io::Result<ScanOutcome> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    Ok(scan_bytes(&bytes))
}

fn scan_bytes(bytes: &[u8]) -> ScanOutcome {
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return ScanOutcome { records: Vec::new(), valid_len: 0, clean: false };
    }
    let mut at = SEGMENT_MAGIC.len();
    let mut records = Vec::new();
    loop {
        if at == bytes.len() {
            return ScanOutcome { records, valid_len: at as u64, clean: true };
        }
        let rest = &bytes[at..];
        if rest.len() < FRAME_HEADER {
            break; // torn mid-header
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len > MAX_FRAME_PAYLOAD {
            break; // corrupted length field
        }
        let len = len as usize;
        if rest.len() - FRAME_HEADER < len {
            break; // torn mid-payload
        }
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        if crc32(payload) != stored_crc {
            break; // bit rot or torn overwrite
        }
        match WalRecord::decode(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => break, // CRC-clean but structurally invalid
        }
        at += FRAME_HEADER + len;
    }
    ScanOutcome { records, valid_len: at as u64, clean: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dppr_graph::EdgeUpdate;

    fn rec(epoch: u64) -> WalRecord {
        WalRecord::Batch {
            epoch,
            window_start: epoch,
            window_end: epoch + 4,
            updates: vec![EdgeUpdate::insert(epoch as u32, 9)],
        }
    }

    fn segment_bytes(records: &[WalRecord]) -> Vec<u8> {
        let mut out = SEGMENT_MAGIC.to_vec();
        for r in records {
            out.extend_from_slice(&frame(&r.encode()));
        }
        out
    }

    #[test]
    fn clean_segment_scans_fully() {
        let recs = vec![rec(1), rec(2), WalRecord::Checkpoint { epoch: 2 }];
        let bytes = segment_bytes(&recs);
        let out = scan_bytes(&bytes);
        assert!(out.clean);
        assert_eq!(out.valid_len, bytes.len() as u64);
        assert_eq!(out.records, recs);
    }

    #[test]
    fn empty_segment_is_clean() {
        let out = scan_bytes(SEGMENT_MAGIC);
        assert!(out.clean);
        assert_eq!(out.valid_len, 8);
        assert!(out.records.is_empty());
    }

    #[test]
    fn bad_magic_yields_nothing() {
        let out = scan_bytes(b"NOTAWAL0\x01\x02\x03");
        assert!(!out.clean);
        assert_eq!(out.valid_len, 0);
        let out = scan_bytes(b"DPPR"); // shorter than the magic
        assert_eq!(out.valid_len, 0);
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let full = segment_bytes(&[rec(1), rec(2)]);
        let one = segment_bytes(&[rec(1)]);
        // Cut at every byte inside the second frame.
        for cut in one.len() + 1..full.len() {
            let out = scan_bytes(&full[..cut]);
            assert!(!out.clean, "cut at {cut} should not be clean");
            assert_eq!(out.valid_len, one.len() as u64, "cut at {cut}");
            assert_eq!(out.records, vec![rec(1)], "cut at {cut}");
        }
    }

    #[test]
    fn crc_flip_stops_scan_at_frame_boundary() {
        let one = segment_bytes(&[rec(1)]);
        let mut bytes = segment_bytes(&[rec(1), rec(2), rec(3)]);
        bytes[one.len() + FRAME_HEADER] ^= 0x40; // first payload byte of rec(2)
        let out = scan_bytes(&bytes);
        assert!(!out.clean);
        assert_eq!(out.valid_len, one.len() as u64);
        assert_eq!(out.records, vec![rec(1)]);
    }

    #[test]
    fn insane_length_field_is_corruption_not_alloc() {
        let mut bytes = segment_bytes(&[rec(1)]);
        let tail_at = bytes.len();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 4]);
        let out = scan_bytes(&bytes);
        assert!(!out.clean);
        assert_eq!(out.valid_len, tail_at as u64);
    }

    #[test]
    fn crc_valid_but_undecodable_frame_is_corruption() {
        let mut bytes = segment_bytes(&[rec(1)]);
        let tail_at = bytes.len();
        bytes.extend_from_slice(&frame(&[99, 1, 2, 3])); // unknown tag, valid CRC
        let out = scan_bytes(&bytes);
        assert!(!out.clean);
        assert_eq!(out.valid_len, tail_at as u64);
        assert_eq!(out.records, vec![rec(1)]);
    }

    #[test]
    fn scan_reads_from_disk() {
        let dir = std::env::temp_dir().join(format!("dppr-wal-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.seg");
        std::fs::write(&path, segment_bytes(&[rec(5)])).unwrap();
        let out = scan(&path).unwrap();
        assert!(out.clean);
        assert_eq!(out.records, vec![rec(5)]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
