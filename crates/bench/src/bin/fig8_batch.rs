//! Figure 8 — effect of the batch size, expressed as a fraction of the
//! sliding-window size (the paper sweeps 1%, 0.1%, 0.01%).
//!
//! Paper's shape: smaller batches mean lower latency for everyone (less
//! work per slide), but the parallel engines retain their speedup over
//! CPU-Seq at every batch size.
//!
//! Usage: `fig8_batch [--full]`

use dppr_bench::{ms, run_engine, EngineKind, ExperimentScale, Workload};
use dppr_core::PushVariant;
use std::time::Duration;

fn main() {
    let scale = ExperimentScale::from_args();
    let (budget, walks_per_vertex) = match scale {
        ExperimentScale::Quick => (Duration::from_secs(2), 6),
        ExperimentScale::Full => (Duration::from_secs(15), 2),
    };
    let fractions = [0.01f64, 0.001, 0.0001]; // 1%, 0.1%, 0.01% of window
    let engines = [
        EngineKind::CpuSeq,
        EngineKind::CpuMt(PushVariant::OPT),
        EngineKind::MonteCarlo { walks_per_vertex },
        EngineKind::Ligra,
    ];
    println!("# Figure 8: effect of batch size (fraction of window)");
    println!("dataset\tfraction\tbatch\tengine\tslides\tmean_ms\tupdates_per_sec");
    for ds in scale.datasets() {
        let eps = ds.default_epsilon;
        let workload = Workload::prepare(ds, 5, 0.1, 1_000);
        for &frac in &fractions {
            let batch = ((workload.window_len as f64 * frac) as usize).max(1);
            for kind in engines {
                let summary =
                    run_engine(kind, &workload, eps, batch, scale.slides(), budget);
                if summary.slides == 0 {
                    continue;
                }
                println!(
                    "{}\t{:.4}\t{}\t{}\t{}\t{:.3}\t{:.0}",
                    workload.name,
                    frac,
                    batch,
                    kind.label(),
                    summary.slides,
                    ms(summary.mean_latency()),
                    summary.throughput(),
                );
            }
        }
    }
}
