//! `serve_load` — closed-loop load generator for the serving subsystem.
//!
//! Starts a `dppr-serve` instance in-process on an ephemeral port over a
//! generated stream, then hammers it with mixed query traffic (top-k 40%,
//! score 40%, threshold 10%, compare 10%) from several closed-loop client
//! threads **while the write loop slides the update window** — the
//! serving-layer analogue of the paper's "edges consumed per second under
//! load" methodology.
//!
//! Two client modes, run back-to-back against identical fresh servers:
//!
//! * `keepalive` — each client holds ONE HTTP/1.1 connection for the whole
//!   run (reconnecting only on error), the way real query clients behave;
//! * `close` — a fresh TCP connection per request (`Connection: close`),
//!   the behaviour the old blocking front end forced on everyone.
//!
//! `--mode keepalive|close|both` picks (default `both`). Reports
//! queries/sec, p50/p99 latency, cache hit rate, the update throughput
//! sustained under load per mode, the keep-alive/close p50 ratio, and the
//! server's OWN pipeline-stage percentiles (from its `/metrics`
//! histograms — no client-side measurement skew), as JSON (default
//! `BENCH_8.json` at the repo root; `--pr N` / `--out PATH` relabel it,
//! `--full` scales the run up). The final `/metrics` scrape of the first
//! mode is written next to the JSON as `BENCH_<pr>_METRICS.prom`, and the
//! run fails if any always-live family scraped empty.
//!
//! `--audit-overhead` instead compares keep-alive runs with the online
//! accuracy auditor + SLO engine on vs off, asserting the observer costs
//! less than 5% of throughput and tail latency.

use dppr_bench::ExperimentScale;
use dppr_graph::generators::{rmat_stream, RmatParams};
use dppr_graph::GraphStream;
use dppr_obs::HistSnapshot;
use dppr_serve::{start, ServeConfig, ServeReport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead as _, BufReader, Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const MIX: &str = "topk 0.4, score 0.4, threshold 0.1, compare 0.1";

#[derive(Clone)]
struct LoadSpec {
    clients: usize,
    duration: Duration,
    scale: u32,
    edges: usize,
    sessions: usize,
    threads: usize,
    batch: usize,
    write_shards: usize,
    /// Online accuracy auditing + SLO targets on (`--audit-overhead`
    /// compares a run with this set against one without).
    audit: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    KeepAlive,
    Close,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::KeepAlive => "keepalive",
            Mode::Close => "close",
        }
    }
}

fn gen_target(rng: &mut SmallRng, sources: &[u32], n: usize) -> String {
    let source = sources[rng.gen_range(0..sources.len())];
    let roll: f64 = rng.gen_range(0.0..1.0);
    if roll < 0.4 {
        format!("/topk?source={source}&k={}", rng.gen_range(5..25usize))
    } else if roll < 0.8 {
        format!("/score?source={source}&v={}", rng.gen_range(0..n as u32))
    } else if roll < 0.9 {
        // A handful of distinct deltas so the cache sees repeats.
        format!("/threshold?source={source}&delta=0.00{}", rng.gen_range(1..5u32))
    } else {
        format!(
            "/compare?source={source}&a={}&b={}",
            rng.gen_range(0..n as u32),
            rng.gen_range(0..n as u32)
        )
    }
}

/// One request per connection: the old front end's cost model.
fn close_query(addr: SocketAddr, target: &str) -> Result<(), String> {
    fetch_body(addr, target).map(|_| ())
}

/// `Connection: close` GET returning the response body — also how the
/// bench scrapes `/metrics` for the exported `.prom` file.
fn fetch_body(addr: SocketAddr, target: &str) -> Result<String, String> {
    let mut conn = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    write!(conn, "GET {target} HTTP/1.1\r\nHost: dppr\r\nConnection: close\r\n\r\n")
        .map_err(|e| e.to_string())?;
    let mut resp = String::new();
    conn.read_to_string(&mut resp).map_err(|e| e.to_string())?;
    if !resp.starts_with("HTTP/1.1 200") {
        return Err(format!("non-200 for {target}: {}", resp.lines().next().unwrap_or("")));
    }
    match resp.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(format!("no header/body split for {target}")),
    }
}

/// Reads one `Content-Length`-framed response off a persistent (buffered)
/// connection, returning its status line.
fn read_framed_response(conn: &mut BufReader<TcpStream>) -> Result<String, String> {
    let mut status_line = String::new();
    let mut line = String::new();
    let mut len: Option<usize> = None;
    loop {
        line.clear();
        match conn.read_line(&mut line) {
            Ok(0) => return Err("EOF inside response head".into()),
            Ok(_) => {}
            Err(e) => return Err(e.to_string()),
        }
        if status_line.is_empty() {
            status_line = line.trim_end().to_string();
        } else if line == "\r\n" || line == "\n" {
            break;
        } else if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            len = Some(v.trim().parse().map_err(|_| "bad Content-Length")?);
        }
    }
    let len = len.ok_or("missing Content-Length")?;
    let mut body = vec![0u8; len];
    conn.read_exact(&mut body).map_err(|e| e.to_string())?;
    Ok(status_line)
}

/// One request over the client's persistent connection, (re)connecting as
/// needed. On error the connection is dropped so the next call redials.
fn keepalive_query(
    conn: &mut Option<BufReader<TcpStream>>,
    addr: SocketAddr,
    target: &str,
) -> Result<(), String> {
    if conn.is_none() {
        let c = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        c.set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| e.to_string())?;
        c.set_nodelay(true).map_err(|e| e.to_string())?;
        *conn = Some(BufReader::new(c));
    }
    let c = conn.as_mut().expect("connection present");
    let result = write!(c.get_mut(), "GET {target} HTTP/1.1\r\nHost: dppr\r\n\r\n")
        .map_err(|e| e.to_string())
        .and_then(|()| read_framed_response(c));
    match result {
        Ok(status) if status.starts_with("HTTP/1.1 200") => Ok(()),
        Ok(status) => {
            *conn = None; // desync-safe: never reuse after an odd answer
            Err(format!("non-200 for {target}: {status}"))
        }
        Err(e) => {
            *conn = None;
            Err(format!("{target}: {e}"))
        }
    }
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 * 1e-6 // ns → ms
}

/// Client-side numbers for one mode plus the server's own books.
struct ModeResult {
    total: u64,
    qps: f64,
    p50: f64,
    p99: f64,
    errors: u64,
    report: ServeReport,
    /// The server's own pipeline-stage histograms, snapshotted after the
    /// clients drained (name, nanosecond snapshot).
    timings: Vec<(&'static str, HistSnapshot)>,
    /// Final `/metrics` scrape, taken while the server was still up.
    metrics_prom: String,
}

/// Boots a fresh, identically-configured server and runs the full client
/// fleet against it in `mode`.
fn run_mode(mode: Mode, spec: &LoadSpec) -> ModeResult {
    let raw = rmat_stream(spec.scale, spec.edges, RmatParams::default(), 0xBEEF);
    let stream = GraphStream::directed(raw).permuted(7);
    let sources = dppr_serve::pick_top_degree_sources(&stream, 0.1, spec.sessions);
    let n = stream.vertex_bound();
    let handle = start(
        stream,
        0.1,
        &sources,
        ServeConfig {
            threads: spec.threads,
            batch: spec.batch,
            epsilon: 1e-4,
            cache_capacity: 4_096,
            // Pace the stream: a real update feed arrives at some rate
            // instead of replaying as fast as one core can push it, and an
            // unpaced writer starves the query path of CPU on small boxes.
            // `updates_per_sec` is normalized to engine time, so pacing
            // does not distort the update-throughput comparison.
            slide_pause: Duration::from_millis(2),
            write_shards: spec.write_shards,
            // Audited runs also register generous SLO targets so the
            // dppr_slo_* families appear in the exported scrape without
            // the burn-rate shed path distorting the comparison.
            audit_sample: if spec.audit { 8 } else { 0 },
            audit_interval: Duration::from_millis(500),
            slo_p99: if spec.audit { Duration::from_secs(10) } else { Duration::ZERO },
            slo_availability: if spec.audit { 0.5 } else { 0.0 },
            slo_topk_overlap: if spec.audit { 0.5 } else { 0.0 },
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr = handle.addr();
    eprintln!(
        "[{}] serving {} sessions over n={n} at {addr} ({} write shards); {} clients for {:?}",
        mode.name(),
        sources.len(),
        spec.write_shards,
        spec.clients,
        spec.duration
    );

    let clients: Vec<_> = (0..spec.clients)
        .map(|c| {
            let sources = sources.clone();
            let duration = spec.duration;
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xAB00 + c as u64);
                let mut latencies_ns: Vec<u64> = Vec::new();
                let mut errors = 0u64;
                let mut conn: Option<BufReader<TcpStream>> = None;
                let until = Instant::now() + duration;
                while Instant::now() < until {
                    let target = gen_target(&mut rng, &sources, n);
                    let t = Instant::now();
                    let outcome = match mode {
                        Mode::KeepAlive => keepalive_query(&mut conn, addr, &target),
                        Mode::Close => close_query(addr, &target),
                    };
                    match outcome {
                        Ok(()) => latencies_ns.push(t.elapsed().as_nanos() as u64),
                        Err(e) => {
                            errors += 1;
                            eprintln!("[{}] client {c}: {e}", mode.name());
                        }
                    }
                }
                (latencies_ns, errors)
            })
        })
        .collect();

    let mut latencies: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for c in clients {
        let (mut l, e) = c.join().expect("client thread");
        latencies.append(&mut l);
        errors += e;
    }
    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let qps = total as f64 / spec.duration.as_secs_f64();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    // Scrape + snapshot the server's own books while it is still up.
    let metrics_prom = fetch_body(addr, "/metrics").expect("scrape /metrics");
    let m = handle.metrics();
    let timings = vec![
        ("http_request", m.http_request.snapshot()),
        ("slide_apply", m.slide_apply.snapshot()),
        ("push_wall", m.push_wall.snapshot()),
        ("snapshot_publish", m.snapshot_publish.snapshot()),
    ];
    let report = handle.join();
    eprintln!(
        "[{}] {total} queries ({qps:.0}/s, p50 {p50:.3} ms, p99 {p99:.3} ms, {errors} errors); \
         {} slides, {:.0} updates/s under load; cache hit rate {:.3}; \
         {} conns for {} requests",
        mode.name(),
        report.slides,
        report.updates_per_sec,
        report.cache.hit_rate(),
        report.connections,
        report.http_requests,
    );
    ModeResult { total, qps, p50, p99, errors, report, timings, metrics_prom }
}

fn mode_json(r: &ModeResult) -> String {
    let timings = r
        .timings
        .iter()
        .map(|(name, s)| {
            format!(
                "\"{name}\": {{ \"count\": {}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"mean_ms\": {:.4} }}",
                s.count,
                s.p50() as f64 * 1e-6,
                s.p99() as f64 * 1e-6,
                s.mean() * 1e-6,
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n    \"write_shards\": {},\n    \"queries\": {{ \"total\": {}, \"per_sec\": {:.0}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"errors\": {} }},\n    \"http\": {{ \"connections\": {}, \"requests\": {}, \"bad_requests\": {}, \"shed\": {} }},\n    \"cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.4} }},\n    \"updates_under_load\": {{ \"slides\": {}, \"offered\": {}, \"applied\": {}, \"updates_per_sec\": {:.0}, \"stream_done\": {} }},\n    \"server_timings\": {{ {timings} }},\n    \"epoch\": {}\n  }}",
        r.report.write_shards,
        r.total,
        r.qps,
        r.p50,
        r.p99,
        r.errors,
        r.report.connections,
        r.report.http_requests,
        r.report.bad_requests,
        r.report.shed,
        r.report.cache.hits,
        r.report.cache.misses,
        r.report.cache.evictions,
        r.report.cache.hit_rate(),
        r.report.slides,
        r.report.updates_offered,
        r.report.updates_applied,
        r.report.updates_per_sec,
        r.report.stream_done,
        r.report.epoch,
    )
}

/// `--write-shards-sweep 1,4`: one fresh keep-alive-mode run per shard
/// count over the identical stream and client fleet, comparing the
/// update throughput each configuration sustains. `updates_per_sec` is
/// normalized to engine time, so on small CI boxes the sweep measures
/// the real effect — each shard pushes only its own sessions' PPR mass
/// per slide — rather than core count. The `.prom` export is the
/// *largest* configuration's scrape, so the per-shard labelled families
/// are present for the CI grep gate.
fn run_shard_sweep(
    counts: &[usize],
    base_spec: &LoadSpec,
    pr: u32,
    out_path: &std::path::Path,
    scale: ExperimentScale,
) {
    assert!(!counts.is_empty(), "--write-shards-sweep requires at least one count");
    let results: Vec<(usize, ModeResult)> = counts
        .iter()
        .map(|&w| {
            let mut spec = base_spec.clone();
            spec.write_shards = w.max(1);
            (w.max(1), run_mode(Mode::KeepAlive, &spec))
        })
        .collect();

    let n = 1usize << base_spec.scale;
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"dppr-serve-load-shards/v1\",\n");
    json.push_str(&format!("  \"pr\": {pr},\n"));
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            ExperimentScale::Quick => "quick",
            ExperimentScale::Full => "full",
        }
    ));
    json.push_str(&format!(
        "  \"server\": {{ \"stream\": \"rmat_stream(scale={}, m={}, seed=0xBEEF)\", \"vertices\": {n}, \"sessions\": {}, \"threads\": {}, \"batch\": {}, \"epsilon\": 1e-4, \"cache_capacity\": 4096 }},\n",
        base_spec.scale, base_spec.edges, base_spec.sessions, base_spec.threads, base_spec.batch
    ));
    json.push_str(&format!(
        "  \"load\": {{ \"clients\": {}, \"duration_secs\": {}, \"mix\": \"{MIX}\", \"mode\": \"keepalive\" }},\n",
        base_spec.clients,
        base_spec.duration.as_secs()
    ));
    for (w, r) in &results {
        json.push_str(&format!("  \"shards_{w}\": {},\n", mode_json(r)));
    }
    let one = results.iter().find(|(w, _)| *w == 1);
    let most = results.iter().max_by_key(|(w, _)| *w);
    if let (Some((_, r1)), Some((w, rw))) = (one, most) {
        if *w > 1 {
            let ratio = if r1.report.updates_per_sec > 0.0 {
                rw.report.updates_per_sec / r1.report.updates_per_sec
            } else {
                0.0
            };
            json.push_str(&format!(
                "  \"comparison\": {{ \"update_throughput_{w}shard_vs_1shard\": {ratio:.2}, \
                 \"updates_per_sec_1shard\": {:.0}, \"updates_per_sec_{w}shard\": {:.0}, \
                 \"logical_updates_offered_1shard\": {}, \"logical_updates_offered_{w}shard\": {}, \
                 \"query_p50_ms_1shard\": {:.3}, \"query_p99_ms_1shard\": {:.3} }},\n",
                r1.report.updates_per_sec,
                rw.report.updates_per_sec,
                r1.report.updates_offered,
                rw.report.updates_offered / *w as u64,
                r1.p50,
                r1.p99,
            ));
        }
    }
    let errors: u64 = results.iter().map(|(_, r)| r.errors).sum();
    json.push_str(&format!("  \"errors\": {errors}\n"));
    json.push_str("}\n");

    std::fs::write(out_path, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", out_path.display()));
    println!("{json}");
    eprintln!("wrote {}", out_path.display());

    let (w_max, r_max) = results.iter().max_by_key(|(w, _)| *w).expect("at least one run");
    let prom = &r_max.metrics_prom;
    let prom_path = out_path.with_file_name(format!("BENCH_{pr}_METRICS.prom"));
    std::fs::write(&prom_path, prom)
        .unwrap_or_else(|e| panic!("writing {}: {e}", prom_path.display()));
    eprintln!("wrote {}", prom_path.display());
    // Every shard of the largest configuration must have exported its
    // labelled stage + scalar families.
    for i in 0..*w_max {
        for series in [
            format!("dppr_shard_slide_apply_seconds_bucket{{write_shard=\"{i}\""),
            format!("dppr_write_shard_epoch{{write_shard=\"{i}\"}}"),
            format!("dppr_write_shard_slides_total{{write_shard=\"{i}\"}}"),
        ] {
            assert!(
                prom.contains(&series),
                "per-shard series {series} missing from the /metrics scrape:\n{prom}"
            );
        }
    }
    assert!(errors == 0, "{errors} failed queries during the shard sweep");
}

/// `--audit-overhead`: fresh keep-alive runs over the identical stream
/// and client fleet — with the online accuracy auditor + SLO engine on
/// (4 write shards, up to 8 audited sessions per 500 ms tick) vs off —
/// comparing the query throughput and tail latency the server sustains.
/// The acceptance bar is that auditing is an observer, not a tax:
/// audited throughput within 5% and p99 within 5% (plus a small
/// absolute allowance for timer jitter on 2-second quick runs). Short
/// runs on small shared CI boxes are dominated by scheduler noise (a
/// 1-core runner timeslices clients, shards, and observer against each
/// other), so each side is re-run on failure and the comparison is
/// between each side's *cleanest* (highest-throughput) run. The `.prom`
/// export is the audited run's scrape, so `dppr_audit_*` / `dppr_slo_*`
/// families are present for the CI grep gate.
fn run_audit_overhead(
    base_spec: &LoadSpec,
    pr: u32,
    out_path: &std::path::Path,
    scale: ExperimentScale,
) {
    const ATTEMPTS: usize = 3;
    let mut spec_off = base_spec.clone();
    spec_off.write_shards = spec_off.write_shards.max(4);
    spec_off.audit = false;
    let mut spec_on = spec_off.clone();
    spec_on.audit = true;

    let within_budget = |off: &ModeResult, on: &ModeResult| {
        let qps_ok = off.qps <= 0.0 || on.qps >= off.qps * 0.95;
        // 0.5 ms absolute slack: sub-millisecond p99s swing more than 5%
        // from scheduler noise alone on quick runs.
        let p99_ok = on.p99 <= off.p99 * 1.05 + 0.5;
        qps_ok && p99_ok
    };
    let best_idx = |runs: &[ModeResult]| -> usize {
        runs.iter()
            .enumerate()
            .max_by(|a, b| a.1.qps.total_cmp(&b.1.qps))
            .map(|(i, _)| i)
            .expect("at least one run")
    };
    let mut offs = vec![run_mode(Mode::KeepAlive, &spec_off)];
    let mut ons = vec![run_mode(Mode::KeepAlive, &spec_on)];
    let mut attempts = 1;
    while !within_budget(&offs[best_idx(&offs)], &ons[best_idx(&ons)]) && attempts < ATTEMPTS {
        let (o, a) = (&offs[best_idx(&offs)], &ons[best_idx(&ons)]);
        eprintln!(
            "[audit-overhead] attempt {attempts} noisy (qps {:.0} -> {:.0}, p99 {:.3} -> {:.3} ms); retrying",
            o.qps, a.qps, o.p99, a.p99
        );
        offs.push(run_mode(Mode::KeepAlive, &spec_off));
        ons.push(run_mode(Mode::KeepAlive, &spec_on));
        attempts += 1;
    }
    let off = offs.swap_remove(best_idx(&offs));
    let on = ons.swap_remove(best_idx(&ons));

    let qps_ratio = if off.qps > 0.0 { on.qps / off.qps } else { 1.0 };
    let p99_ratio = if off.p99 > 0.0 { on.p99 / off.p99 } else { 1.0 };
    let n = 1usize << base_spec.scale;
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"dppr-serve-load-audit/v1\",\n");
    json.push_str(&format!("  \"pr\": {pr},\n"));
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            ExperimentScale::Quick => "quick",
            ExperimentScale::Full => "full",
        }
    ));
    json.push_str(&format!(
        "  \"server\": {{ \"stream\": \"rmat_stream(scale={}, m={}, seed=0xBEEF)\", \"vertices\": {n}, \"sessions\": {}, \"threads\": {}, \"batch\": {}, \"epsilon\": 1e-4, \"write_shards\": {}, \"audit\": \"sample=8 interval=200ms + slo targets (audited run only)\" }},\n",
        base_spec.scale, base_spec.edges, base_spec.sessions, base_spec.threads, base_spec.batch,
        spec_off.write_shards,
    ));
    json.push_str(&format!(
        "  \"load\": {{ \"clients\": {}, \"duration_secs\": {}, \"mix\": \"{MIX}\", \"mode\": \"keepalive\" }},\n",
        base_spec.clients,
        base_spec.duration.as_secs()
    ));
    json.push_str(&format!("  \"audit_off\": {},\n", mode_json(&off)));
    json.push_str(&format!("  \"audit_on\": {},\n", mode_json(&on)));
    json.push_str(&format!(
        "  \"comparison\": {{ \"qps_ratio_on_vs_off\": {qps_ratio:.3}, \"p99_ratio_on_vs_off\": {p99_ratio:.3}, \"attempts\": {attempts} }},\n"
    ));
    let errors = off.errors + on.errors;
    json.push_str(&format!("  \"errors\": {errors}\n"));
    json.push_str("}\n");

    std::fs::write(out_path, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", out_path.display()));
    println!("{json}");
    eprintln!("wrote {}", out_path.display());

    let prom = &on.metrics_prom;
    let prom_path = out_path.with_file_name(format!("BENCH_{pr}_METRICS.prom"));
    std::fs::write(&prom_path, prom)
        .unwrap_or_else(|e| panic!("writing {}: {e}", prom_path.display()));
    eprintln!("wrote {}", prom_path.display());

    // The audited run's scrape must carry live audit error books...
    for family in ["dppr_audit_l1_error_count", "dppr_audit_sessions_total"] {
        let live = prom.lines().any(|l| {
            l.split_once(' ')
                .is_some_and(|(name, v)| name == family && v.trim().parse::<f64>().unwrap_or(0.0) > 0.0)
        });
        assert!(live, "metric family {family} missing or zero in the audited scrape:\n{prom}");
    }
    // ...the labelled overlap/SLO families, and the self-observation +
    // process gauges (presence; breach counters are rightly zero).
    for series in [
        "dppr_audit_topk_overlap_bucket{k=\"10\"",
        "dppr_audit_topk_overlap_bucket{k=\"50\"",
        "dppr_slo_burn_rate{slo=\"latency_p99\",window=\"fast\"}",
        "dppr_slo_breach_total{slo=\"latency_p99\"}",
        "dppr_metrics_scrape_seconds",
        "dppr_process_rss_bytes",
        "dppr_metrics_series_samples",
    ] {
        assert!(prom.contains(series), "series {series} missing from the audited scrape:\n{prom}");
    }
    // No audited session may have strayed outside the ε contract.
    let violations = prom
        .lines()
        .find_map(|l| l.strip_prefix("dppr_audit_bound_violations_total "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .expect("violations counter in scrape");
    assert!(violations == 0.0, "audit flagged {violations} ε-bound violations under load:\n{prom}");
    assert!(
        within_budget(&off, &on),
        "auditing overhead out of budget after {attempts} attempts: \
         qps {:.0} -> {:.0} ({qps_ratio:.3}), p99 {:.3} -> {:.3} ms ({p99_ratio:.3})",
        off.qps, on.qps, off.p99, on.p99
    );
    assert!(errors == 0, "{errors} failed queries during the audit-overhead runs");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = ExperimentScale::from_args();
    let pr: u32 = match args.iter().position(|a| a == "--pr") {
        Some(i) => args
            .get(i + 1)
            .expect("--pr requires a number")
            .parse()
            .expect("--pr requires a number"),
        None => 8,
    };
    let out_path: PathBuf = match args.iter().position(|a| a == "--out") {
        Some(i) => PathBuf::from(args.get(i + 1).expect("--out requires a path argument")),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../BENCH_{pr}.json")),
    };
    let modes: Vec<Mode> = match args.iter().position(|a| a == "--mode") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("keepalive") => vec![Mode::KeepAlive],
            Some("close") => vec![Mode::Close],
            Some("both") => vec![Mode::KeepAlive, Mode::Close],
            other => panic!("--mode must be keepalive|close|both, got {other:?}"),
        },
        None => vec![Mode::KeepAlive, Mode::Close],
    };
    let spec = match scale {
        ExperimentScale::Quick => LoadSpec {
            clients: 4,
            duration: Duration::from_secs(2),
            scale: 12,
            edges: 60_000,
            sessions: 8,
            threads: 4,
            batch: 500,
            write_shards: 1,
            audit: false,
        },
        ExperimentScale::Full => LoadSpec {
            clients: 8,
            duration: Duration::from_secs(10),
            scale: 15,
            edges: 400_000,
            sessions: 16,
            threads: 8,
            batch: 1_000,
            write_shards: 1,
            audit: false,
        },
    };

    if let Some(i) = args.iter().position(|a| a == "--write-shards-sweep") {
        let counts: Vec<usize> = args
            .get(i + 1)
            .expect("--write-shards-sweep requires a comma-separated list")
            .split(',')
            .map(|v| v.trim().parse().expect("--write-shards-sweep takes shard counts"))
            .collect();
        run_shard_sweep(&counts, &spec, pr, &out_path, scale);
        return;
    }

    if args.iter().any(|a| a == "--audit-overhead") {
        run_audit_overhead(&spec, pr, &out_path, scale);
        return;
    }

    let results: Vec<(Mode, ModeResult)> =
        modes.iter().map(|&m| (m, run_mode(m, &spec))).collect();

    // --- JSON -------------------------------------------------------------
    let n = 1usize << spec.scale; // vertex bound of the generated stream
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"dppr-serve-load/v4\",\n");
    json.push_str(&format!("  \"pr\": {pr},\n"));
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            ExperimentScale::Quick => "quick",
            ExperimentScale::Full => "full",
        }
    ));
    json.push_str(&format!(
        "  \"server\": {{ \"stream\": \"rmat_stream(scale={}, m={}, seed=0xBEEF)\", \"vertices\": {n}, \"sessions\": {}, \"threads\": {}, \"batch\": {}, \"epsilon\": 1e-4, \"cache_capacity\": 4096 }},\n",
        spec.scale, spec.edges, spec.sessions, spec.threads, spec.batch
    ));
    json.push_str(&format!(
        "  \"load\": {{ \"clients\": {}, \"duration_secs\": {}, \"mix\": \"{MIX}\" }},\n",
        spec.clients,
        spec.duration.as_secs()
    ));
    for (m, r) in &results {
        json.push_str(&format!("  \"{}\": {},\n", m.name(), mode_json(r)));
    }
    let ka = results.iter().find(|(m, _)| *m == Mode::KeepAlive);
    let cl = results.iter().find(|(m, _)| *m == Mode::Close);
    if let (Some((_, ka)), Some((_, cl))) = (ka, cl) {
        let speedup = if ka.p50 > 0.0 { cl.p50 / ka.p50 } else { 0.0 };
        json.push_str(&format!(
            "  \"comparison\": {{ \"p50_speedup_keepalive_vs_close\": {speedup:.2} }},\n"
        ));
    }
    let errors: u64 = results.iter().map(|(_, r)| r.errors).sum();
    json.push_str(&format!("  \"errors\": {errors}\n"));
    json.push_str("}\n");

    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", out_path.display()));
    println!("{json}");
    eprintln!("wrote {}", out_path.display());

    // Export the first mode's final /metrics scrape and gate on the
    // families that must be live after any loaded run (the WAL families
    // legitimately stay empty without --data-dir, so they are not gated).
    let prom = &results[0].1.metrics_prom;
    let prom_path = out_path.with_file_name(format!("BENCH_{pr}_METRICS.prom"));
    std::fs::write(&prom_path, prom)
        .unwrap_or_else(|e| panic!("writing {}: {e}", prom_path.display()));
    eprintln!("wrote {}", prom_path.display());
    for family in [
        "dppr_http_request_seconds_count",
        "dppr_slide_apply_seconds_count",
        "dppr_push_wall_seconds_count",
        "dppr_snapshot_publish_seconds_count",
        "dppr_http_requests_total",
        "dppr_slides_total",
    ] {
        let live = prom.lines().any(|l| {
            l.split_once(' ')
                .is_some_and(|(name, v)| name == family && v.trim().parse::<f64>().unwrap_or(0.0) > 0.0)
        });
        assert!(live, "metric family {family} missing or zero in the /metrics scrape:\n{prom}");
    }

    assert!(errors == 0, "{errors} failed queries during the load run");
}
