//! Atomic `f64` built on `AtomicU64` bit-casting.
//!
//! §4.2 of the paper requires "an atomic operation that performs the
//! addition to a 32/64 bit address atomically and returns the before-value"
//! — on architectures without a native float fetch-add it is built from
//! compare-and-swap, which is exactly what [`AtomicF64::fetch_add`] does.
//! The returned before-value is the by-product that makes *local duplicate
//! detection* possible.
//!
//! All operations use `Relaxed` ordering: the values are pure data and every
//! cross-thread hand-off in the push kernels happens across a rayon join
//! barrier, which already establishes the necessary happens-before edges.

use std::sync::atomic::{AtomicU64, Ordering};

/// An `f64` that supports atomic read-modify-write.
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// Creates a new atomic with the given value.
    #[inline]
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Atomically loads the value.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Atomically stores `v`.
    #[inline]
    pub fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically replaces the value with `v`, returning the previous value.
    #[inline]
    pub fn swap(&self, v: f64) -> f64 {
        f64::from_bits(self.0.swap(v.to_bits(), Ordering::Relaxed))
    }

    /// Atomically adds `delta`, returning the **before-value** (the paper's
    /// `atomicAdd`, Algorithm 4 line 14). Implemented as a CAS loop.
    #[inline]
    pub fn fetch_add(&self, delta: f64) -> f64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }

    /// [`AtomicF64::fetch_add`] that also counts CAS retries (for the
    /// contention profiling of Figure 9's substitute metrics).
    #[inline]
    pub fn fetch_add_counting(&self, delta: f64, retries: &mut u64) -> f64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => {
                    *retries += 1;
                    cur = actual;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn load_store_swap() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-2.25);
        assert_eq!(a.load(), -2.25);
        assert_eq!(a.swap(7.0), -2.25);
        assert_eq!(a.load(), 7.0);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(AtomicF64::default().load(), 0.0);
    }

    #[test]
    fn fetch_add_returns_before_value() {
        let a = AtomicF64::new(10.0);
        assert_eq!(a.fetch_add(2.5), 10.0);
        assert_eq!(a.fetch_add(-1.0), 12.5);
        assert_eq!(a.load(), 11.5);
    }

    #[test]
    fn fetch_add_handles_special_values() {
        let a = AtomicF64::new(0.0);
        a.fetch_add(f64::MIN_POSITIVE);
        assert_eq!(a.load(), f64::MIN_POSITIVE);
        let b = AtomicF64::new(-0.0);
        assert_eq!(b.fetch_add(0.0), -0.0);
    }

    #[test]
    fn concurrent_adds_are_lossless() {
        // 8 threads × 10_000 increments of 1.0 must sum exactly (integers
        // up to 80_000 are exactly representable).
        let a = Arc::new(AtomicF64::new(0.0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    a.fetch_add(1.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.load(), 80_000.0);
    }

    #[test]
    fn concurrent_before_values_are_unique() {
        // Every fetch_add(1.0) must observe a distinct before-value: that
        // uniqueness is precisely what local duplicate detection relies on.
        let a = Arc::new(AtomicF64::new(0.0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                (0..5_000).map(|_| a.fetch_add(1.0)).collect::<Vec<f64>>()
            }));
        }
        let mut seen: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        seen.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (i, v) in seen.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }

    #[test]
    fn counting_variant_matches() {
        let a = AtomicF64::new(3.0);
        let mut retries = 0;
        assert_eq!(a.fetch_add_counting(4.0, &mut retries), 3.0);
        assert_eq!(a.load(), 7.0);
        // Uncontended: no retries.
        assert_eq!(retries, 0);
    }
}
