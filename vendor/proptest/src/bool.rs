//! `prop::bool` — boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Uniform boolean, as in `prop::bool::ANY`.
#[derive(Clone, Copy, Debug)]
pub struct Any;

pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// `true` with probability `p`.
pub fn weighted(p: f64) -> Weighted {
    Weighted { p }
}

#[derive(Clone, Copy, Debug)]
pub struct Weighted {
    p: f64,
}

impl Strategy for Weighted {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(self.p)
    }
}
