//! In-process recovery integration tests: checkpoint + WAL-tail replay
//! through the same `durable_boot` path `start` uses, without spawning
//! child processes (the full kill-point matrix lives in the
//! `crash_recovery` harness binary under `crates/bench`).

use dppr_core::persist::state_fingerprint;
use dppr_core::{MultiSourcePpr, PushVariant};
use dppr_graph::{presets, GraphStream, VertexId};
use dppr_serve::{boot_probe, DurabilityConfig, ServeConfig};
use dppr_stream::StreamDriver;
use dppr_wal::{FsyncPolicy, Wal, WalOptions, WalRecord};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering::Relaxed;

const SEED: u64 = 0xD1CE;
const INIT: f64 = 0.1;
const ALPHA: f64 = 0.15;
const EPS: f64 = 1e-4;
const BATCH: usize = 50;
const SOURCES: [VertexId; 2] = [0, 3];

fn the_stream() -> GraphStream {
    presets::toy().stream(SEED)
}

fn cfg(dir: &Path) -> ServeConfig {
    let mut d = DurabilityConfig::new(dir);
    d.fsync = FsyncPolicy::Off; // tests exercise logic, not the disk
    d.checkpoint_every_slides = 4;
    ServeConfig {
        port: 0,
        threads: 1,
        batch: BATCH,
        alpha: ALPHA,
        epsilon: EPS,
        durability: Some(d),
        ..ServeConfig::default()
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dppr_serve_rec_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fingerprints(m: &MultiSourcePpr) -> Vec<(VertexId, u64)> {
    (0..m.num_sources()).map(|i| (m.source(i), state_fingerprint(m.state(i)))).collect()
}

/// Builds the ground truth the server's bootstrap produces: initial
/// window applied at epoch 1, then one epoch per `BATCH`-edge slide.
fn replay_epochs(n_slides: usize) -> (StreamDriver, MultiSourcePpr) {
    let mut driver = StreamDriver::new(the_stream(), INIT);
    let mut multi = MultiSourcePpr::new(&SOURCES, ALPHA, EPS, PushVariant::OPT);
    let init = driver.take_initial_batch();
    multi.apply_batch(driver.graph_mut(), &init);
    for _ in 0..n_slides {
        let batch = driver.slide_batch(BATCH).expect("stream long enough");
        multi.apply_batch(driver.graph_mut(), &batch);
    }
    (driver, multi)
}

#[test]
fn graceful_shutdown_checkpoints_and_restart_replays_nothing() {
    let dir = tmpdir("graceful");
    let c = cfg(&dir);
    let handle = dppr_serve::start(the_stream(), INIT, &SOURCES, c.clone()).unwrap();
    assert!(handle.recovery().is_none(), "first boot must be fresh");
    while !handle.stats().stream_done.load(Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let report = handle.join();
    assert!(report.checkpoints >= 1);
    assert_eq!(report.durable_epoch, report.epoch, "join leaves a final checkpoint");

    // Restart: the final checkpoint covers everything — an empty tail.
    let probe = boot_probe(the_stream(), INIT, &SOURCES, &c).unwrap();
    let rec = probe.recovery.expect("second boot recovers");
    assert_eq!(rec.checkpoint_epoch, report.epoch);
    assert_eq!(rec.replayed_batches, 0);
    assert_eq!(probe.epoch, report.epoch);

    // And the recovered state is bit-identical to an uncrashed replay.
    let (_, multi) = replay_epochs(report.epoch as usize - 1);
    assert_eq!(probe.fingerprints, fingerprints(&multi));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_replays_only_the_tail() {
    let dir = tmpdir("tail");
    let c = cfg(&dir);

    // Hand-build the post-crash disk state: a checkpoint at epoch 1 and
    // three logged-but-uncheckpointed batches (epochs 2..=4) — exactly
    // what a crash right after the epoch-4 append leaves behind.
    let mut driver = StreamDriver::new(the_stream(), INIT);
    let mut multi = MultiSourcePpr::new(&SOURCES, ALPHA, EPS, PushVariant::OPT);
    let init = driver.take_initial_batch();
    multi.apply_batch(driver.graph_mut(), &init);
    let states: Vec<_> = (0..multi.num_sources()).map(|i| multi.state(i).clone_values()).collect();
    dppr_serve::durability::write_checkpoint(&dir, 1, driver.window_range(), &states).unwrap();
    let wal_dir = dppr_serve::durability::wal_dir(&dir);
    let (mut wal, tail) = Wal::open(&wal_dir, WalOptions::default()).unwrap();
    assert!(tail.is_empty());
    wal.append(&WalRecord::Checkpoint { epoch: 1 }).unwrap();
    for epoch in 2..=4u64 {
        let batch = driver.slide_batch(BATCH).unwrap();
        let (ws, we) = driver.window_range();
        wal.append(&WalRecord::Batch {
            epoch,
            window_start: ws as u64,
            window_end: we as u64,
            updates: batch.clone(),
        })
        .unwrap();
        multi.apply_batch(driver.graph_mut(), &batch);
    }
    wal.sync().unwrap();
    drop(wal);

    let probe = boot_probe(the_stream(), INIT, &SOURCES, &c).unwrap();
    let rec = probe.recovery.expect("recovers from the checkpoint");
    assert_eq!(rec.checkpoint_epoch, 1);
    assert_eq!(rec.replayed_batches, 3, "replays exactly the tail");
    assert_eq!(probe.epoch, 4);
    assert_eq!(probe.fingerprints, fingerprints(&multi), "bit-identical to the live run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_tail_is_truncated_and_recovery_proceeds() {
    let dir = tmpdir("torn");
    let c = cfg(&dir);
    let handle = dppr_serve::start(the_stream(), INIT, &SOURCES, c.clone()).unwrap();
    while !handle.stats().stream_done.load(Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let report = handle.join();

    // Simulate a torn write: an incomplete frame at the end of the
    // newest segment.
    let wal_dir = dppr_serve::durability::wal_dir(&dir);
    let mut segs: Vec<_> = std::fs::read_dir(&wal_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    segs.sort();
    let newest = segs.pop().unwrap();
    let mut f = std::fs::OpenOptions::new().append(true).open(&newest).unwrap();
    f.write_all(&[0x40, 0x00, 0x00, 0x00, 0xAB, 0xCD]).unwrap(); // half a header
    drop(f);

    let probe = boot_probe(the_stream(), INIT, &SOURCES, &c).unwrap();
    assert_eq!(probe.epoch, report.epoch, "torn junk is dropped, state unchanged");
    let (_, multi) = replay_epochs(report.epoch as usize - 1);
    assert_eq!(probe.fingerprints, fingerprints(&multi));

    // Recovery repaired the log: probing again sees a clean tail.
    let probe2 = boot_probe(the_stream(), INIT, &SOURCES, &c).unwrap();
    assert_eq!(probe2.epoch, probe.epoch);
    assert_eq!(probe2.fingerprints, probe.fingerprints);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restarted_server_serves_recovered_sessions() {
    let dir = tmpdir("restart");
    let mut c = cfg(&dir);
    c.max_slides = 3;
    let handle = dppr_serve::start(the_stream(), INIT, &SOURCES, c.clone()).unwrap();
    while handle.stats().slides.load(Relaxed) < 3 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let report = handle.join();
    assert_eq!(report.epoch, 4); // bootstrap + 3 slides

    // A real restarted server (threads, listener, and all) resumes at
    // the durable epoch with every session queryable.
    let handle = dppr_serve::start(the_stream(), INIT, &SOURCES, c).unwrap();
    let rec = *handle.recovery().expect("restart recovers");
    assert_eq!(rec.recovered_epoch, 4);
    assert_eq!(handle.registry().len(), SOURCES.len());
    let report = handle.join();
    assert!(report.epoch >= 4);
    std::fs::remove_dir_all(&dir).ok();
}
