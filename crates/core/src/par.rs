//! `ParallelLocalPush` (Algorithm 3) and `OptParallelPush` (Algorithm 4).
//!
//! One iteration of the push runs two parallel sessions separated by a
//! barrier (rayon's fork-join joins are the paper's `synchronize`):
//!
//! * **Vanilla order** (Algorithm 3): *self-update* first — every frontier
//!   vertex `u` atomically takes out its residual (`w = swap(Rs(u), 0)`) and
//!   banks `α·w` into the estimate — then *neighbor-propagation* of the
//!   stale snapshot `w` to the in-neighbors.
//! * **Eager order** (Algorithm 4): *neighbor-propagation* first, reading
//!   the freshest `ru = Rs(u)` at the moment `u` is processed (so residual
//!   that arrived from concurrently-pushing neighbors is propagated in the
//!   same iteration — this is *eager propagation*, §4.1), then a consistent
//!   *self-update* that subtracts exactly the `ru` that was propagated and
//!   re-enqueues `u` if what accumulated since still exceeds ε (the second
//!   frontier-generation pass, Algorithm 4 lines 22–23).
//!
//! Frontier generation is either **local duplicate detection** (§4.2): the
//! atomic add's before/after pair shows exactly one updater the crossing of
//! the ±ε threshold (residuals move monotonically within a phase), and only
//! that updater enqueues — or the baseline **atomic-flag dedup**: a shared
//! per-vertex claim bit, standing in for the synchronizing `UniqueEnqueue`
//! of Algorithm 3.

use crate::config::Phase;
use crate::counters::{Counters, LocalCounters};
use crate::seq::{dedup_seeds, LockstepTrace};
use crate::state::PprState;
use crate::variants::PushVariant;
use dppr_graph::{DynamicGraph, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Minimum items per rayon task, bounding scheduling overhead on the small
/// frontiers that dominate early iterations.
const MIN_TASK: usize = 128;

/// Tuning knobs for the parallel push.
#[derive(Debug, Clone, Copy)]
pub struct PushOpts {
    /// Frontiers smaller than this run the iteration body inline on the
    /// calling thread (same operations, same semantics — the one-worker
    /// schedule of the parallel push). CilkPlus gets this behaviour for
    /// free from lazy task stealing; with rayon's eager fork/join the
    /// explicit threshold is needed to avoid paying two barriers per
    /// iteration for a ten-vertex frontier. Set to 0 to force the fully
    /// parallel path (used by the granularity ablation bench).
    pub seq_threshold: usize,
}

impl Default for PushOpts {
    fn default() -> Self {
        PushOpts { seq_threshold: 4096 }
    }
}

/// Reusable scratch for the parallel push: the claim-flag array used by the
/// non-`local_dup` variants.
#[derive(Debug, Default)]
pub struct ParPushBuffers {
    claimed: Vec<AtomicBool>,
}

impl ParPushBuffers {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.claimed.len() < n {
            self.claimed.resize_with(n, AtomicBool::default);
        }
    }
}

/// Per-task accumulator threaded through rayon's fold/reduce: thread-local
/// next-frontier buffer, the `(u, ru)` entry log `E` of Algorithm 4, and
/// local counters. Merging is append-only, so frontier generation itself
/// never contends on shared state.
#[derive(Default)]
struct SessAcc {
    next: Vec<VertexId>,
    entries: Vec<(VertexId, f64)>,
    lc: LocalCounters,
}

impl SessAcc {
    fn merge(mut self, mut other: SessAcc) -> SessAcc {
        if self.next.len() < other.next.len() {
            std::mem::swap(&mut self.next, &mut other.next);
        }
        self.next.append(&mut other.next);
        if self.entries.len() < other.entries.len() {
            std::mem::swap(&mut self.entries, &mut other.entries);
        }
        self.entries.append(&mut other.entries);
        self.lc.merge(&other.lc);
        self
    }
}

struct Ctx<'a> {
    g: &'a DynamicGraph,
    state: &'a PprState,
    alpha: f64,
    eps: f64,
    variant: PushVariant,
    claimed: &'a [AtomicBool],
    seq_threshold: usize,
}

impl Ctx<'_> {
    /// Neighbor-propagation for one frontier vertex: transfer
    /// `(1−α)·w / dout(v)` to every in-neighbor `v` and generate frontier
    /// candidates according to the variant's dedup scheme.
    #[inline]
    fn propagate(&self, u: VertexId, w: f64, phase: Phase, acc: &mut SessAcc) {
        acc.lc.pushes += 1;
        let scaled = (1.0 - self.alpha) * w;
        let r = self.state.r_atomics();
        // Division-free inner loop: multiply by the graph-maintained 1/dout
        // (v has the edge v→u, so dout(v) ≥ 1).
        for &v in self.g.in_neighbors(u) {
            acc.lc.edge_traversals += 1;
            let inc = scaled * self.g.inv_out_degree(v);
            let r_pre =
                r[v as usize].fetch_add_counting(inc, &mut acc.lc.cas_retries);
            acc.lc.atomic_adds += 1;
            let r_cur = r_pre + inc;
            if self.variant.local_dup {
                if phase.crossed(r_pre, r_cur, self.eps) {
                    acc.next.push(v);
                    acc.lc.enqueued += 1;
                } else if phase.active(r_pre, self.eps) {
                    // Someone else is responsible for v — the detection the
                    // shared-flag scheme would have paid an atomic for.
                    acc.lc.dup_avoided += 1;
                }
            } else if phase.active(r_cur, self.eps) {
                if !self.claimed[v as usize].swap(true, Ordering::Relaxed) {
                    acc.next.push(v);
                    acc.lc.enqueued += 1;
                } else {
                    acc.lc.dup_avoided += 1;
                }
            }
        }
    }

    /// One-worker schedule of [`Ctx::vanilla_iteration`], used below the
    /// granularity threshold: identical operations and session barrier,
    /// no fork/join cost.
    fn vanilla_iteration_seq(&self, frontier: &[VertexId], phase: Phase) -> SessAcc {
        let mut acc = SessAcc::default();
        let mut entries = Vec::with_capacity(frontier.len());
        for &u in frontier {
            let w = self.state.r_atomics()[u as usize].swap(0.0);
            let p = &self.state.p_atomics()[u as usize];
            p.store(p.load() + self.alpha * w);
            entries.push((u, w));
        }
        for &(u, w) in &entries {
            self.propagate(u, w, phase, &mut acc);
        }
        acc
    }

    /// Algorithm 4's self-update for one frontier vertex (lines 19–23):
    /// bank `α·ru`, subtract the consistent `ru`, and re-enqueue `u` if the
    /// residual that accumulated since the session-1 read still exceeds ε.
    ///
    /// Flag discipline in the eager+flags variant: `u`'s claim flag is set
    /// for as long as `u` is scheduled (in `FQ` or `FQ'`), which is what
    /// stops session 1 from re-enqueueing a vertex that is about to drain.
    /// Here the flag is kept if `u` re-enters the frontier and released
    /// otherwise.
    #[inline]
    fn eager_self_update(&self, u: VertexId, ru: f64, phase: Phase, acc: &mut SessAcc) {
        let p = &self.state.p_atomics()[u as usize];
        p.store(p.load() + self.alpha * ru);
        let r = &self.state.r_atomics()[u as usize];
        let after = r.fetch_add_counting(-ru, &mut acc.lc.cas_retries) - ru;
        acc.lc.atomic_adds += 1;
        if phase.active(after, self.eps) {
            acc.next.push(u);
            acc.lc.enqueued += 1;
        } else if !self.variant.local_dup {
            self.claimed[u as usize].store(false, Ordering::Relaxed);
        }
    }

    /// One-worker schedule of [`Ctx::eager_iteration`].
    fn eager_iteration_seq(&self, frontier: &[VertexId], phase: Phase) -> SessAcc {
        let mut acc = SessAcc::default();
        for &u in frontier {
            let ru = self.state.r_atomics()[u as usize].load();
            acc.entries.push((u, ru));
            self.propagate(u, ru, phase, &mut acc);
        }
        let entries = std::mem::take(&mut acc.entries);
        for &(u, ru) in &entries {
            self.eager_self_update(u, ru, phase, &mut acc);
        }
        acc
    }

    /// Algorithm 3: self-update (stale snapshot) then neighbor-propagation.
    fn vanilla_iteration(&self, frontier: &[VertexId], phase: Phase) -> SessAcc {
        // Session 1: take out residuals, bank α·w. Distinct vertices, so
        // the plain read-modify-write on P is race-free.
        let entries: Vec<(VertexId, f64)> = frontier
            .par_iter()
            .with_min_len(MIN_TASK)
            .map(|&u| {
                let w = self.state.r_atomics()[u as usize].swap(0.0);
                let p = &self.state.p_atomics()[u as usize];
                p.store(p.load() + self.alpha * w);
                (u, w)
            })
            .collect();
        // (collect is the synchronize barrier)
        // Session 2: propagate the snapshots.
        entries
            .par_iter()
            .with_min_len(MIN_TASK)
            .fold(SessAcc::default, |mut acc, &(u, w)| {
                self.propagate(u, w, phase, &mut acc);
                acc
            })
            .reduce(SessAcc::default, SessAcc::merge)
    }

    /// Algorithm 4: neighbor-propagation on fresh reads, then the
    /// consistent self-update with its second frontier-generation pass.
    fn eager_iteration(&self, frontier: &[VertexId], phase: Phase) -> SessAcc {
        // Session 1: read the *current* residual (it may keep growing under
        // us — whatever arrives after the read is handled by the consistent
        // subtraction below) and propagate it.
        let mut acc1 = frontier
            .par_iter()
            .with_min_len(MIN_TASK)
            .fold(SessAcc::default, |mut acc, &u| {
                let ru = self.state.r_atomics()[u as usize].load();
                acc.entries.push((u, ru));
                self.propagate(u, ru, phase, &mut acc);
                acc
            })
            .reduce(SessAcc::default, SessAcc::merge);
        // (reduce is the synchronize barrier)
        // Session 2: banked estimate update and Rs(u) −= ru; a frontier
        // vertex that accumulated more than ε since its read goes straight
        // back into the frontier. (With local duplicate detection this
        // enqueue cannot duplicate: session 1 never enqueues current
        // members, whose before-values already satisfy the push condition.
        // With flags, the member's claim is held until this very check.)
        let acc2 = acc1
            .entries
            .par_iter()
            .with_min_len(MIN_TASK)
            .fold(SessAcc::default, |mut acc, &(u, ru)| {
                self.eager_self_update(u, ru, phase, &mut acc);
                acc
            })
            .reduce(SessAcc::default, SessAcc::merge);
        acc1.entries.clear();
        acc1.merge(acc2)
    }
}

/// Runs the parallel local push to convergence from the given seed
/// vertices with default [`PushOpts`]. On return every residual lies
/// within `[−ε, ε]`.
pub fn parallel_local_push(
    g: &DynamicGraph,
    state: &PprState,
    variant: PushVariant,
    seeds: &[VertexId],
    counters: &Counters,
    bufs: &mut ParPushBuffers,
) {
    parallel_local_push_opts(g, state, variant, seeds, counters, bufs, PushOpts::default())
}

/// [`parallel_local_push`] with explicit tuning options.
///
/// The positive phase runs first; because positive pushes only ever *add*
/// probability mass, the only candidates for the negative phase are the
/// seeds themselves, which is why it is seeded from the same list rather
/// than a full vertex scan (Algorithm 3 line 4 written work-efficiently).
pub fn parallel_local_push_opts(
    g: &DynamicGraph,
    state: &PprState,
    variant: PushVariant,
    seeds: &[VertexId],
    counters: &Counters,
    bufs: &mut ParPushBuffers,
    opts: PushOpts,
) {
    bufs.ensure(g.num_vertices());
    let ctx = Ctx {
        g,
        state,
        alpha: state.config().alpha,
        eps: state.config().epsilon,
        variant,
        claimed: &bufs.claimed,
        seq_threshold: opts.seq_threshold,
    };
    let seeds = dedup_seeds(seeds);
    // Flag discipline differs by ordering (see `eager_self_update`):
    // * vanilla+flags: a member's flag is cleared when its frontier starts
    //   (it was zeroed, so any re-crossing is a genuine re-activation);
    // * eager+flags: a member's flag stays set while scheduled, so session
    //   1 cannot re-enqueue a vertex whose pending self-update is about to
    //   drain it — only session 2's re-check puts it back.
    let eager_flags = variant.eager && !variant.local_dup;
    let vanilla_flags = !variant.eager && !variant.local_dup;
    for phase in Phase::BOTH {
        let frontier: Vec<VertexId> = seeds
            .iter()
            .copied()
            .filter(|&u| phase.active(state.r(u), ctx.eps))
            .collect();
        if eager_flags {
            for &u in &frontier {
                ctx.claimed[u as usize].store(true, Ordering::Relaxed);
            }
        }
        let mut frontier = frontier;
        while !frontier.is_empty() {
            counters.record_iteration(frontier.len());
            let inline = frontier.len() < ctx.seq_threshold;
            let acc = match (variant.eager, inline) {
                (true, true) => ctx.eager_iteration_seq(&frontier, phase),
                (true, false) => ctx.eager_iteration(&frontier, phase),
                (false, true) => ctx.vanilla_iteration_seq(&frontier, phase),
                (false, false) => ctx.vanilla_iteration(&frontier, phase),
            };
            acc.lc.flush(counters);
            frontier = acc.next;
            if vanilla_flags {
                // Release the claim flags so next iteration's members can
                // be re-enqueued if they re-activate.
                if frontier.len() < ctx.seq_threshold {
                    for &v in &frontier {
                        ctx.claimed[v as usize].store(false, Ordering::Relaxed);
                    }
                } else {
                    frontier.par_iter().with_min_len(MIN_TASK).for_each(|&v| {
                        ctx.claimed[v as usize].store(false, Ordering::Relaxed)
                    });
                }
            }
        }
    }
    debug_assert!(state.max_abs_residual() <= ctx.eps + 1e-12);
}

/// Deterministic, single-threaded simulation of the **vanilla** parallel
/// push semantics (all frontier residuals snapshotted at iteration start),
/// recording `‖Rs‖₁` after every iteration. This is the `R^p` side of
/// Lemma 4's comparison; pair it with
/// [`crate::seq::sequential_push_lockstep`].
pub fn parallel_push_lockstep(
    g: &DynamicGraph,
    state: &PprState,
    seeds: &[VertexId],
) -> LockstepTrace {
    let alpha = state.config().alpha;
    let eps = state.config().epsilon;
    let mut trace = LockstepTrace {
        l1_after_iteration: Vec::new(),
        frontier_sizes: Vec::new(),
        pushes: 0,
    };
    let mut touched_flag = vec![false; g.num_vertices()];

    for phase in Phase::BOTH {
        let mut frontier: Vec<VertexId> = dedup_seeds(seeds)
            .into_iter()
            .filter(|&u| phase.active(state.r(u), eps))
            .collect();
        while !frontier.is_empty() {
            trace.frontier_sizes.push(frontier.len());
            // Session 1: snapshot + self-update for the whole frontier.
            let snapshots: Vec<f64> = frontier
                .iter()
                .map(|&u| {
                    let w = state.r(u);
                    state.set_p(u, state.p(u) + alpha * w);
                    state.set_r(u, 0.0);
                    w
                })
                .collect();
            // Session 2: propagate the stale snapshots.
            let mut touched: Vec<VertexId> = Vec::new();
            for (&u, &w) in frontier.iter().zip(&snapshots) {
                trace.pushes += 1;
                let scaled = (1.0 - alpha) * w;
                if !touched_flag[u as usize] {
                    touched_flag[u as usize] = true;
                    touched.push(u);
                }
                for &v in g.in_neighbors(u) {
                    state.set_r(v, state.r(v) + scaled * g.inv_out_degree(v));
                    if !touched_flag[v as usize] {
                        touched_flag[v as usize] = true;
                        touched.push(v);
                    }
                }
            }
            let mut next = Vec::new();
            for &v in &touched {
                touched_flag[v as usize] = false;
                if phase.active(state.r(v), eps) {
                    next.push(v);
                }
            }
            trace.l1_after_iteration.push(state.l1_residual());
            frontier = next;
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PprConfig;
    use crate::invariant::{apply_update, max_invariant_violation};
    use crate::seq::sequential_push_lockstep;
    use dppr_graph::EdgeUpdate;

    /// Figure 1/2/3 graph (paper ids −1): 2→1, 3→1, 3→2, 4→3, 1→4.
    fn figure_graph() -> DynamicGraph {
        DynamicGraph::from_edges([(1, 0), (2, 0), (2, 1), (3, 2), (0, 3)])
    }

    fn figure_state() -> PprState {
        let cfg = PprConfig::new(0, 0.5, 0.1);
        let mut st = PprState::new(cfg);
        st.ensure_len(4);
        for (v, (p, r)) in [(0.5, 0.0625), (0.25, 0.0), (0.1875, 0.0), (0.0625, 0.0625)]
            .into_iter()
            .enumerate()
        {
            st.set_p(v as u32, p);
            st.set_r(v as u32, r);
        }
        st
    }

    #[test]
    fn figure2_batch_parallel_matches_paper() {
        // Batch {v1→v2, v4→v1}; Figure 2(d) expects (paper rounding):
        // P = [0.5781, 0.25, 0.1875, 0.1718], R = [0.0546, 0.0781, 0.039, 0.039].
        // The vanilla variant reproduces the figure exactly (the figure's
        // trace snapshots residuals at iteration start).
        let mut g = figure_graph();
        let mut st = figure_state();
        let c = Counters::new();
        assert!(apply_update(&mut g, &mut st, EdgeUpdate::insert(0, 1), &c));
        assert!(apply_update(&mut g, &mut st, EdgeUpdate::insert(3, 0), &c));
        let mut bufs = ParPushBuffers::new();
        parallel_local_push(&g, &st, PushVariant::VANILLA, &[0, 3], &c, &mut bufs);

        assert!((st.p(0) - 0.578125).abs() < 1e-12);
        assert!((st.p(3) - 0.171875).abs() < 1e-12);
        assert!((st.r(0) - 0.0546875).abs() < 1e-12);
        assert!((st.r(1) - 0.078125).abs() < 1e-12);
        assert!((st.r(2) - 0.0390625).abs() < 1e-12);
        assert!((st.r(3) - 0.0390625).abs() < 1e-12);
        assert!(st.converged());
        assert!(max_invariant_violation(&g, &st) < 1e-12);
        // Convergence "in one iteration" (Example 2).
        assert_eq!(c.snapshot().iterations, 1);
        assert_eq!(c.snapshot().pushes, 2);
    }

    #[test]
    fn figure2_all_variants_converge_with_invariant() {
        for variant in PushVariant::ALL {
            let mut g = figure_graph();
            let mut st = figure_state();
            let c = Counters::new();
            apply_update(&mut g, &mut st, EdgeUpdate::insert(0, 1), &c);
            apply_update(&mut g, &mut st, EdgeUpdate::insert(3, 0), &c);
            let mut bufs = ParPushBuffers::new();
            parallel_local_push(&g, &st, variant, &[0, 3], &c, &mut bufs);
            assert!(st.converged(), "{variant} did not converge");
            assert!(
                max_invariant_violation(&g, &st) < 1e-12,
                "{variant} broke the invariant"
            );
        }
    }

    #[test]
    fn figure3_parallel_loss_is_one_extra_push() {
        // Figure 3: the parallel push spends 5 operations where the
        // sequential one needs 4 (v3 is pushed twice).
        let g = figure_graph();
        let cfg = PprConfig::new(0, 0.5, 0.1);
        let mut st = PprState::new(cfg);
        st.ensure_len(4);
        st.set_p(0, 0.0);
        st.set_r(0, 1.0);
        let c = Counters::new();
        let mut bufs = ParPushBuffers::new();
        parallel_local_push(&g, &st, PushVariant::VANILLA, &[0], &c, &mut bufs);
        assert_eq!(c.snapshot().pushes, 5);
        assert!((st.p(0) - 0.5).abs() < 1e-12);
        assert!((st.p(1) - 0.25).abs() < 1e-12);
        assert!((st.p(2) - 0.1875).abs() < 1e-12);
        assert!((st.p(3) - 0.0625).abs() < 1e-12);
        assert!((st.r(0) - 0.0625).abs() < 1e-12);
        assert!((st.r(3) - 0.0625).abs() < 1e-12);
        assert!(st.converged());
    }

    #[test]
    fn figure3_lockstep_traces_match_lemma4() {
        // ‖R^p(x)‖₁ ≥ ‖R^q(x)‖₁ for every common iteration (Lemma 4).
        let g = figure_graph();
        let cfg = PprConfig::new(0, 0.5, 0.1);
        let mk = || {
            let mut st = PprState::new(cfg);
            st.ensure_len(4);
            st.set_p(0, 0.0);
            st.set_r(0, 1.0);
            st
        };
        let sp = mk();
        let par_trace = parallel_push_lockstep(&g, &sp, &[0]);
        let sq = mk();
        let seq_trace = sequential_push_lockstep(&g, &sq, &[0]);
        assert_eq!(par_trace.pushes, 5);
        assert_eq!(seq_trace.pushes, 4);
        assert_eq!(par_trace.frontier_sizes, vec![1, 2, 2]);
        assert_eq!(seq_trace.frontier_sizes, vec![1, 2, 1]);
        for (i, (p, q)) in par_trace
            .l1_after_iteration
            .iter()
            .zip(&seq_trace.l1_after_iteration)
            .enumerate()
        {
            assert!(p >= q, "iteration {i}: parallel ‖R‖₁={p} < sequential {q}");
        }
    }

    #[test]
    fn eager_beats_vanilla_on_figure3_ops() {
        // Eager propagation exists precisely to reclaim Figure 3's lost
        // push: v2's contribution reaches v3 before v3's own push.
        // (Deterministic here: single-threaded rayon ordering does not
        // matter because the claim is about operation *counts* after
        // convergence, which are schedule-independent on this tiny DAG of
        // dependencies... they are not in general — so we assert only that
        // eager never does *more* pushes than vanilla on this instance.)
        let g = figure_graph();
        let cfg = PprConfig::new(0, 0.5, 0.1);
        let run = |variant: PushVariant| {
            let mut st = PprState::new(cfg);
            st.ensure_len(4);
            st.set_p(0, 0.0);
            st.set_r(0, 1.0);
            let c = Counters::new();
            let mut bufs = ParPushBuffers::new();
            parallel_local_push(&g, &st, variant, &[0], &c, &mut bufs);
            assert!(st.converged());
            assert!(max_invariant_violation(&g, &st) < 1e-12);
            c.snapshot().pushes
        };
        assert!(run(PushVariant::OPT) <= run(PushVariant::VANILLA));
    }

    #[test]
    fn all_variants_agree_with_sequential_on_random_updates() {
        use crate::seq::{sequential_local_push, SeqPushBuffers};
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        let cfg = PprConfig::new(0, 0.15, 1e-3);
        let mut rng = SmallRng::seed_from_u64(5);
        // A shared random update script.
        let mut script: Vec<EdgeUpdate> = Vec::new();
        for _ in 0..400 {
            let u = rng.gen_range(0..40u32);
            let v = rng.gen_range(0..40u32);
            script.push(if rng.gen_bool(0.8) {
                EdgeUpdate::insert(u, v)
            } else {
                EdgeUpdate::delete(u, v)
            });
        }

        // Reference: sequential engine over 10-update batches.
        let mut g_ref = DynamicGraph::new();
        let mut st_ref = PprState::new(cfg);
        let c = Counters::new();
        let mut sbufs = SeqPushBuffers::new();
        for chunk in script.chunks(10) {
            let mut seeds = Vec::new();
            for &u in chunk {
                if apply_update(&mut g_ref, &mut st_ref, u, &c) {
                    seeds.push(u.src);
                }
            }
            sequential_local_push(&g_ref, &st_ref, &seeds, &c, &mut sbufs);
        }
        assert!(st_ref.converged());

        for variant in PushVariant::ALL {
            let mut g = DynamicGraph::new();
            let mut st = PprState::new(cfg);
            let mut bufs = ParPushBuffers::new();
            for chunk in script.chunks(10) {
                let mut seeds = Vec::new();
                for &u in chunk {
                    if apply_update(&mut g, &mut st, u, &c) {
                        seeds.push(u.src);
                    }
                }
                parallel_local_push(&g, &st, variant, &seeds, &c, &mut bufs);
                assert!(st.converged(), "{variant} left residuals over ε");
            }
            assert!(
                max_invariant_violation(&g, &st) < 1e-9,
                "{variant} broke the invariant"
            );
            // Both are ε-approximations of the same exact vector, so they
            // can differ by at most 2ε.
            for v in 0..40u32 {
                let d = (st.p(v) - st_ref.p(v)).abs();
                assert!(
                    d <= 2.0 * cfg.epsilon + 1e-12,
                    "{variant}: vertex {v} differs from sequential by {d}"
                );
            }
        }
    }

    #[test]
    fn empty_seed_push_is_noop() {
        let g = figure_graph();
        let st = figure_state();
        let c = Counters::new();
        let mut bufs = ParPushBuffers::new();
        parallel_local_push(&g, &st, PushVariant::OPT, &[], &c, &mut bufs);
        assert_eq!(c.snapshot().pushes, 0);
    }

    #[test]
    fn negative_batch_drains() {
        // Delete-only batch drives residuals negative; the second phase
        // must drain them for every variant.
        for variant in PushVariant::ALL {
            let mut g = figure_graph();
            let mut st = figure_state();
            // Bring the state to convergence on a bigger residual first so
            // deletions have something to subtract.
            let c = Counters::new();
            let mut bufs = ParPushBuffers::new();
            apply_update(&mut g, &mut st, EdgeUpdate::insert(0, 1), &c);
            parallel_local_push(&g, &st, variant, &[0], &c, &mut bufs);
            let mut seeds = Vec::new();
            for upd in [EdgeUpdate::delete(2, 0), EdgeUpdate::delete(2, 1)] {
                if apply_update(&mut g, &mut st, upd, &c) {
                    seeds.push(upd.src);
                }
            }
            parallel_local_push(&g, &st, variant, &seeds, &c, &mut bufs);
            assert!(st.converged(), "{variant}");
            assert!(max_invariant_violation(&g, &st) < 1e-12, "{variant}");
        }
    }
}
