//! `edgeMap` / `vertexMap` with Ligra's sparse/dense direction switching.

use crate::subset::VertexSubset;
use dppr_graph::{DynamicGraph, VertexId};
use rayon::prelude::*;

/// Which adjacency the traversal follows from a frontier vertex `u`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Traverse `u → v` for `v ∈ Nout(u)`.
    Out,
    /// Traverse `u → v` for `v ∈ Nin(u)` (the residual-push direction).
    In,
}

/// Tuning knobs for [`edge_map`].
#[derive(Debug, Clone, Copy)]
pub struct EdgeMapOptions {
    /// Dense (pull) mode is used when `|frontier| + Σ deg(frontier)`
    /// exceeds `m / dense_threshold_divisor` (Ligra uses 20).
    pub dense_threshold_divisor: usize,
    /// Force a representation regardless of the heuristic.
    pub force: Option<Mode>,
}

/// Traversal mode chosen by (or forced upon) `edge_map`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Iterate frontier vertices, push to their neighbors (needs atomics).
    Sparse,
    /// Iterate all destinations, pull from frontier members (no atomics).
    Dense,
}

impl Default for EdgeMapOptions {
    fn default() -> Self {
        EdgeMapOptions { dense_threshold_divisor: 20, force: None }
    }
}

/// Ligra's `edgeMap(G, U, F, C)`.
///
/// For every edge `(u, v)` with `u ∈ U` (along `direction`) and `C(v)`
/// true, applies the update function; `v` joins the output subset iff some
/// application returns `true`.
///
/// * `f_sparse(u, v)` runs in push mode: concurrent per destination, so it
///   must use atomics and return `true` **at most once** per `v` (the
///   CAS-claim contract of Ligra's `F`).
/// * `f_dense(u, v)` runs in pull mode: all sources of a given `v` are
///   applied by one task, so plain updates are fine; `v` joins the output
///   iff any application returns `true`.
pub fn edge_map<FS, FD, C>(
    g: &DynamicGraph,
    frontier: &mut VertexSubset,
    direction: Direction,
    opts: EdgeMapOptions,
    f_sparse: FS,
    f_dense: FD,
    cond: C,
) -> VertexSubset
where
    FS: Fn(VertexId, VertexId) -> bool + Sync,
    FD: Fn(VertexId, VertexId) -> bool + Sync,
    C: Fn(VertexId) -> bool + Sync,
{
    let n = g.num_vertices().max(frontier.universe());
    if frontier.is_empty() {
        return VertexSubset::empty(n);
    }
    let mode = opts.force.unwrap_or_else(|| {
        let ids = frontier.collect_ids();
        let work: usize = ids.len()
            + ids
                .iter()
                .map(|&u| match direction {
                    Direction::Out => g.out_degree(u),
                    Direction::In => g.in_degree(u),
                })
                .sum::<usize>();
        if work * opts.dense_threshold_divisor.max(1) > g.num_edges().max(1) {
            Mode::Dense
        } else {
            Mode::Sparse
        }
    });
    match mode {
        Mode::Sparse => edge_map_sparse(g, frontier, direction, f_sparse, cond, n),
        Mode::Dense => edge_map_dense(g, frontier, direction, f_dense, cond, n),
    }
}

fn edge_map_sparse<F, C>(
    g: &DynamicGraph,
    frontier: &mut VertexSubset,
    direction: Direction,
    f: F,
    cond: C,
    n: usize,
) -> VertexSubset
where
    F: Fn(VertexId, VertexId) -> bool + Sync,
    C: Fn(VertexId) -> bool + Sync,
{
    let out: Vec<VertexId> = frontier
        .ids()
        .par_iter()
        .with_min_len(64)
        .fold(Vec::new, |mut acc, &u| {
            let neighbors = match direction {
                Direction::Out => g.out_neighbors(u),
                Direction::In => g.in_neighbors(u),
            };
            for &v in neighbors {
                if cond(v) && f(u, v) {
                    acc.push(v);
                }
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    VertexSubset::from_sparse(n, out)
}

fn edge_map_dense<F, C>(
    g: &DynamicGraph,
    frontier: &mut VertexSubset,
    direction: Direction,
    f: F,
    cond: C,
    n: usize,
) -> VertexSubset
where
    F: Fn(VertexId, VertexId) -> bool + Sync,
    C: Fn(VertexId) -> bool + Sync,
{
    frontier.to_dense();
    let frontier = &*frontier;
    let bits: Vec<bool> = (0..n as VertexId)
        .into_par_iter()
        .with_min_len(256)
        .map(|v| {
            if !cond(v) {
                return false;
            }
            // Sources of v along `direction`: the reverse adjacency.
            let sources = match direction {
                Direction::Out => g.in_neighbors(v),
                Direction::In => g.out_neighbors(v),
            };
            let mut added = false;
            for &u in sources {
                if frontier.contains(u) && f(u, v) {
                    added = true;
                }
            }
            added
        })
        .collect();
    VertexSubset::from_dense(bits)
}

/// Ligra's `vertexMap(U, F)`: applies `f` to every member; the output
/// subset keeps the members for which `f` returned `true`.
pub fn vertex_map<F>(subset: &mut VertexSubset, f: F) -> VertexSubset
where
    F: Fn(VertexId) -> bool + Sync,
{
    let n = subset.universe();
    let out: Vec<VertexId> = subset
        .ids()
        .par_iter()
        .with_min_len(64)
        .filter(|&&v| f(v))
        .copied()
        .collect();
    VertexSubset::from_sparse(n, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

    fn diamond() -> DynamicGraph {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3
        DynamicGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    /// Parallel BFS on edge_map — exercises the abstraction the way
    /// Ligra's flagship example does.
    fn bfs(g: &DynamicGraph, root: VertexId, force: Option<Mode>) -> Vec<u32> {
        let n = g.num_vertices();
        let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
        let claimed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        dist[root as usize].store(0, Ordering::Relaxed);
        claimed[root as usize].store(true, Ordering::Relaxed);
        let mut frontier = VertexSubset::from_sparse(n, vec![root]);
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            let lvl = level;
            let next = edge_map(
                g,
                &mut frontier,
                Direction::Out,
                EdgeMapOptions { force, ..Default::default() },
                |_u, v| {
                    // sparse: claim exactly once
                    if !claimed[v as usize].swap(true, Ordering::Relaxed) {
                        dist[v as usize].store(lvl, Ordering::Relaxed);
                        true
                    } else {
                        false
                    }
                },
                |_u, v| {
                    // dense: single task per v
                    if !claimed[v as usize].load(Ordering::Relaxed) {
                        claimed[v as usize].store(true, Ordering::Relaxed);
                        dist[v as usize].store(lvl, Ordering::Relaxed);
                        true
                    } else {
                        false
                    }
                },
                |v| !claimed[v as usize].load(Ordering::Relaxed),
            );
            frontier = next;
        }
        dist.iter().map(|d| d.load(Ordering::Relaxed)).collect()
    }

    #[test]
    fn bfs_sparse_matches_dense() {
        let g = diamond();
        let sparse = bfs(&g, 0, Some(Mode::Sparse));
        let dense = bfs(&g, 0, Some(Mode::Dense));
        let auto = bfs(&g, 0, None);
        assert_eq!(sparse, vec![0, 1, 1, 2]);
        assert_eq!(sparse, dense);
        assert_eq!(sparse, auto);
    }

    #[test]
    fn in_direction_traverses_reverse_edges() {
        let g = diamond();
        let n = g.num_vertices();
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let mut frontier = VertexSubset::from_sparse(n, vec![3]);
        let out = edge_map(
            &g,
            &mut frontier,
            Direction::In,
            EdgeMapOptions { force: Some(Mode::Sparse), ..Default::default() },
            |_u, v| {
                hits[v as usize].fetch_add(1, Ordering::Relaxed);
                true
            },
            |_u, _v| unreachable!("forced sparse"),
            |_| true,
        );
        // In-neighbors of 3 are 1 and 2.
        let mut ids = out.collect_ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(hits[1].load(Ordering::Relaxed), 1);
        assert_eq!(hits[2].load(Ordering::Relaxed), 1);
        assert_eq!(hits[0].load(Ordering::Relaxed), 0);
    }

    #[test]
    fn cond_filters_destinations() {
        let g = diamond();
        let mut frontier = VertexSubset::from_sparse(g.num_vertices(), vec![0]);
        let out = edge_map(
            &g,
            &mut frontier,
            Direction::Out,
            EdgeMapOptions { force: Some(Mode::Sparse), ..Default::default() },
            |_u, _v| true,
            |_u, _v| true,
            |v| v != 2,
        );
        assert_eq!(out.collect_ids(), vec![1]);
    }

    #[test]
    fn vertex_map_filters() {
        let mut s = VertexSubset::from_sparse(6, vec![0, 1, 2, 3, 4, 5]);
        let evens = vertex_map(&mut s, |v| v % 2 == 0);
        assert_eq!(evens.collect_ids(), vec![0, 2, 4]);
    }

    #[test]
    fn empty_frontier_short_circuits() {
        let g = diamond();
        let mut empty = VertexSubset::empty(g.num_vertices());
        let out = edge_map(
            &g,
            &mut empty,
            Direction::Out,
            EdgeMapOptions::default(),
            |_u, _v| panic!("must not run"),
            |_u, _v| panic!("must not run"),
            |_| true,
        );
        assert!(out.is_empty());
    }
}
