//! Serve smoke test: spawn the real `dppr` binary with `serve` on an
//! ephemeral port, issue live queries from a raw `TcpStream` client while
//! the update stream slides, then shut it down cleanly over HTTP. This is
//! the test CI's "serve smoke" step runs.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn http(addr: &str, method: &str, target: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to dppr serve");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(conn, "{method} {target} HTTP/1.0\r\nHost: dppr\r\n\r\n").unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    raw
}

fn wait_for_exit(child: &mut Child) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("dppr serve did not exit within 30s of /shutdown");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn dppr_serve_answers_live_queries_and_shuts_down() {
    // Port 0: the server prints the actual ephemeral address first.
    let mut child = Command::new(env!("CARGO_BIN_EXE_dppr"))
        .args([
            "serve", "--preset", "toy", "--port", "0", "--threads", "2",
            "--num-sources", "2", "--batch", "50", "--slide-pause-ms", "2",
            "--epsilon", "1e-3",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dppr serve");

    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("listening line");
    let addr = line
        .trim()
        .strip_prefix("listening\thttp://")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();
    line.clear();
    stdout.read_line(&mut line).expect("graph line");
    assert!(line.starts_with("graph\t"), "unexpected line: {line:?}");
    line.clear();
    stdout.read_line(&mut line).expect("sources line");
    let sources: Vec<String> = line
        .trim()
        .strip_prefix("sources\t")
        .unwrap_or_else(|| panic!("unexpected line: {line:?}"))
        .split(',')
        .map(str::to_string)
        .collect();
    assert_eq!(sources.len(), 2);

    // Well-formed top-k and score responses for a tracked source.
    let s = &sources[0];
    let resp = http(&addr, "GET", &format!("/topk?source={s}&k=3"));
    assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
    assert!(resp.contains("Content-Type: application/json"), "{resp}");
    assert!(resp.contains("\"ranking\":[{\"vertex\":"), "{resp}");
    let resp = http(&addr, "GET", &format!("/score?source={s}&v=0"));
    assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
    assert!(
        resp.contains("\"estimate\":") && resp.contains("\"lo\":"),
        "{resp}"
    );
    // Untracked source → a clean JSON 404, not a hang or crash.
    let resp = http(&addr, "GET", "/topk?source=199999");
    assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
    assert!(resp.contains("\"error\":"), "{resp}");
    // The update loop is alive behind the queries.
    let resp = http(&addr, "GET", "/stats");
    assert!(resp.contains("\"updates_applied\":"), "{resp}");

    // Clean shutdown over HTTP: the process exits 0 and prints its report.
    let resp = http(&addr, "POST", "/shutdown");
    assert!(resp.contains("\"shutting_down\":true"), "{resp}");
    let status = wait_for_exit(&mut child);
    assert!(status.success(), "dppr serve exited with {status:?}");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("summary");
    assert!(rest.contains("queries\t"), "missing summary in: {rest}");
    assert!(rest.contains("cache_hit_rate\t"), "missing summary in: {rest}");
}
