//! Seeded random-graph generators.
//!
//! These replace the SNAP datasets of the paper's §5.1 (Pokec, LiveJournal,
//! Youtube, Orkut, Twitter), which cannot be downloaded in this environment.
//! The behaviours the evaluation depends on — heavy-tailed degree
//! distributions, small average degree, and undirected edges doubled into
//! two directed arcs — are reproduced by the Barabási–Albert and R-MAT
//! models; Erdős–Rényi is kept as a degree-homogeneous control.
//!
//! Every generator is deterministic in its `seed`.

mod ba;
mod er;
mod rmat;

pub use ba::barabasi_albert;
pub use er::erdos_renyi;
pub use rmat::{rmat, rmat_stream, RmatParams};

use crate::types::VertexId;

/// Expands an undirected edge list into directed arcs (both directions), the
/// convention the paper uses for its undirected datasets ("an undirected
/// edge update is treated as two directed updates", proof of Theorem 3).
pub fn undirected_to_directed(edges: &[(VertexId, VertexId)]) -> Vec<(VertexId, VertexId)> {
    let mut out = Vec::with_capacity(edges.len() * 2);
    for &(u, v) in edges {
        out.push((u, v));
        out.push((v, u));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_simple(edges: &[(VertexId, VertexId)]) {
        let mut seen = HashSet::new();
        for &(u, v) in edges {
            assert_ne!(u, v, "self loop {u}");
            assert!(seen.insert((u, v)), "duplicate edge ({u},{v})");
        }
    }

    #[test]
    fn er_is_simple_and_deterministic() {
        let e1 = erdos_renyi(100, 500, 7);
        let e2 = erdos_renyi(100, 500, 7);
        assert_eq!(e1, e2);
        assert_eq!(e1.len(), 500);
        check_simple(&e1);
        assert!(e1.iter().all(|&(u, v)| u < 100 && v < 100));
    }

    #[test]
    fn er_different_seed_differs() {
        assert_ne!(erdos_renyi(100, 500, 1), erdos_renyi(100, 500, 2));
    }

    #[test]
    fn er_caps_at_complete_graph() {
        // n(n-1) = 12 possible directed edges.
        let e = erdos_renyi(4, 100, 3);
        assert_eq!(e.len(), 12);
        check_simple(&e);
    }

    #[test]
    fn ba_shape() {
        let e = barabasi_albert(200, 3, 11);
        check_simple(&e);
        // Every undirected edge stored once with u != v.
        // n - m0 joining nodes each add m edges, plus the initial clique.
        assert!(e.len() >= (200 - 3) * 3);
        let e2 = barabasi_albert(200, 3, 11);
        assert_eq!(e, e2);
    }

    #[test]
    fn ba_degree_skew_exceeds_er() {
        // Preferential attachment must produce a heavier-tailed degree
        // distribution than a degree-matched ER graph.
        let ba = undirected_to_directed(&barabasi_albert(500, 4, 5));
        let m = ba.len();
        let er = erdos_renyi(500, m, 5);
        let max_deg = |edges: &[(VertexId, VertexId)]| {
            let mut d = vec![0usize; 500];
            for &(u, _) in edges {
                d[u as usize] += 1;
            }
            d.into_iter().max().unwrap()
        };
        assert!(
            max_deg(&ba) > 2 * max_deg(&er),
            "BA max degree {} not skewed vs ER {}",
            max_deg(&ba),
            max_deg(&er)
        );
    }

    #[test]
    fn rmat_shape() {
        let p = RmatParams::default();
        let e = rmat(10, 5_000, p, 99);
        assert_eq!(e.len(), 5_000);
        check_simple(&e);
        assert!(e.iter().all(|&(u, v)| u < 1024 && v < 1024));
        assert_eq!(e, rmat(10, 5_000, p, 99));
    }

    #[test]
    fn undirected_doubling() {
        let d = undirected_to_directed(&[(0, 1), (2, 3)]);
        assert_eq!(d, vec![(0, 1), (1, 0), (2, 3), (3, 2)]);
    }
}
