//! Timestamped edge streams and the sliding-window update model (§5.1).
//!
//! The paper's datasets carry no timestamps, so it "simulate[s] the random
//! edge arrival model by randomly setting the timestamps for all edges" and
//! then drives a sliding window: the first 10% of the stream initializes the
//! window; every slide of batch size `k` inserts the next `k` edges and
//! deletes the `k` oldest ones.

use crate::types::{EdgeUpdate, VertexId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An ordered sequence of *logical* edges; the position in the sequence is
/// the arrival timestamp.
///
/// For undirected datasets each logical edge expands to the two directed
/// arcs `(u→v, v→u)` inside one batch, the convention used throughout the
/// paper (an undirected update is "treated as two directed updates").
/// Undirected streams expect logical edges to be distinct as **unordered**
/// pairs — if both `(u,v)` and `(v,u)` appeared, the second insert would
/// be a no-op yet its later deletion would still remove the arcs the first
/// logical edge owns.
#[derive(Debug, Clone)]
pub struct GraphStream {
    edges: Vec<(VertexId, VertexId)>,
    undirected: bool,
}

impl GraphStream {
    /// A stream of directed edges arriving in the given order.
    pub fn directed(edges: Vec<(VertexId, VertexId)>) -> Self {
        GraphStream { edges, undirected: false }
    }

    /// A stream of undirected edges (each expands to two arcs on arrival).
    pub fn undirected(edges: Vec<(VertexId, VertexId)>) -> Self {
        GraphStream { edges, undirected: true }
    }

    /// Applies the random-edge-permutation arrival model: shuffles the
    /// logical edges with the given seed.
    pub fn permuted(mut self, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        self.edges.shuffle(&mut rng);
        self
    }

    /// Number of logical edges in the stream.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the stream holds no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether logical edges expand to two directed arcs.
    pub fn is_undirected(&self) -> bool {
        self.undirected
    }

    /// The logical edge at stream position (timestamp) `i`.
    pub fn edge_at(&self, i: usize) -> (VertexId, VertexId) {
        self.edges[i]
    }

    /// Largest vertex id mentioned anywhere in the stream, plus one.
    pub fn vertex_bound(&self) -> usize {
        self.edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Sliding-window driver over a [`GraphStream`].
///
/// The window is the half-open timestamp range `[start, end)`. Initially it
/// covers the first `init_fraction` of the stream; [`SlidingWindow::slide`]
/// advances both bounds by the batch size, emitting the corresponding
/// insertions and deletions as one update batch.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    stream: GraphStream,
    start: usize,
    end: usize,
}

impl SlidingWindow {
    /// Creates a window over the first `init_fraction` (e.g. `0.1`) of the
    /// stream. At least one edge is placed in the window if the stream is
    /// non-empty.
    pub fn new(stream: GraphStream, init_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&init_fraction),
            "init_fraction must lie in [0, 1]"
        );
        let end = ((stream.len() as f64 * init_fraction) as usize)
            .clamp(usize::from(!stream.is_empty()), stream.len());
        SlidingWindow { stream, start: 0, end }
    }

    /// Re-creates a window at an explicit `[start, end)` position, for
    /// recovery: a checkpoint records where the window stood, and the
    /// stream (being a seeded permutation) is reproducible, so the window
    /// content is fully determined by its bounds.
    pub fn resume_at(stream: GraphStream, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= stream.len(), "window [{start}, {end}) out of bounds");
        SlidingWindow { stream, start, end }
    }

    /// Window start — the logical stream position of the oldest edge
    /// still inside the window.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Window end — the logical stream position of the next arrival.
    pub fn end(&self) -> usize {
        self.end
    }

    /// The updates that build the initial window (insertions only). Engines
    /// apply these as one big batch to bootstrap from the empty graph, which
    /// the local-update invariant supports directly (see `DESIGN.md`).
    pub fn initial_updates(&self) -> Vec<EdgeUpdate> {
        let mut out = Vec::with_capacity(self.arcs_per_edge() * (self.end - self.start));
        for i in self.start..self.end {
            self.expand(i, true, &mut out);
        }
        out
    }

    /// Number of logical edges currently inside the window.
    pub fn window_len(&self) -> usize {
        self.end - self.start
    }

    /// Total logical edges in the backing stream.
    pub fn stream_len(&self) -> usize {
        self.stream.len()
    }

    /// How many more slides of batch size `k` the stream can serve.
    pub fn remaining_slides(&self, k: usize) -> usize {
        if k == 0 {
            return 0;
        }
        (self.stream.len() - self.end) / k
    }

    /// Slides the window by `k` logical edges: emits `k` insertions (the
    /// next arrivals) followed by `k` deletions (the oldest window
    /// content), exactly the paper's slide semantics. Returns `None` when
    /// fewer than `k` un-arrived edges remain.
    pub fn slide(&mut self, k: usize) -> Option<Vec<EdgeUpdate>> {
        if k == 0 || self.stream.len() - self.end < k {
            return None;
        }
        let mut batch = Vec::with_capacity(self.arcs_per_edge() * 2 * k);
        for i in self.end..self.end + k {
            self.expand(i, true, &mut batch);
        }
        for i in self.start..self.start + k {
            self.expand(i, false, &mut batch);
        }
        self.end += k;
        self.start += k;
        Some(batch)
    }

    /// The logical edges currently inside the window, oldest first.
    pub fn window_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (self.start..self.end).map(|i| self.stream.edge_at(i))
    }

    /// Access to the underlying stream.
    pub fn stream(&self) -> &GraphStream {
        &self.stream
    }

    fn arcs_per_edge(&self) -> usize {
        if self.stream.undirected {
            2
        } else {
            1
        }
    }

    fn expand(&self, i: usize, insert: bool, out: &mut Vec<EdgeUpdate>) {
        let (u, v) = self.stream.edge_at(i);
        let mk = if insert { EdgeUpdate::insert } else { EdgeUpdate::delete };
        out.push(mk(u, v));
        if self.stream.undirected {
            out.push(mk(v, u));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::DynamicGraph;
    use crate::types::EdgeOp;

    fn stream10() -> GraphStream {
        GraphStream::directed((0..10).map(|i| (i, i + 1)).collect())
    }

    #[test]
    fn permutation_is_seeded() {
        let a = stream10().permuted(3);
        let b = stream10().permuted(3);
        let c = stream10().permuted(4);
        assert_eq!(a.edges, b.edges);
        assert_ne!(a.edges, c.edges);
        let mut sorted = a.edges.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, stream10().edges);
    }

    #[test]
    fn initial_window_is_prefix() {
        let w = SlidingWindow::new(stream10(), 0.3);
        assert_eq!(w.window_len(), 3);
        let init = w.initial_updates();
        assert_eq!(init.len(), 3);
        assert!(init.iter().all(|u| u.op == EdgeOp::Insert));
        assert_eq!(init[0], EdgeUpdate::insert(0, 1));
        assert_eq!(init[2], EdgeUpdate::insert(2, 3));
    }

    #[test]
    fn tiny_fraction_still_nonempty() {
        let w = SlidingWindow::new(stream10(), 0.0);
        assert_eq!(w.window_len(), 1);
    }

    #[test]
    fn slide_inserts_then_deletes() {
        let mut w = SlidingWindow::new(stream10(), 0.3);
        let batch = w.slide(2).unwrap();
        assert_eq!(
            batch,
            vec![
                EdgeUpdate::insert(3, 4),
                EdgeUpdate::insert(4, 5),
                EdgeUpdate::delete(0, 1),
                EdgeUpdate::delete(1, 2),
            ]
        );
        assert_eq!(w.window_len(), 3);
        let edges: Vec<_> = w.window_edges().collect();
        assert_eq!(edges, vec![(2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn slide_exhaustion() {
        let mut w = SlidingWindow::new(stream10(), 0.5);
        assert_eq!(w.remaining_slides(2), 2);
        assert!(w.slide(2).is_some());
        assert!(w.slide(2).is_some());
        assert!(w.slide(2).is_none());
        assert_eq!(w.remaining_slides(2), 0);
    }

    #[test]
    fn zero_batch_slide_rejected() {
        let mut w = SlidingWindow::new(stream10(), 0.5);
        assert!(w.slide(0).is_none());
    }

    #[test]
    fn undirected_expansion() {
        let s = GraphStream::undirected(vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut w = SlidingWindow::new(s, 0.5);
        let init = w.initial_updates();
        assert_eq!(
            init,
            vec![
                EdgeUpdate::insert(0, 1),
                EdgeUpdate::insert(1, 0),
                EdgeUpdate::insert(1, 2),
                EdgeUpdate::insert(2, 1),
            ]
        );
        let batch = w.slide(1).unwrap();
        assert_eq!(
            batch,
            vec![
                EdgeUpdate::insert(2, 3),
                EdgeUpdate::insert(3, 2),
                EdgeUpdate::delete(0, 1),
                EdgeUpdate::delete(1, 0),
            ]
        );
    }

    #[test]
    fn window_replay_matches_graph() {
        // Applying init + all slide batches to a DynamicGraph must leave
        // exactly the window edges.
        let s = stream10().permuted(42);
        let mut w = SlidingWindow::new(s, 0.4);
        let mut g = DynamicGraph::new();
        for u in w.initial_updates() {
            assert!(g.apply(u));
        }
        while let Some(batch) = w.slide(3) {
            for u in batch {
                assert!(g.apply(u), "update {u:?} must take effect");
            }
        }
        let mut in_graph: Vec<_> = g.edges().collect();
        in_graph.sort_unstable();
        let mut in_window: Vec<_> = w.window_edges().collect();
        in_window.sort_unstable();
        assert_eq!(in_graph, in_window);
    }

    #[test]
    fn resume_at_reproduces_window() {
        let s = stream10().permuted(42);
        let mut w = SlidingWindow::new(s.clone(), 0.4);
        w.slide(2).unwrap();
        w.slide(2).unwrap();
        let resumed = SlidingWindow::resume_at(s, w.start(), w.end());
        let a: Vec<_> = w.window_edges().collect();
        let b: Vec<_> = resumed.window_edges().collect();
        assert_eq!(a, b);
        // initial_updates over the resumed window inserts exactly the
        // window content — the recovery graph-rebuild path.
        assert_eq!(resumed.initial_updates().len(), resumed.window_len());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn resume_at_rejects_bad_bounds() {
        SlidingWindow::resume_at(stream10(), 5, 20);
    }

    #[test]
    fn vertex_bound() {
        assert_eq!(stream10().vertex_bound(), 11);
        assert_eq!(GraphStream::directed(vec![]).vertex_bound(), 0);
    }
}
