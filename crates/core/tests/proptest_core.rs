//! Property-based tests for the core algorithmic building blocks.

use dppr_core::invariant::{apply_update, max_invariant_violation};
use dppr_core::multi::top_k_of;
use dppr_core::par::{parallel_local_push, parallel_push_lockstep, ParPushBuffers};
use dppr_core::seq::{sequential_local_push, sequential_push_lockstep, SeqPushBuffers};
use dppr_core::{exact_ppr, AtomicF64, Counters, Phase, PprConfig, PprState, PushVariant};
use dppr_graph::{DynamicGraph, EdgeOp, EdgeUpdate};
use proptest::prelude::*;

fn update_script(n: u32, len: usize) -> impl Strategy<Value = Vec<EdgeUpdate>> {
    prop::collection::vec(
        (0..n, 0..n, prop::bool::weighted(0.7)).prop_map(|(u, v, ins)| EdgeUpdate {
            src: u,
            dst: v,
            op: if ins { EdgeOp::Insert } else { EdgeOp::Delete },
        }),
        len,
    )
}

proptest! {
    // Case count pinned (the stub runner is already seed-deterministic)
    // so tier-1 wall time is stable in CI.
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// `RestoreInvariant` alone (no pushes) keeps Eq. 2 exactly satisfied
    /// after every update, for any α.
    #[test]
    fn restore_keeps_invariant(
        script in update_script(20, 150),
        alpha in 0.05f64..0.95,
    ) {
        let cfg = PprConfig::new(0, alpha, 0.1);
        let mut st = PprState::new(cfg);
        let mut g = DynamicGraph::new();
        let c = Counters::new();
        for upd in script {
            apply_update(&mut g, &mut st, upd, &c);
        }
        prop_assert!(max_invariant_violation(&g, &st) < 1e-9);
    }

    /// The sequential push preserves the invariant and drains residuals.
    #[test]
    fn seq_push_invariant_and_convergence(
        script in update_script(20, 120),
        eps_exp in 1u32..5,
    ) {
        let eps = 10f64.powi(-(eps_exp as i32));
        let cfg = PprConfig::new(0, 0.2, eps);
        let mut st = PprState::new(cfg);
        let mut g = DynamicGraph::new();
        let c = Counters::new();
        let mut seeds = Vec::new();
        for upd in script {
            if apply_update(&mut g, &mut st, upd, &c) {
                seeds.push(upd.src);
            }
        }
        let mut bufs = SeqPushBuffers::new();
        sequential_local_push(&g, &st, &seeds, &c, &mut bufs);
        prop_assert!(st.converged());
        prop_assert!(max_invariant_violation(&g, &st) < 1e-9);
    }

    /// Any parallel variant started from any restored state converges with
    /// the invariant intact and matches ground truth within ε.
    #[test]
    fn parallel_push_correct(
        script in update_script(18, 100),
        variant_idx in 0usize..4,
    ) {
        let variant = PushVariant::ALL[variant_idx];
        let eps = 1e-3;
        let cfg = PprConfig::new(1, 0.25, eps);
        let mut st = PprState::new(cfg);
        let mut g = DynamicGraph::new();
        let c = Counters::new();
        let mut seeds = Vec::new();
        for upd in script {
            if apply_update(&mut g, &mut st, upd, &c) {
                seeds.push(upd.src);
            }
        }
        let mut bufs = ParPushBuffers::new();
        parallel_local_push(&g, &st, variant, &seeds, &c, &mut bufs);
        prop_assert!(st.converged());
        prop_assert!(max_invariant_violation(&g, &st) < 1e-9);
        let truth = exact_ppr(&g, 1, 0.25, 1e-12);
        for (v, &t) in truth.iter().enumerate() {
            prop_assert!((st.p(v as u32) - t).abs() <= eps + 1e-9);
        }
    }

    /// The two lock-step schedules (Lemma 4's comparators) both converge
    /// to ε-equivalent states and the parallel one never does fewer
    /// pushes.
    #[test]
    fn lockstep_pair_properties(script in update_script(16, 80)) {
        let eps = 1e-4;
        let cfg = PprConfig::new(0, 0.3, eps);
        let build = || {
            let mut st = PprState::new(cfg);
            let mut g = DynamicGraph::new();
            let c = Counters::new();
            let mut seeds = Vec::new();
            for upd in &script {
                if apply_update(&mut g, &mut st, *upd, &c) {
                    seeds.push(upd.src);
                }
            }
            (g, st, seeds)
        };
        let (g, stp, seeds) = build();
        let tp = parallel_push_lockstep(&g, &stp, &seeds);
        let (g2, stq, seeds2) = build();
        let tq = sequential_push_lockstep(&g2, &stq, &seeds2);
        prop_assert!(stp.converged());
        prop_assert!(stq.converged());
        prop_assert!(tp.pushes >= tq.pushes || tp.pushes + 4 >= tq.pushes,
            "parallel {} vs sequential {}", tp.pushes, tq.pushes);
        for v in 0..g.num_vertices() as u32 {
            prop_assert!((stp.p(v) - stq.p(v)).abs() <= 2.0 * eps + 1e-12);
        }
    }

    /// Atomic adds with distinct before-values: the crossing of any fixed
    /// threshold is observed exactly once per monotone sequence.
    #[test]
    fn crossing_observed_exactly_once(
        increments in prop::collection::vec(1e-6f64..1e-2, 1..200),
        eps in 1e-4f64..1e-1,
    ) {
        let r = AtomicF64::new(0.0);
        let mut crossings = 0;
        for &inc in &increments {
            let pre = r.fetch_add(inc);
            if Phase::Pos.crossed(pre, pre + inc, eps) {
                crossings += 1;
            }
        }
        let total: f64 = increments.iter().sum();
        prop_assert_eq!(crossings, usize::from(total > eps));
    }

    /// `top_k_of` agrees with a full sort for every k.
    #[test]
    fn top_k_matches_sort(scores in prop::collection::vec(0.0f64..1.0, 0..64), k in 0usize..70) {
        let got = top_k_of(&scores, k);
        let mut all: Vec<(u32, f64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u32, s))
            .collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(k);
        prop_assert_eq!(got, all);
    }

    /// Ground truth sanity: the Jacobi solution satisfies its own
    /// fix-point equation to solver tolerance.
    #[test]
    fn ground_truth_is_fixpoint(script in update_script(14, 60), alpha in 0.1f64..0.9) {
        let mut g = DynamicGraph::new();
        for upd in script {
            g.apply(upd);
        }
        let p = exact_ppr(&g, 0, alpha, 1e-12);
        for v in 0..g.num_vertices() {
            let teleport = if v == 0 { alpha } else { 0.0 };
            let expect = if g.out_degree(v as u32) > 0 {
                let sum: f64 = g.out_neighbors(v as u32).iter().map(|&x| p[x as usize]).sum();
                teleport + (1.0 - alpha) * sum / g.out_degree(v as u32) as f64
            } else {
                teleport
            };
            prop_assert!((p[v] - expect).abs() < 1e-9, "vertex {} off by {}", v, (p[v]-expect).abs());
        }
    }

    /// Deleting everything returns the state to the empty-graph solution.
    #[test]
    fn teardown_returns_to_alpha_es(edges in prop::collection::hash_set((0u32..12, 0u32..12), 1..40)) {
        let edges: Vec<(u32, u32)> = edges.into_iter().filter(|&(u, v)| u != v).collect();
        let cfg = PprConfig::new(0, 0.3, 1e-3);
        let mut st = PprState::new(cfg);
        let mut g = DynamicGraph::new();
        let c = Counters::new();
        let mut seeds = Vec::new();
        for &(u, v) in &edges {
            if apply_update(&mut g, &mut st, EdgeUpdate::insert(u, v), &c) {
                seeds.push(u);
            }
        }
        let mut bufs = ParPushBuffers::new();
        parallel_local_push(&g, &st, PushVariant::OPT, &seeds, &c, &mut bufs);
        let mut seeds = Vec::new();
        for &(u, v) in &edges {
            if apply_update(&mut g, &mut st, EdgeUpdate::delete(u, v), &c) {
                seeds.push(u);
            }
        }
        parallel_local_push(&g, &st, PushVariant::OPT, &seeds, &c, &mut bufs);
        prop_assert_eq!(g.num_edges(), 0);
        prop_assert!((st.p(0) - 0.3).abs() <= 1e-3 + 1e-9);
        for v in 1..st.len() as u32 {
            prop_assert!(st.p(v).abs() <= 1e-3 + 1e-9);
        }
    }
}
