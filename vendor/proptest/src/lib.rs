//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small API-compatible shim instead (see `vendor/README.md`).
//! Supported surface:
//!
//! * the [`proptest!`] macro, with an optional
//!   `#![proptest_config(ProptestConfig { .. })]` header;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * strategies: integer and float ranges, tuples (arity ≤ 4),
//!   [`strategy::Just`], `prop::collection::vec`, `prop::bool::weighted`,
//!   `prop::bool::ANY`, and [`strategy::Strategy::prop_map`].
//!
//! Differences from real proptest:
//!
//! * **No shrinking.** A failing case reports its case index and RNG
//!   seed instead of a minimized input; rerun with
//!   `PROPTEST_STUB_SEED=<seed>` to replay just that case.
//! * **Deterministic by construction.** Case seeds are derived from the
//!   test name, the case index, and `Config::rng_seed` (default 0) — no
//!   wall-clock entropy, so CI runs are reproducible without
//!   `proptest-regressions` files.

pub mod strategy;
pub mod test_runner;

/// Strategy modules, re-exported under `prop::` by the prelude as in
/// the real crate.
pub mod bool;
pub mod collection;
pub mod num;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` module alias used as `prop::collection::vec(..)` etc.
    pub mod prop {
        pub use crate::{bool, collection, num};
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run(&config, stringify!($name), |__stub_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __stub_rng);)+
                    let __stub_result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    __stub_result
                });
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), format!($($fmt)+), lhs, rhs
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), lhs
        );
    }};
}
