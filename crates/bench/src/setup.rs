//! Workload and engine construction shared across experiment binaries.

use dppr_core::{DynamicPprEngine, ParallelEngine, PprConfig, PushVariant, SeqEngine, UpdateMode};
use dppr_graph::presets::Dataset;
use dppr_graph::{DynamicGraph, VertexId};
use dppr_mc::MonteCarloEngine;
use dppr_stream::{pick_top_degree_source, StreamDriver};
use dppr_vc::LigraEngine;

/// How large a run the experiment binaries should do. `Quick` keeps every
/// figure reproducible in seconds; `Full` mirrors the paper's relative
/// scales (minutes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Small datasets, few slides — CI-friendly smoke scale.
    Quick,
    /// The preset datasets at their configured sizes.
    Full,
}

impl ExperimentScale {
    /// Parses `--quick` / `--full` style argv; defaults to `Quick`.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            ExperimentScale::Full
        } else {
            ExperimentScale::Quick
        }
    }

    /// Datasets to sweep at this scale.
    pub fn datasets(self) -> Vec<Dataset> {
        use dppr_graph::presets;
        match self {
            ExperimentScale::Quick => vec![
                presets::small_sim(),
                presets::youtube_sim(),
            ],
            ExperimentScale::Full => presets::all(),
        }
    }

    /// Number of slides to average over (paper: 100, or 10 for Twitter).
    pub fn slides(self) -> usize {
        match self {
            ExperimentScale::Quick => 10,
            ExperimentScale::Full => 50,
        }
    }
}

/// The engine line-up of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Sequential push, per-update synchronization.
    CpuBase,
    /// Sequential push, batched restore.
    CpuSeq,
    /// Parallel push with the given variant.
    CpuMt(PushVariant),
    /// Incremental Monte-Carlo with `walks_per_vertex × |V|` walks.
    MonteCarlo { walks_per_vertex: usize },
    /// Vertex-centric (Ligra-style) implementation.
    Ligra,
}

impl EngineKind {
    /// Display label matching the paper's legends.
    pub fn label(self) -> String {
        match self {
            EngineKind::CpuBase => "CPU-Base".into(),
            EngineKind::CpuSeq => "CPU-Seq".into(),
            EngineKind::CpuMt(v) => format!("CPU-MT[{v}]"),
            EngineKind::MonteCarlo { .. } => "Monte-Carlo".into(),
            EngineKind::Ligra => "Ligra".into(),
        }
    }
}

/// Builds an engine for a graph with `num_vertices` vertices.
pub fn build_engine(
    kind: EngineKind,
    cfg: PprConfig,
    num_vertices: usize,
    seed: u64,
) -> Box<dyn DynamicPprEngine> {
    match kind {
        EngineKind::CpuBase => Box::new(SeqEngine::new(cfg, UpdateMode::PerUpdate)),
        EngineKind::CpuSeq => Box::new(SeqEngine::new(cfg, UpdateMode::Batched)),
        EngineKind::CpuMt(variant) => Box::new(ParallelEngine::new(cfg, variant)),
        EngineKind::MonteCarlo { walks_per_vertex } => Box::new(MonteCarloEngine::new(
            cfg,
            (walks_per_vertex * num_vertices).max(1_000),
            seed,
        )),
        EngineKind::Ligra => Box::new(LigraEngine::new(cfg)),
    }
}

/// A fully prepared workload: stream, chosen source, and sizing info.
pub struct Workload {
    /// Dataset name.
    pub name: String,
    /// The timestamped stream (undirectedness already encoded).
    pub dataset: Dataset,
    /// Stream permutation seed.
    pub seed: u64,
    /// Chosen source vertex.
    pub source: VertexId,
    /// Vertex bound of the stream.
    pub num_vertices: usize,
    /// Logical edges in the initial window.
    pub window_len: usize,
}

impl Workload {
    /// Prepares a workload: permutes the stream, materializes the initial
    /// window once to choose a source from the `top_bucket` largest
    /// out-degrees, and records sizing.
    pub fn prepare(dataset: Dataset, seed: u64, init_fraction: f64, top_bucket: usize) -> Self {
        let stream = dataset.stream(seed);
        let window = dppr_graph::SlidingWindow::new(stream, init_fraction);
        let mut g0 = DynamicGraph::new();
        for upd in window.initial_updates() {
            g0.apply(upd);
        }
        let source = pick_top_degree_source(&g0, top_bucket, seed ^ 0xABCD);
        Workload {
            name: dataset.name.to_string(),
            num_vertices: window.stream().vertex_bound(),
            window_len: window.window_len(),
            dataset,
            seed,
            source,
        }
    }

    /// A fresh driver over this workload's stream.
    pub fn driver(&self, init_fraction: f64) -> StreamDriver {
        StreamDriver::new(self.dataset.stream(self.seed), init_fraction)
    }

    /// Default ε for the dataset.
    pub fn epsilon(&self) -> f64 {
        self.dataset.default_epsilon
    }

    /// A config with the paper's default α.
    pub fn config(&self, epsilon: f64) -> PprConfig {
        PprConfig::new(self.source, 0.15, epsilon)
    }
}

/// Runs `kind` over `workload` and returns the slide summary. One fresh
/// driver and engine per call, so engines never share state.
pub fn run_engine(
    kind: EngineKind,
    workload: &Workload,
    epsilon: f64,
    batch: usize,
    max_slides: usize,
    budget: std::time::Duration,
) -> dppr_stream::RunSummary {
    let cfg = workload.config(epsilon);
    let mut engine = build_engine(kind, cfg, workload.num_vertices, workload.seed);
    let mut driver = workload.driver(0.1);
    driver.bootstrap(engine.as_mut());
    let mut summary = dppr_stream::RunSummary {
        engine: engine.name(),
        slides: 0,
        total_updates: 0,
        total_latency: std::time::Duration::ZERO,
        records: Vec::new(),
    };
    // Slide until either cap is hit.
    for _ in 0..max_slides {
        if summary.total_latency >= budget {
            break;
        }
        let mut part = driver.run_slides(engine.as_mut(), batch, 1);
        if part.slides == 0 {
            break;
        }
        summary.slides += part.slides;
        summary.total_updates += part.total_updates;
        summary.total_latency += part.total_latency;
        summary.records.append(&mut part.records);
    }
    summary
}

/// Formats a `Duration` as fractional milliseconds for TSV output.
pub fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Criterion helper: accumulates the engine-reported latency of `iters`
/// window slides, rebuilding (and **not** timing) a fresh bootstrapped run
/// whenever the stream is exhausted.
pub fn time_slides(
    mut make_engine: impl FnMut() -> Box<dyn DynamicPprEngine>,
    workload: &Workload,
    batch: usize,
    iters: u64,
) -> std::time::Duration {
    let mut total = std::time::Duration::ZERO;
    let mut done = 0u64;
    while done < iters {
        let mut engine = make_engine();
        let mut driver = workload.driver(0.1);
        driver.bootstrap(engine.as_mut());
        loop {
            if done == iters {
                return total;
            }
            let part = driver.run_slides(engine.as_mut(), batch, 1);
            if part.slides == 0 {
                break; // stream exhausted; rebuild outside the clock
            }
            total += part.total_latency;
            done += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use dppr_graph::presets;

    #[test]
    fn workload_preparation_is_deterministic() {
        let a = Workload::prepare(presets::toy(), 3, 0.1, 10);
        let b = Workload::prepare(presets::toy(), 3, 0.1, 10);
        assert_eq!(a.source, b.source);
        assert_eq!(a.window_len, b.window_len);
        assert!(a.window_len > 0);
    }

    #[test]
    fn engine_labels() {
        assert_eq!(EngineKind::CpuBase.label(), "CPU-Base");
        assert_eq!(EngineKind::CpuMt(PushVariant::OPT).label(), "CPU-MT[Opt]");
    }

    #[test]
    fn build_each_engine_kind() {
        let cfg = PprConfig::new(0, 0.15, 1e-3);
        for kind in [
            EngineKind::CpuBase,
            EngineKind::CpuSeq,
            EngineKind::CpuMt(PushVariant::OPT),
            EngineKind::MonteCarlo { walks_per_vertex: 1 },
            EngineKind::Ligra,
        ] {
            let e = build_engine(kind, cfg, 100, 1);
            assert!(!e.name().is_empty());
        }
    }
}
