//! End-to-end test of the HTTP front end, in-process: a real server on an
//! ephemeral port, a plain `TcpStream` client, every endpoint exercised
//! while the write loop slides in the background.

use dppr_graph::generators::erdos_renyi;
use dppr_graph::GraphStream;
use dppr_serve::{start, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn request(addr: SocketAddr, method: &str, target: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(conn, "{method} {target} HTTP/1.0\r\nHost: dppr\r\n\r\n").unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    request(addr, "GET", target)
}

#[test]
fn start_rejects_out_of_bound_sources() {
    let stream = GraphStream::directed(erdos_renyi(50, 400, 1)).permuted(1);
    match start(stream, 0.1, &[0, 4_000_000_000], ServeConfig::default()) {
        Err(e) => assert!(e.to_string().contains("vertex bound"), "{e}"),
        Ok(_) => panic!("out-of-bound source must be rejected"),
    }
}

#[test]
fn serves_every_endpoint_while_sliding() {
    let stream = GraphStream::directed(erdos_renyi(200, 6_000, 21)).permuted(5);
    let handle = start(
        stream,
        0.1,
        &[0, 5],
        ServeConfig {
            threads: 3,
            batch: 200,
            epsilon: 1e-3,
            max_slides: 8, // freeze the epoch afterwards → deterministic cache hits
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    // Health and initial sessions are live before start() returns.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\":true"), "{body}");
    let (status, body) = get(addr, "/sessions");
    assert_eq!(status, 200);
    assert!(body.contains("\"sessions\":[0,5]"), "{body}");

    // Queries against both sessions, concurrently with the write loop.
    let (status, body) = get(addr, "/topk?source=0&k=5");
    assert_eq!(status, 200);
    assert!(body.contains("\"ranking\":[{\"vertex\":"), "{body}");
    assert!(body.contains("\"set_is_certain\":"), "{body}");
    let (status, body) = get(addr, "/score?source=5&v=0");
    assert_eq!(status, 200);
    assert!(body.contains("\"estimate\":"), "{body}");
    assert!(body.contains("\"lo\":") && body.contains("\"hi\":"), "{body}");
    let (status, body) = get(addr, "/threshold?source=0&delta=0.01");
    assert_eq!(status, 200);
    assert!(body.contains("\"certain\":[") && body.contains("\"possible\":["), "{body}");
    let (status, body) = get(addr, "/compare?source=0&a=1&b=2");
    assert_eq!(status, 200);
    assert!(body.contains("\"order\":\""), "{body}");

    // Error paths: unknown session, missing/invalid params, bad endpoint.
    let (status, body) = get(addr, "/topk?source=77");
    assert_eq!(status, 404);
    assert!(body.contains("no open session for source 77"), "{body}");
    let (status, _) = get(addr, "/topk");
    assert_eq!(status, 400);
    let (status, _) = get(addr, "/score?source=0&v=zebra");
    assert_eq!(status, 400);
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);

    // Opening a session beyond the stream's vertex bound is rejected up
    // front (an unchecked id would cold-start a source+1-sized state).
    let (status, body) = request(addr, "POST", "/session/open?source=4000000000");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("vertex bound"), "{body}");

    // Session lifecycle over HTTP: open a new source, wait for the write
    // loop to apply it between batches, query it, close it again.
    let (status, body) = request(addr, "POST", "/session/open?source=9");
    assert_eq!(status, 200);
    assert!(body.contains("\"accepted\":true"), "{body}");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = get(addr, "/topk?source=9&k=3");
        if status == 200 {
            assert!(body.contains("\"ranking\""), "{body}");
            break;
        }
        assert!(Instant::now() < deadline, "session 9 never opened");
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, _) = request(addr, "POST", "/session/close?source=9");
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(10);
    while get(addr, "/topk?source=9&k=3").0 != 404 {
        assert!(Instant::now() < deadline, "session 9 never closed");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Wait for the slide cap; the epoch freezes, so a repeated identical
    // query must be served from the cache.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, body) = get(addr, "/stats");
        if body.contains("\"slides\":8") {
            break;
        }
        assert!(Instant::now() < deadline, "write loop never hit max_slides: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let hits_before = handle.cache().stats().hits;
    let (_, first) = get(addr, "/topk?source=0&k=7");
    let (_, second) = get(addr, "/topk?source=0&k=7");
    assert_eq!(first, second);
    assert!(
        handle.cache().stats().hits > hits_before,
        "frozen-epoch repeat query did not hit the cache"
    );

    // Stats reflect the traffic; shutdown over HTTP stops everything.
    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(body.contains("\"queries\":"), "{body}");
    assert!(body.contains("\"hit_rate\":"), "{body}");
    let (status, body) = request(addr, "POST", "/shutdown");
    assert_eq!(status, 200);
    assert!(body.contains("\"shutting_down\":true"), "{body}");
    assert!(handle.is_shutdown());
    let report = handle.join();
    assert_eq!(report.slides, 8);
    assert!(report.queries >= 10);
    assert!(report.updates_applied > 0);
    assert!(report.epoch >= 9); // bootstrap + 8 slides
    assert!(report.cache.hits >= 1);
}
