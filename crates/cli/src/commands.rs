//! Subcommand implementations. All return the text to print.

use crate::args::{err, Args, CliError};
use dppr_core::{
    exact_ppr, queries, DynamicPprEngine, ParallelEngine, PprConfig, PushVariant, SeqEngine,
    UpdateMode,
};
use dppr_graph::{generators, io, presets, DynamicGraph, GraphStream, VertexId};
use dppr_mc::MonteCarloEngine;
use dppr_stream::{pick_top_degree_source, StreamDriver};
use dppr_vc::LigraEngine;
use std::fmt::Write as _;

/// `dppr generate` — write a synthetic edge list.
pub fn generate(args: &Args) -> Result<String, CliError> {
    let model = args.get_or("model", "ba");
    let n: u32 = args.get_parsed("n", 10_000u32)?;
    let m: usize = args.get_parsed("m", 5usize)?;
    let seed: u64 = args.get_parsed("seed", 1u64)?;
    let out = args.require("out")?;
    let (edges, desc) = match model {
        "ba" => (
            generators::undirected_to_directed(&generators::barabasi_albert(n, m, seed)),
            format!("barabasi-albert n={n} m={m} seed={seed} (directed arcs)"),
        ),
        "er" => (
            generators::erdos_renyi(n, m, seed),
            format!("erdos-renyi n={n} m={m} seed={seed}"),
        ),
        "rmat" => {
            let scale = (32 - n.next_power_of_two().leading_zeros() - 1).max(1);
            (
                generators::rmat(scale, m, generators::RmatParams::default(), seed),
                format!("rmat scale={scale} m={m} seed={seed}"),
            )
        }
        other => return Err(err(format!("unknown model {other:?} (ba|er|rmat)"))),
    };
    io::write_edge_list(out, &edges, &desc)
        .map_err(|e| err(format!("writing {out}: {e}")))?;
    Ok(format!("wrote {} arcs to {out} ({desc})\n", edges.len()))
}

/// (edges, undirected?, display name) triple loaded by `load_edges`.
type LoadedGraph = (Vec<(u32, u32)>, bool, String);

/// Loads a graph source shared by `info`, `query`, `exact`.
fn load_edges(args: &Args) -> Result<LoadedGraph, CliError> {
    if let Some(name) = args.get("preset") {
        let ds = presets::by_name(name)
            .ok_or_else(|| err(format!("unknown preset {name:?}")))?;
        let undirected = ds.undirected;
        Ok((ds.edges, undirected, name.to_string()))
    } else if let Some(path) = args.get("graph") {
        let edges =
            io::read_edge_list(path).map_err(|e| err(format!("reading {path}: {e}")))?;
        Ok((edges, args.flag("undirected"), path.to_string()))
    } else {
        Err(err("need --preset NAME or --graph FILE"))
    }
}

fn materialize(edges: &[(u32, u32)], undirected: bool) -> DynamicGraph {
    let mut g = DynamicGraph::new();
    for &(u, v) in edges {
        g.insert_edge(u, v);
        if undirected {
            g.insert_edge(v, u);
        }
    }
    g
}

/// `dppr info` — graph statistics including degree-distribution shape.
pub fn info(args: &Args) -> Result<String, CliError> {
    let (edges, undirected, name) = load_edges(args)?;
    let g = materialize(&edges, undirected);
    let mut out = String::new();
    writeln!(out, "graph\t{name}").unwrap();
    writeln!(out, "active_vertices\t{}", g.active_vertices()).unwrap();
    let ss = g.substrate_stats();
    writeln!(out, "hub_vertices\t{}", ss.hub_vertices).unwrap();
    writeln!(
        out,
        "pool_slots\t{} (live {}, dead {})",
        ss.arena_slots, ss.live_slots, ss.dead_slots
    )
    .unwrap();
    write!(out, "{}", dppr_graph::stats::degree_stats(&g)).unwrap();
    Ok(out)
}

fn parse_variant(raw: &str) -> Result<PushVariant, CliError> {
    match raw.to_ascii_lowercase().as_str() {
        "opt" => Ok(PushVariant::OPT),
        "eager" => Ok(PushVariant::EAGER),
        "dupdetect" | "dup-detect" => Ok(PushVariant::DUP_DETECT),
        "vanilla" => Ok(PushVariant::VANILLA),
        other => Err(err(format!("unknown variant {other:?}"))),
    }
}

/// `dppr run` — sliding-window streaming through a chosen engine.
pub fn run(args: &Args) -> Result<String, CliError> {
    let (edges, undirected, name) = load_edges(args)?;
    let seed: u64 = args.get_parsed("seed", 1u64)?;
    let alpha: f64 = args.get_finite("alpha", 0.15)?;
    let epsilon: f64 = args.get_finite("epsilon", 1e-5)?;
    let batch: usize = args.get_parsed("batch", 1_000usize)?;
    let slides: usize = args.get_parsed("slides", 10usize)?;

    let stream = if undirected {
        GraphStream::undirected(edges)
    } else {
        GraphStream::directed(edges)
    }
    .permuted(seed);

    // Source: explicit id, or drawn from a top-degree bucket of the warmed
    // window (the paper's methodology).
    let source: VertexId = if let Some(raw) = args.get("source") {
        raw.parse().map_err(|_| err(format!("bad --source {raw:?}")))?
    } else {
        let bucket: usize = args.get_parsed("top-bucket", 1_000usize)?;
        let window = dppr_graph::SlidingWindow::new(stream.clone(), 0.1);
        let mut probe = DynamicGraph::new();
        for upd in window.initial_updates() {
            probe.apply(upd);
        }
        pick_top_degree_source(&probe, bucket, seed ^ 0xABCD)
    };
    let cfg = PprConfig::new(source, alpha, epsilon);

    let engine_name = args.get_or("engine", "cpu-mt");
    let mut engine: Box<dyn DynamicPprEngine> = match engine_name {
        "cpu-base" => Box::new(SeqEngine::new(cfg, UpdateMode::PerUpdate)),
        "cpu-seq" => Box::new(SeqEngine::new(cfg, UpdateMode::Batched)),
        "cpu-mt" => {
            let variant = parse_variant(args.get_or("variant", "opt"))?;
            let threads: usize = args.get_parsed("threads", 0usize)?;
            if threads > 0 {
                Box::new(ParallelEngine::with_threads(cfg, variant, threads))
            } else {
                Box::new(ParallelEngine::new(cfg, variant))
            }
        }
        "ligra" => Box::new(LigraEngine::new(cfg)),
        "mc" => {
            let wpv: usize = args.get_parsed("walks-per-vertex", 6usize)?;
            let n = stream.vertex_bound();
            Box::new(MonteCarloEngine::new(cfg, (wpv * n).max(1_000), seed))
        }
        other => return Err(err(format!("unknown engine {other:?}"))),
    };

    let mut driver = StreamDriver::new(stream, 0.1);
    let boot = driver.bootstrap(engine.as_mut());
    let summary = driver.run_slides(engine.as_mut(), batch, slides);

    let mut out = String::new();
    writeln!(out, "graph\t{name}\nengine\t{}", engine.name()).unwrap();
    writeln!(out, "source\t{source}\nalpha\t{alpha}\nepsilon\t{epsilon:e}").unwrap();
    writeln!(
        out,
        "bootstrap_arcs\t{}\nbootstrap_ms\t{:.2}",
        boot.applied,
        boot.latency.as_secs_f64() * 1e3
    )
    .unwrap();
    writeln!(
        out,
        "slides\t{}\nbatch\t{batch}\nmean_slide_ms\t{:.3}\nmax_slide_ms\t{:.3}\nupdates_per_sec\t{:.0}",
        summary.slides,
        summary.mean_latency().as_secs_f64() * 1e3,
        summary.max_latency().as_secs_f64() * 1e3,
        summary.throughput(),
    )
    .unwrap();
    if args.flag("counters") {
        writeln!(out, "counters\t{}", summary.total_counters()).unwrap();
    }
    let top: usize = args.get_parsed("top", 10usize)?;
    writeln!(out, "top_{top}_by_ppr").unwrap();
    let scores = engine.estimates();
    for (v, p) in dppr_core::multi::top_k_of(&scores, top) {
        writeln!(out, "  {v}\t{p:.8}").unwrap();
    }
    Ok(out)
}

/// `dppr query` — maintain over the whole graph, then answer ε-aware
/// queries.
pub fn query(args: &Args) -> Result<String, CliError> {
    let (edges, undirected, name) = load_edges(args)?;
    let source: VertexId = args.get_parsed("source", 0u32)?;
    let alpha: f64 = args.get_finite("alpha", 0.15)?;
    let epsilon: f64 = args.get_finite("epsilon", 1e-5)?;
    let cfg = PprConfig::new(source, alpha, epsilon);
    let mut engine = ParallelEngine::new(cfg, PushVariant::OPT);
    let mut g = DynamicGraph::new();
    let mut batch = Vec::with_capacity(edges.len() * 2);
    for &(u, v) in &edges {
        batch.push(dppr_graph::EdgeUpdate::insert(u, v));
        if undirected {
            batch.push(dppr_graph::EdgeUpdate::insert(v, u));
        }
    }
    engine.apply_batch(&mut g, &batch);

    let mut out = String::new();
    writeln!(out, "graph\t{name}\nsource\t{source}\nepsilon\t{epsilon:e}").unwrap();
    let k: usize = args.get_parsed("top", 10usize)?;
    let ans = queries::top_k(engine.state(), k);
    writeln!(
        out,
        "top_{k} (set_is_certain={})\nvertex\testimate\tlo\thi",
        ans.set_is_certain
    )
    .unwrap();
    for b in &ans.ranking {
        writeln!(out, "{}\t{:.8}\t{:.8}\t{:.8}", b.vertex, b.estimate, b.lo, b.hi).unwrap();
    }
    if args.get("threshold").is_some() {
        let delta: f64 = args.get_finite("threshold", 0.0)?;
        let t = queries::above_threshold(engine.state(), delta);
        writeln!(
            out,
            "threshold_{delta}: {} certain, {} possible",
            t.certain.len(),
            t.possible.len()
        )
        .unwrap();
    }
    if let Some(path) = args.get("save-state") {
        dppr_core::persist::save_state(engine.state(), path)
            .map_err(|e| err(format!("writing {path}: {e}")))?;
        writeln!(out, "state_saved\t{path}").unwrap();
    }
    Ok(out)
}

/// Parses `--sources 0,3,9`, or picks `--num-sources K` top-out-degree
/// vertices from the warmed initial window.
fn serve_sources(args: &Args, stream: &GraphStream) -> Result<Vec<VertexId>, CliError> {
    if let Some(raw) = args.get("sources") {
        raw.split(',')
            .map(|t| {
                t.trim()
                    .parse::<VertexId>()
                    .map_err(|_| err(format!("bad vertex id in --sources: {t:?}")))
            })
            .collect()
    } else {
        let k: usize = args.get_parsed("num-sources", 4usize)?;
        Ok(dppr_serve::pick_top_degree_sources(stream, SERVE_INIT_FRACTION, k))
    }
}

/// The sliding-window warmup share `dppr serve` boots with, shared with
/// the source-picking probe (see `dppr_serve::pick_top_degree_sources`).
const SERVE_INIT_FRACTION: f64 = 0.1;

/// Parses the durability flags: `--data-dir DIR` switches the WAL +
/// checkpoint machinery on; `--fsync batch|off|interval:<ms>`,
/// `--checkpoint-every N`, and `--segment-kb KB` tune it.
fn serve_durability(args: &Args) -> Result<Option<dppr_serve::DurabilityConfig>, CliError> {
    let Some(dir) = args.get("data-dir") else {
        for k in ["fsync", "checkpoint-every", "segment-kb"] {
            if args.get(k).is_some() {
                return Err(err(format!("--{k} requires --data-dir")));
            }
        }
        return Ok(None);
    };
    let mut cfg = dppr_serve::DurabilityConfig::new(dir);
    if let Some(raw) = args.get("fsync") {
        cfg.fsync = dppr_serve::FsyncPolicy::parse(raw).map_err(err)?;
    }
    cfg.checkpoint_every_slides = args.get_parsed("checkpoint-every", cfg.checkpoint_every_slides)?;
    let segment_kb: u64 = args.get_parsed("segment-kb", cfg.segment_bytes / 1024)?;
    if segment_kb == 0 {
        return Err(err("--segment-kb must be positive"));
    }
    cfg.segment_bytes = segment_kb * 1024;
    Ok(Some(cfg))
}

/// `dppr serve` — the concurrent query-serving subsystem: background
/// window slides + epoch-published snapshots + HTTP front end.
///
/// Prints `listening` and `sources` lines to stdout immediately (so
/// scripts and the CI smoke test can find the ephemeral port), then blocks
/// until `POST /shutdown` arrives or `--run-secs` elapses, and returns the
/// final serve report.
pub fn serve(args: &Args) -> Result<String, CliError> {
    use std::io::Write as _;

    let (edges, undirected, name) = load_edges(args)?;
    let seed: u64 = args.get_parsed("seed", 1u64)?;
    let cfg = dppr_serve::ServeConfig {
        port: args.get_parsed("port", 7171u16)?,
        threads: args.get_parsed("threads", 4usize)?,
        cache_capacity: args.get_parsed("cache-capacity", 1024usize)?,
        session_capacity: args.get_parsed("session-capacity", 64usize)?,
        write_shards: args.get_parsed("write-shards", 1usize)?,
        alpha: args.get_finite("alpha", 0.15)?,
        epsilon: args.get_finite("epsilon", 1e-4)?,
        batch: args.get_parsed("batch", 500usize)?,
        max_slides: args.get_parsed("max-slides", 0usize)?,
        slide_pause: std::time::Duration::from_millis(
            args.get_parsed("slide-pause-ms", 0u64)?,
        ),
        read_timeout: std::time::Duration::from_millis(
            args.get_parsed("read-timeout-ms", 10_000u64)?,
        ),
        write_timeout: std::time::Duration::from_millis(
            args.get_parsed("write-timeout-ms", 10_000u64)?,
        ),
        shed_after: std::time::Duration::from_millis(args.get_parsed("shed-after-ms", 1_000u64)?),
        conn_backlog: args.get_parsed("conn-backlog", 256usize)?,
        durability: serve_durability(args)?,
        trace_sample: args.get_parsed("trace-sample", 0u64)?,
        trace_capacity: args.get_parsed("trace-capacity", 1024usize)?,
        audit_sample: args.get_parsed("audit-sample", 0usize)?,
        audit_interval: std::time::Duration::from_millis(
            args.get_parsed("audit-interval-ms", 500u64)?,
        ),
        slo_p99: std::time::Duration::from_secs_f64(
            args.get_finite("slo-p99-ms", 0.0)?.max(0.0) / 1e3,
        ),
        slo_availability: args.get_finite("slo-availability", 0.0)?,
        slo_topk_overlap: args.get_finite("slo-topk-overlap", 0.0)?,
    };
    let run_secs: u64 = args.get_parsed("run-secs", 0u64)?;

    let stream = if undirected {
        GraphStream::undirected(edges)
    } else {
        GraphStream::directed(edges)
    }
    .permuted(seed);
    let sources = serve_sources(args, &stream)?;

    let handle = dppr_serve::start(stream, SERVE_INIT_FRACTION, &sources, cfg)
        .map_err(|e| err(format!("starting server: {e}")))?;
    let sources_csv = sources
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    println!("listening\thttp://{}", handle.addr());
    println!("graph\t{name}\nsources\t{sources_csv}");
    for (i, r) in handle.recoveries().iter().enumerate() {
        let Some(r) = r else { continue };
        println!(
            "recovered\tshard={i} checkpoint_epoch={} replayed_batches={} epoch={} window=[{}, {})",
            r.checkpoint_epoch, r.replayed_batches, r.recovered_epoch, r.window_start, r.window_end
        );
    }
    let _ = std::io::stdout().flush();

    dppr_serve::signals::install();
    let started = std::time::Instant::now();
    while !handle.is_shutdown() && !dppr_serve::signals::triggered() {
        if run_secs > 0 && started.elapsed().as_secs() >= run_secs {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    // On shutdown (signal, /shutdown, or --run-secs) dump the sampled
    // trace ring to stderr so the last events survive the process; stdout
    // stays parseable for scripts.
    if handle.metrics().trace_requests.enabled() {
        let dump = handle.trace_dump();
        if !dump.is_empty() {
            eprintln!("{dump}");
        }
    }
    let report = handle.join();

    let mut out = String::new();
    writeln!(out, "epoch\t{}", report.epoch).unwrap();
    writeln!(
        out,
        "slides\t{}\nupdates_applied\t{}\nupdates_per_sec\t{:.0}",
        report.slides, report.updates_applied, report.updates_per_sec
    )
    .unwrap();
    writeln!(
        out,
        "queries\t{}\ncache_hit_rate\t{:.3}\nsessions\t{}",
        report.queries,
        report.cache.hit_rate(),
        report.sessions
    )
    .unwrap();
    if args.get("data-dir").is_some() {
        writeln!(
            out,
            "durable_epoch\t{}\ncheckpoints\t{}\ndegraded\t{}",
            report.durable_epoch, report.checkpoints, report.degraded
        )
        .unwrap();
    }
    Ok(out)
}

/// `dppr exact` — Gauss–Jacobi ground truth.
pub fn exact(args: &Args) -> Result<String, CliError> {
    let (edges, undirected, name) = load_edges(args)?;
    let source: VertexId = args.get_parsed("source", 0u32)?;
    let alpha: f64 = args.get_finite("alpha", 0.15)?;
    let g = materialize(&edges, undirected);
    let p = exact_ppr(&g, source, alpha, 1e-12);
    let k: usize = args.get_parsed("top", 10usize)?;
    let mut out = String::new();
    writeln!(out, "graph\t{name}\nsource\t{source}\nalpha\t{alpha}").unwrap();
    for (v, score) in dppr_core::multi::top_k_of(&p, k) {
        writeln!(out, "{v}\t{score:.10}").unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn tmpfile(name: &str) -> String {
        let dir = std::env::temp_dir().join("dppr_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_then_info_roundtrip() {
        let path = tmpfile("gen_ba.txt");
        let a = Args::parse([
            "generate", "--model", "ba", "--n", "200", "--m", "3", "--seed", "5", "--out",
            &path,
        ])
        .unwrap();
        let msg = generate(&a).unwrap();
        assert!(msg.contains("arcs"));
        let a = Args::parse(["info", "--graph", &path]).unwrap();
        let report = info(&a).unwrap();
        assert!(report.contains("vertices\t200"));
        assert!(report.contains("mean_out_degree"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generate_rejects_unknown_model() {
        let path = tmpfile("never.txt");
        let a =
            Args::parse(["generate", "--model", "tree", "--out", &path]).unwrap();
        assert!(generate(&a).is_err());
    }

    #[test]
    fn run_on_preset_smoke() {
        let a = Args::parse([
            "run", "--preset", "toy", "--engine", "cpu-mt", "--variant", "opt", "--batch",
            "50", "--slides", "3", "--epsilon", "1e-4", "--counters",
        ])
        .unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("engine\tCPU-MT[Opt]"));
        assert!(out.contains("slides\t3"));
        assert!(out.contains("counters\t"));
        assert!(out.contains("top_10_by_ppr"));
    }

    #[test]
    fn run_each_engine_kind() {
        for (engine, expect) in [
            ("cpu-base", "CPU-Base"),
            ("cpu-seq", "CPU-Seq"),
            ("ligra", "Ligra"),
            ("mc", "Monte-Carlo"),
        ] {
            let a = Args::parse([
                "run", "--preset", "toy", "--engine", engine, "--batch", "50", "--slides",
                "2", "--epsilon", "1e-3", "--walks-per-vertex", "1",
            ])
            .unwrap();
            let out = run(&a).unwrap();
            assert!(out.contains(expect), "engine {engine}");
        }
    }

    #[test]
    fn serve_runs_briefly_and_reports() {
        let a = Args::parse([
            "serve", "--preset", "toy", "--port", "0", "--threads", "2",
            "--num-sources", "2", "--batch", "100", "--max-slides", "3",
            "--run-secs", "1", "--epsilon", "1e-3",
        ])
        .unwrap();
        let out = serve(&a).unwrap();
        assert!(out.contains("slides\t3"), "{out}");
        assert!(out.contains("updates_per_sec"), "{out}");
        assert!(out.contains("cache_hit_rate"), "{out}");
        assert!(out.contains("sessions\t2"), "{out}");
    }

    #[test]
    fn serve_rejects_bad_sources() {
        let a = Args::parse([
            "serve", "--preset", "toy", "--port", "0", "--sources", "1,zebra",
        ])
        .unwrap();
        assert!(serve(&a).is_err());
    }

    #[test]
    fn query_reports_bounds_and_threshold() {
        let a = Args::parse([
            "query", "--preset", "toy", "--source", "0", "--epsilon", "1e-4", "--top", "5",
            "--threshold", "0.01",
        ])
        .unwrap();
        let out = query(&a).unwrap();
        assert!(out.contains("set_is_certain"));
        assert!(out.contains("threshold_0.01"));
    }

    #[test]
    fn exact_matches_query_within_epsilon() {
        let q = query(
            &Args::parse([
                "query", "--preset", "toy", "--source", "0", "--epsilon", "1e-6", "--top",
                "1",
            ])
            .unwrap(),
        )
        .unwrap();
        let e = exact(
            &Args::parse(["exact", "--preset", "toy", "--source", "0", "--top", "1"])
                .unwrap(),
        )
        .unwrap();
        // Same top-1 vertex in both reports.
        let top_q = q
            .lines()
            .find(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
            .unwrap()
            .split('\t')
            .next()
            .unwrap()
            .to_string();
        let top_e = e
            .lines()
            .find(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
            .unwrap()
            .split('\t')
            .next()
            .unwrap()
            .to_string();
        assert_eq!(top_q, top_e);
    }
}
