//! The serving instance: write loop + acceptor + worker pool.
//!
//! ```text
//!                     ┌────────────────────────────────────────────┐
//!  edge stream ──────▶│ write loop (owns StreamDriver+MultiSource) │
//!                     │  slide → apply batch → advance epoch ──────┼──▶ publish
//!                     └────────────▲───────────────────────────────┘    per-session
//!                                  │ control (open/close)               SnapshotCell
//!  TCP clients ──▶ acceptor ──▶ worker pool ── lookup ──▶ registry ──▶ lock-free load
//!                                  │                                    of Arc<QuerySnapshot>
//!                                  └── epoch-keyed QueryCache
//! ```
//!
//! Readers never hold a lock while the writer works: a query takes one
//! brief `RwLock` read to find the session, then loads the published
//! snapshot lock-free ([`crate::SnapshotCell::load`]). Session open/close
//! requests travel over a channel and are applied by the write loop
//! *between* batches, which is what keeps `MultiSourcePpr`'s mutable state
//! single-threaded.

use crate::cache::{CacheStats, QueryCache, QueryKind};
use crate::epoch::{EpochDomain, Reader};
use crate::http::{read_request, respond_json, Request};
use crate::json::{error_body, JsonBuf};
use crate::registry::{OpenOutcome, SessionRegistry};
use crate::snapshot::QuerySnapshot;
use dppr_core::queries::BoundedScore;
use dppr_core::{MultiSourcePpr, PushVariant};
use dppr_graph::{GraphStream, VertexId};
use dppr_stream::StreamDriver;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for one serving instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// HTTP worker threads.
    pub threads: usize,
    /// Query-cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Session budget; opening past it evicts the LRU session.
    pub session_capacity: usize,
    /// Teleport probability α.
    pub alpha: f64,
    /// Accuracy ε of every maintained vector.
    pub epsilon: f64,
    /// Window-slide batch size (logical edges per slide).
    pub batch: usize,
    /// Stop sliding after this many slides (0 = run the stream dry).
    pub max_slides: usize,
    /// Optional pause between slides, to throttle the update stream.
    pub slide_pause: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            threads: 4,
            cache_capacity: 1024,
            session_capacity: 64,
            alpha: 0.15,
            epsilon: 1e-4,
            batch: 500,
            max_slides: 0,
            slide_pause: Duration::ZERO,
        }
    }
}

/// Live counters of a serving instance (all monotone).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Window slides applied.
    pub slides: AtomicU64,
    /// Updates handed to the engine (inserts + deletes, arcs).
    pub updates_offered: AtomicU64,
    /// Updates that changed the graph.
    pub updates_applied: AtomicU64,
    /// Nanoseconds spent inside `apply_batch` (the paper's engine latency).
    pub update_nanos: AtomicU64,
    /// Query requests answered (any kind, any status).
    pub queries: AtomicU64,
    /// Sessions opened over HTTP.
    pub sessions_opened: AtomicU64,
    /// Sessions closed over HTTP.
    pub sessions_closed: AtomicU64,
    /// Sessions evicted by the LRU budget.
    pub sessions_evicted: AtomicU64,
    /// Whether the update stream has been run dry.
    pub stream_done: AtomicBool,
}

impl ServerStats {
    /// Sustained update throughput (updates offered per second of engine
    /// time), the same quantity as `RunSummary::throughput`.
    pub fn updates_per_sec(&self) -> f64 {
        let secs = self.update_nanos.load(Relaxed) as f64 * 1e-9;
        if secs == 0.0 {
            0.0
        } else {
            self.updates_offered.load(Relaxed) as f64 / secs
        }
    }
}

/// Final numbers reported by [`ServerHandle::join`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Last published epoch.
    pub epoch: u64,
    /// Window slides applied.
    pub slides: u64,
    /// Updates handed to the engine.
    pub updates_offered: u64,
    /// Updates that changed the graph.
    pub updates_applied: u64,
    /// Update throughput while serving (updates/second of engine time).
    pub updates_per_sec: f64,
    /// Query requests answered.
    pub queries: u64,
    /// Cache counters.
    pub cache: CacheStats,
    /// Sessions open at shutdown.
    pub sessions: usize,
    /// Whether the update stream had been run dry.
    pub stream_done: bool,
}

enum Control {
    Open(VertexId),
    Close(VertexId),
}

/// State shared by every worker thread.
struct Ctx {
    domain: Arc<EpochDomain>,
    registry: Arc<SessionRegistry>,
    cache: Arc<QueryCache>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    /// One past the largest vertex id the stream will ever mention; the
    /// upper bound for `/session/open` requests (an unchecked id would
    /// make `cold_start` allocate `source + 1` slots — a single request
    /// naming vertex 4e9 must not OOM the server).
    vertex_bound: usize,
}

/// A running serving instance. Dropping the handle without calling
/// [`ServerHandle::join`] detaches the threads (they exit on shutdown).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    domain: Arc<EpochDomain>,
    registry: Arc<SessionRegistry>,
    cache: Arc<QueryCache>,
    stats: Arc<ServerStats>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (query it for the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The query cache (for its hit/miss counters).
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// The session registry.
    pub fn registry(&self) -> &SessionRegistry {
        &self.registry
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.domain.epoch()
    }

    /// Whether shutdown has been requested (flag or `POST /shutdown`).
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(SeqCst)
    }

    /// Requests shutdown and wakes the acceptor.
    pub fn shutdown(&self) {
        self.shutdown.store(true, SeqCst);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Shuts down, joins every thread, and reports the final counters.
    pub fn join(mut self) -> ServeReport {
        self.shutdown();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
        ServeReport {
            epoch: self.domain.epoch(),
            slides: self.stats.slides.load(Relaxed),
            updates_offered: self.stats.updates_offered.load(Relaxed),
            updates_applied: self.stats.updates_applied.load(Relaxed),
            updates_per_sec: self.stats.updates_per_sec(),
            queries: self.stats.queries.load(Relaxed),
            cache: self.cache.stats(),
            sessions: self.registry.len(),
            stream_done: self.stats.stream_done.load(Relaxed),
        }
    }
}

/// Warms the initial window of `stream` and picks the `k` top-out-degree
/// vertices as serving sources — the paper's hub-vertex methodology.
///
/// Pass the **same** `init_fraction` here as to [`start`]: the probe must
/// replay exactly the window the server will bootstrap with, or the picked
/// hubs belong to a different graph than the one actually served (this
/// helper exists so the CLI, the load generator, and the examples cannot
/// drift apart on that pairing).
pub fn pick_top_degree_sources(
    stream: &GraphStream,
    init_fraction: f64,
    k: usize,
) -> Vec<VertexId> {
    let window = dppr_graph::SlidingWindow::new(stream.clone(), init_fraction);
    let mut probe = dppr_graph::DynamicGraph::new();
    for upd in window.initial_updates() {
        probe.apply(upd);
    }
    probe.top_out_degree_vertices(k)
}

/// Boots a serving instance over `stream`: applies the initial window for
/// every source in `sources` (so the returned handle is immediately
/// queryable), then starts the write loop, the acceptor, and the worker
/// pool. `init_fraction` is the sliding-window warmup share (the paper
/// uses 0.1).
pub fn start(
    stream: GraphStream,
    init_fraction: f64,
    sources: &[VertexId],
    cfg: ServeConfig,
) -> io::Result<ServerHandle> {
    let vertex_bound = stream.vertex_bound();
    if let Some(&s) = sources.iter().find(|&&s| (s as usize) >= vertex_bound) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("source {s} is outside the stream's vertex bound {vertex_bound}"),
        ));
    }
    let threads = cfg.threads.max(1);
    // Workers + slack for external Reader users (tests, in-process tools).
    let domain = EpochDomain::new(threads + 4);
    let registry = Arc::new(SessionRegistry::new(
        Arc::clone(&domain),
        cfg.session_capacity.max(sources.len()),
    ));
    let cache = Arc::new(QueryCache::new(cfg.cache_capacity));
    let stats = Arc::new(ServerStats::default());
    let shutdown = Arc::new(AtomicBool::new(false));

    // --- bootstrap synchronously: sessions are live before we return ----
    let mut driver = StreamDriver::new(stream, init_fraction);
    let mut multi = MultiSourcePpr::new(sources, cfg.alpha, cfg.epsilon, PushVariant::OPT);
    let init = driver.take_initial_batch();
    let t = Instant::now();
    let applied = multi.apply_batch(driver.graph_mut(), &init);
    stats.update_nanos.store(t.elapsed().as_nanos() as u64, Relaxed);
    stats.updates_offered.store(init.len() as u64, Relaxed);
    stats.updates_applied.store(applied as u64, Relaxed);
    let epoch = domain.advance();
    for i in 0..multi.num_sources() {
        registry.open(
            multi.source(i),
            Arc::new(QuerySnapshot::from_state(multi.state(i), epoch)),
        );
    }

    let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
    let addr = listener.local_addr()?;

    let (ctl_tx, ctl_rx) = mpsc::channel::<Control>();
    let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    let ctx = Arc::new(Ctx {
        domain: Arc::clone(&domain),
        registry: Arc::clone(&registry),
        cache: Arc::clone(&cache),
        stats: Arc::clone(&stats),
        shutdown: Arc::clone(&shutdown),
        addr,
        vertex_bound,
    });

    // --- write loop ------------------------------------------------------
    let writer = {
        let ctx = Arc::clone(&ctx);
        let cfg = cfg.clone();
        std::thread::Builder::new()
            .name("dppr-serve-writer".into())
            .spawn(move || write_loop(driver, multi, ctl_rx, ctx, cfg))?
    };

    // --- worker pool ------------------------------------------------------
    let mut workers = Vec::with_capacity(threads);
    for w in 0..threads {
        let ctx = Arc::clone(&ctx);
        let conn_rx = Arc::clone(&conn_rx);
        let ctl_tx = ctl_tx.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("dppr-serve-worker-{w}"))
                .spawn(move || {
                    let reader = ctx.domain.register_reader();
                    loop {
                        let conn = conn_rx.lock().unwrap().recv();
                        let Ok(mut conn) = conn else { break };
                        // Client-side errors (parse failures, dropped
                        // connections) must not take the worker down.
                        let _ = handle_connection(&mut conn, &ctx, &reader, &ctl_tx);
                    }
                })?,
        );
    }
    drop(ctl_tx);

    // --- acceptor ---------------------------------------------------------
    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("dppr-serve-acceptor".into())
            .spawn(move || {
                loop {
                    match listener.accept() {
                        Ok((conn, _)) => {
                            if shutdown.load(SeqCst) {
                                break; // wake-up connection, not a client
                            }
                            if conn_tx.send(conn).is_err() {
                                break;
                            }
                        }
                        Err(_) => {
                            if shutdown.load(SeqCst) {
                                break;
                            }
                            // Persistent accept errors (e.g. fd
                            // exhaustion) must not busy-spin a core.
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
                // Dropping conn_tx drains the worker pool.
            })?
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        domain,
        registry,
        cache,
        stats,
        acceptor: Some(acceptor),
        workers,
        writer: Some(writer),
    })
}

fn write_loop(
    mut driver: StreamDriver,
    mut multi: MultiSourcePpr,
    ctl_rx: mpsc::Receiver<Control>,
    ctx: Arc<Ctx>,
    cfg: ServeConfig,
) {
    loop {
        if ctx.shutdown.load(SeqCst) {
            return;
        }
        while let Ok(ctl) = ctl_rx.try_recv() {
            handle_control(ctl, &mut driver, &mut multi, &ctx);
        }
        let capped = cfg.max_slides != 0 && ctx.stats.slides.load(Relaxed) >= cfg.max_slides as u64;
        if capped || ctx.stats.stream_done.load(Relaxed) {
            // Nothing left to slide: serve from the frozen epoch, but stay
            // responsive to session control and shutdown.
            match ctl_rx.recv_timeout(Duration::from_millis(20)) {
                Ok(ctl) => handle_control(ctl, &mut driver, &mut multi, &ctx),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
            continue;
        }
        let Some(batch) = driver.slide_batch(cfg.batch) else {
            ctx.stats.stream_done.store(true, Relaxed);
            continue;
        };
        let t = Instant::now();
        let applied = multi.apply_batch(driver.graph_mut(), &batch);
        ctx.stats.update_nanos.fetch_add(t.elapsed().as_nanos() as u64, Relaxed);
        ctx.stats.updates_offered.fetch_add(batch.len() as u64, Relaxed);
        ctx.stats.updates_applied.fetch_add(applied as u64, Relaxed);
        ctx.stats.slides.fetch_add(1, Relaxed);
        // Publication point: one epoch per batch, every session swapped to
        // a snapshot of the new converged state.
        let epoch = ctx.domain.advance();
        for i in 0..multi.num_sources() {
            if let Some(entry) = ctx.registry.peek(multi.source(i)) {
                entry.publish(
                    &ctx.domain,
                    Arc::new(QuerySnapshot::from_state(multi.state(i), epoch)),
                );
            }
        }
        if !cfg.slide_pause.is_zero() {
            std::thread::sleep(cfg.slide_pause);
        }
    }
}

fn handle_control(
    ctl: Control,
    driver: &mut StreamDriver,
    multi: &mut MultiSourcePpr,
    ctx: &Ctx,
) {
    match ctl {
        Control::Open(s) => {
            if ctx.registry.peek(s).is_some() {
                return;
            }
            let i = multi.add_source(driver.graph(), s);
            let snap = QuerySnapshot::from_state(multi.state(i), ctx.domain.epoch());
            if let OpenOutcome::Opened { evicted: Some(victim) } =
                ctx.registry.open(s, Arc::new(snap))
            {
                remove_maintained(multi, victim);
                ctx.stats.sessions_evicted.fetch_add(1, Relaxed);
            }
            ctx.stats.sessions_opened.fetch_add(1, Relaxed);
        }
        Control::Close(s) => {
            if ctx.registry.close(s) {
                remove_maintained(multi, s);
                ctx.stats.sessions_closed.fetch_add(1, Relaxed);
            }
        }
    }
}

fn remove_maintained(multi: &mut MultiSourcePpr, source: VertexId) {
    if let Some(i) = (0..multi.num_sources()).find(|&j| multi.source(j) == source) {
        multi.remove_source(i);
    }
}

// --- request routing ------------------------------------------------------

fn push_bounded(j: &mut JsonBuf, b: &BoundedScore) {
    j.begin_obj();
    j.key("vertex").uint(b.vertex as u64);
    j.key("estimate").num(b.estimate);
    j.key("lo").num(b.lo);
    j.key("hi").num(b.hi);
    j.end_obj();
}

fn handle_connection(
    conn: &mut TcpStream,
    ctx: &Ctx,
    reader: &Reader,
    ctl_tx: &mpsc::Sender<Control>,
) -> io::Result<()> {
    let req = match read_request(conn) {
        Ok(r) => r,
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return respond_json(conn, 400, &error_body(&e.to_string()));
        }
        Err(e) => return Err(e),
    };
    match route(&req, ctx, reader, ctl_tx) {
        Ok((status, body)) => respond_json(conn, status, &body),
        Err(msg) => respond_json(conn, 400, &error_body(&msg)),
    }
}

/// Loads the snapshot for a `source=` query parameter, or a 404 body.
fn snapshot_for(
    req: &Request,
    ctx: &Ctx,
    reader: &Reader,
) -> Result<Result<Arc<QuerySnapshot>, (u16, Arc<str>)>, String> {
    let source: VertexId = req.require("source")?;
    Ok(match ctx.registry.lookup(source) {
        Some(entry) => Ok(entry.load(reader)),
        None => Err((
            404,
            error_body(&format!("no open session for source {source}")).into(),
        )),
    })
}

/// Routes a request to `(status, body)`. Bodies travel as `Arc<str>` so a
/// cache hit is returned without copying the rendered JSON.
fn route(
    req: &Request,
    ctx: &Ctx,
    reader: &Reader,
    ctl_tx: &mpsc::Sender<Control>,
) -> Result<(u16, Arc<str>), String> {
    match req.path.as_str() {
        "/healthz" => {
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("ok").bool(true);
            j.key("epoch").uint(ctx.domain.epoch());
            j.end_obj();
            Ok((200, j.finish().into()))
        }
        "/topk" => {
            ctx.stats.queries.fetch_add(1, Relaxed);
            let k: usize = req.parsed_or("k", 10)?;
            let snap = match snapshot_for(req, ctx, reader)? {
                Ok(s) => s,
                Err(e) => return Ok(e),
            };
            let (body, _) = ctx.cache.get_or_render(
                snap.source(),
                QueryKind::TopK(k),
                snap.epoch(),
                || {
                    let ans = snap.top_k(k);
                    let mut j = JsonBuf::new();
                    j.begin_obj();
                    j.key("source").uint(snap.source() as u64);
                    j.key("epoch").uint(snap.epoch());
                    j.key("epsilon").num(snap.epsilon());
                    j.key("k").uint(k as u64);
                    j.key("set_is_certain").bool(ans.set_is_certain);
                    j.key("ranking").begin_arr();
                    for b in &ans.ranking {
                        push_bounded(&mut j, b);
                    }
                    j.end_arr();
                    j.end_obj();
                    j.finish()
                },
            );
            Ok((200, body))
        }
        "/score" => {
            ctx.stats.queries.fetch_add(1, Relaxed);
            let v: VertexId = req.require("v")?;
            let snap = match snapshot_for(req, ctx, reader)? {
                Ok(s) => s,
                Err(e) => return Ok(e),
            };
            let (body, _) = ctx.cache.get_or_render(
                snap.source(),
                QueryKind::Score(v),
                snap.epoch(),
                || {
                    let b = snap.score(v);
                    let mut j = JsonBuf::new();
                    j.begin_obj();
                    j.key("source").uint(snap.source() as u64);
                    j.key("epoch").uint(snap.epoch());
                    j.key("epsilon").num(snap.epsilon());
                    j.key("vertex").uint(v as u64);
                    j.key("estimate").num(b.estimate);
                    j.key("lo").num(b.lo);
                    j.key("hi").num(b.hi);
                    j.end_obj();
                    j.finish()
                },
            );
            Ok((200, body))
        }
        "/threshold" => {
            ctx.stats.queries.fetch_add(1, Relaxed);
            let delta: f64 = req.require("delta")?;
            let snap = match snapshot_for(req, ctx, reader)? {
                Ok(s) => s,
                Err(e) => return Ok(e),
            };
            let (body, _) = ctx.cache.get_or_render(
                snap.source(),
                QueryKind::Threshold(delta.to_bits()),
                snap.epoch(),
                || {
                    let ans = snap.above_threshold(delta);
                    let mut j = JsonBuf::new();
                    j.begin_obj();
                    j.key("source").uint(snap.source() as u64);
                    j.key("epoch").uint(snap.epoch());
                    j.key("delta").num(delta);
                    j.key("certain").begin_arr();
                    for b in &ans.certain {
                        push_bounded(&mut j, b);
                    }
                    j.end_arr();
                    j.key("possible").begin_arr();
                    for b in &ans.possible {
                        push_bounded(&mut j, b);
                    }
                    j.end_arr();
                    j.end_obj();
                    j.finish()
                },
            );
            Ok((200, body))
        }
        "/compare" => {
            ctx.stats.queries.fetch_add(1, Relaxed);
            let a: VertexId = req.require("a")?;
            let b: VertexId = req.require("b")?;
            let snap = match snapshot_for(req, ctx, reader)? {
                Ok(s) => s,
                Err(e) => return Ok(e),
            };
            let (body, _) = ctx.cache.get_or_render(
                snap.source(),
                QueryKind::Compare(a, b),
                snap.epoch(),
                || {
                    let order = match snap.compare(a, b) {
                        Some(std::cmp::Ordering::Greater) => "greater",
                        Some(std::cmp::Ordering::Less) => "less",
                        Some(std::cmp::Ordering::Equal) => "equal",
                        None => "undecidable",
                    };
                    let mut j = JsonBuf::new();
                    j.begin_obj();
                    j.key("source").uint(snap.source() as u64);
                    j.key("epoch").uint(snap.epoch());
                    j.key("a").uint(a as u64);
                    j.key("b").uint(b as u64);
                    j.key("order").str(order);
                    j.end_obj();
                    j.finish()
                },
            );
            Ok((200, body))
        }
        "/sessions" => {
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("capacity").uint(ctx.registry.capacity() as u64);
            j.key("sessions").begin_arr();
            for s in ctx.registry.sources() {
                j.uint(s as u64);
            }
            j.end_arr();
            j.end_obj();
            Ok((200, j.finish().into()))
        }
        "/session/open" | "/session/close" => {
            let source: VertexId = req.require("source")?;
            let open = req.path == "/session/open";
            if open && source as usize >= ctx.vertex_bound {
                return Err(format!(
                    "source {source} is outside the graph's vertex bound {}",
                    ctx.vertex_bound
                ));
            }
            let ctl = if open {
                Control::Open(source)
            } else {
                Control::Close(source)
            };
            // Applied by the write loop between batches; the response
            // acknowledges acceptance, not completion.
            let accepted = ctl_tx.send(ctl).is_ok();
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("accepted").bool(accepted);
            j.key(if open { "opening" } else { "closing" }).uint(source as u64);
            j.end_obj();
            Ok((200, j.finish().into()))
        }
        "/stats" => {
            let cache = ctx.cache.stats();
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("epoch").uint(ctx.domain.epoch());
            j.key("slides").uint(ctx.stats.slides.load(Relaxed));
            j.key("updates_offered").uint(ctx.stats.updates_offered.load(Relaxed));
            j.key("updates_applied").uint(ctx.stats.updates_applied.load(Relaxed));
            j.key("updates_per_sec").num(ctx.stats.updates_per_sec());
            j.key("stream_done").bool(ctx.stats.stream_done.load(Relaxed));
            j.key("queries").uint(ctx.stats.queries.load(Relaxed));
            j.key("sessions").uint(ctx.registry.len() as u64);
            j.key("sessions_opened").uint(ctx.stats.sessions_opened.load(Relaxed));
            j.key("sessions_closed").uint(ctx.stats.sessions_closed.load(Relaxed));
            j.key("sessions_evicted").uint(ctx.stats.sessions_evicted.load(Relaxed));
            j.key("cache").begin_obj();
            j.key("hits").uint(cache.hits);
            j.key("misses").uint(cache.misses);
            j.key("evictions").uint(cache.evictions);
            j.key("hit_rate").num(cache.hit_rate());
            j.end_obj();
            j.end_obj();
            Ok((200, j.finish().into()))
        }
        "/shutdown" => {
            ctx.shutdown.store(true, SeqCst);
            // Wake the blocking accept so the acceptor can exit.
            let _ = TcpStream::connect(ctx.addr);
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("shutting_down").bool(true);
            j.end_obj();
            Ok((200, j.finish().into()))
        }
        other => Ok((404, error_body(&format!("unknown endpoint {other}")).into())),
    }
}
