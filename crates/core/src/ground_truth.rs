//! Exact solver for the fix-point the local update approximates.
//!
//! With `Rs ≡ 0`, Eq. 2 pins the exact vector:
//!
//! ```text
//! π(v) = α·1{v=s} + (1−α)/dout(v) · Σ_{x ∈ Nout(v)} π(x)      (dout(v) > 0)
//! π(v) = α·1{v=s}                                             (dout(v) = 0)
//! ```
//!
//! The Jacobi operator behind this recurrence is an ∞-norm contraction with
//! factor `(1−α)`, so plain iteration converges geometrically from any
//! start; we iterate until the sup-norm step falls below `tol`.

use dppr_graph::{DynamicGraph, VertexId};
use rayon::prelude::*;

/// Solves the Eq. 2 fix-point to sup-norm accuracy `tol`.
///
/// The returned vector is what a converged local-update state approximates:
/// `|π(v) − Ps(v)| ≤ ε` for every `v`.
pub fn exact_ppr(g: &DynamicGraph, source: VertexId, alpha: f64, tol: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha < 1.0);
    assert!(tol > 0.0);
    let n = g.num_vertices().max(source as usize + 1);
    let mut cur = vec![0.0f64; n];
    if (source as usize) < n {
        cur[source as usize] = alpha;
    }
    let mut next = vec![0.0f64; n];
    // (1−α)^k < tol/1 gives a generous iteration cap.
    let max_iters = ((tol.ln() / (1.0 - alpha).ln()).ceil() as usize + 2).max(8);
    for _ in 0..max_iters {
        let delta = jacobi_step(g, source, alpha, &cur, &mut next);
        std::mem::swap(&mut cur, &mut next);
        if delta < tol {
            break;
        }
    }
    cur
}

/// Sequential variant of [`exact_ppr`] for callers that must not touch the
/// rayon pool — e.g. the serve-side accuracy auditor, which runs on a single
/// background thread and must leave the worker threads to the write loops.
/// Identical math, identical iteration cap, plain sweep.
pub fn exact_ppr_seq(g: &DynamicGraph, source: VertexId, alpha: f64, tol: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha < 1.0);
    assert!(tol > 0.0);
    let n = g.num_vertices().max(source as usize + 1);
    let mut cur = vec![0.0f64; n];
    if (source as usize) < n {
        cur[source as usize] = alpha;
    }
    let mut next = vec![0.0f64; n];
    let max_iters = ((tol.ln() / (1.0 - alpha).ln()).ceil() as usize + 2).max(8);
    for _ in 0..max_iters {
        let mut delta = 0.0f64;
        for (v, slot) in next.iter_mut().enumerate() {
            let teleport = if v == source as usize { alpha } else { 0.0 };
            let value = if v < g.num_vertices() && g.out_degree(v as VertexId) > 0 {
                let sum: f64 = g
                    .out_neighbors(v as VertexId)
                    .iter()
                    .map(|&x| cur[x as usize])
                    .sum();
                teleport + (1.0 - alpha) * sum / g.out_degree(v as VertexId) as f64
            } else {
                teleport
            };
            delta = delta.max((value - *slot).abs());
            *slot = value;
        }
        std::mem::swap(&mut cur, &mut next);
        if delta < tol {
            break;
        }
    }
    cur
}

/// One Jacobi sweep; returns the sup-norm change. Parallel over vertices
/// (reads `cur`, writes disjoint slots of `next`).
fn jacobi_step(
    g: &DynamicGraph,
    source: VertexId,
    alpha: f64,
    cur: &[f64],
    next: &mut [f64],
) -> f64 {
    next.par_iter_mut()
        .enumerate()
        .map(|(v, slot)| {
            let teleport = if v == source as usize { alpha } else { 0.0 };
            let value = if v < g.num_vertices() && g.out_degree(v as VertexId) > 0 {
                let sum: f64 = g
                    .out_neighbors(v as VertexId)
                    .iter()
                    .map(|&x| cur[x as usize])
                    .sum();
                teleport + (1.0 - alpha) * sum / g.out_degree(v as VertexId) as f64
            } else {
                teleport
            };
            let delta = (value - *slot).abs();
            *slot = value;
            delta
        })
        .reduce(|| 0.0, f64::max)
        .max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dppr_graph::generators::{barabasi_albert, erdos_renyi, undirected_to_directed};

    #[test]
    fn empty_graph_is_teleport_only() {
        let g = DynamicGraph::with_vertices(3);
        let p = exact_ppr(&g, 1, 0.15, 1e-12);
        assert_eq!(p, vec![0.0, 0.15, 0.0]);
    }

    #[test]
    fn source_beyond_graph_is_materialized() {
        let g = DynamicGraph::new();
        let p = exact_ppr(&g, 4, 0.5, 1e-12);
        assert_eq!(p.len(), 5);
        assert_eq!(p[4], 0.5);
    }

    #[test]
    fn two_cycle_closed_form() {
        // 0 ⇄ 1, source 0: π(0) = α + (1−α)·π(1), π(1) = (1−α)·π(0)
        // ⇒ π(0) = α / (1 − (1−α)²), π(1) = (1−α)·π(0).
        let g = DynamicGraph::from_edges([(0, 1), (1, 0)]);
        let a = 0.15f64;
        let p = exact_ppr(&g, 0, a, 1e-14);
        let pi0 = a / (1.0 - (1.0 - a) * (1.0 - a));
        assert!((p[0] - pi0).abs() < 1e-10);
        assert!((p[1] - (1.0 - a) * pi0).abs() < 1e-10);
    }

    #[test]
    fn figure1_initial_state_is_exact() {
        // The paper's Figure 1 initial state has residuals ≈ 0 only at some
        // vertices; instead check that the exact solution satisfies Eq. 2
        // and lies within ε=0.1 of the printed estimates.
        let g = DynamicGraph::from_edges([(1, 0), (2, 0), (2, 1), (3, 2), (0, 3)]);
        let p = exact_ppr(&g, 0, 0.5, 1e-14);
        let printed = [0.5, 0.25, 0.1875, 0.0625];
        for v in 0..4 {
            assert!(
                (p[v] - printed[v]).abs() <= 0.1,
                "vertex {v}: exact {} vs printed {}",
                p[v],
                printed[v]
            );
        }
    }

    #[test]
    fn values_are_probabilities() {
        let edges = undirected_to_directed(&barabasi_albert(300, 3, 9));
        let g = DynamicGraph::from_edges(edges);
        let p = exact_ppr(&g, 5, 0.15, 1e-12);
        for (v, &x) in p.iter().enumerate() {
            assert!((0.0..=1.0 + 1e-12).contains(&x), "π({v}) = {x} out of range");
        }
        // π(s) ≥ α always (the walk can stop immediately).
        assert!(p[5] >= 0.15 - 1e-12);
    }

    #[test]
    fn sequential_solver_matches_parallel() {
        let edges = undirected_to_directed(&barabasi_albert(200, 3, 11));
        let g = DynamicGraph::from_edges(edges);
        for &(source, alpha, tol) in &[(0u32, 0.15, 1e-10), (7, 0.5, 1e-8), (150, 0.2, 1e-12)] {
            let par = exact_ppr(&g, source, alpha, tol);
            let seq = exact_ppr_seq(&g, source, alpha, tol);
            assert_eq!(par.len(), seq.len());
            let diff = par
                .iter()
                .zip(&seq)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            // Same iteration schedule; only FP summation order may differ.
            assert!(diff < 1e-12, "par/seq diverge by {diff}");
        }
    }

    #[test]
    fn sequential_solver_edge_cases() {
        let g = DynamicGraph::with_vertices(3);
        assert_eq!(exact_ppr_seq(&g, 1, 0.15, 1e-12), vec![0.0, 0.15, 0.0]);
        let g = DynamicGraph::new();
        let p = exact_ppr_seq(&g, 4, 0.5, 1e-12);
        assert_eq!(p.len(), 5);
        assert_eq!(p[4], 0.5);
    }

    #[test]
    fn audited_replay_respects_epsilon_contract() {
        // The oracle the serve-side auditor trusts: maintained estimates
        // after a mixed insert/delete stream must stay within ε of the
        // sequential exact solve on the final graph — for every source.
        use crate::multi::MultiSourcePpr;
        use crate::PushVariant;
        use dppr_graph::EdgeUpdate;
        let (alpha, eps) = (0.2, 1e-3);
        let mut g = DynamicGraph::new();
        let mut multi = MultiSourcePpr::new(&[0, 5, 17], alpha, eps, PushVariant::OPT);
        let edges = undirected_to_directed(&barabasi_albert(120, 3, 5));
        for chunk in edges.chunks(150) {
            let batch: Vec<EdgeUpdate> =
                chunk.iter().map(|&(u, v)| EdgeUpdate::insert(u, v)).collect();
            multi.apply_batch(&mut g, &batch);
        }
        // Retract an early slice, as a sliding window would.
        let dels: Vec<EdgeUpdate> =
            edges.iter().take(80).map(|&(u, v)| EdgeUpdate::delete(u, v)).collect();
        multi.apply_batch(&mut g, &dels);
        for i in 0..multi.num_sources() {
            let s = multi.source(i);
            let exact = exact_ppr_seq(&g, s, alpha, eps * 1e-3);
            let est = multi.state(i).estimates();
            let linf = (0..exact.len().max(est.len()))
                .map(|v| {
                    (exact.get(v).copied().unwrap_or(0.0) - est.get(v).copied().unwrap_or(0.0))
                        .abs()
                })
                .fold(0.0f64, f64::max);
            assert!(linf <= eps + 1e-9, "source {s}: audited error {linf} > eps {eps}");
        }
    }

    #[test]
    fn tighter_tolerance_refines() {
        let g = DynamicGraph::from_edges(erdos_renyi(40, 200, 4));
        let coarse = exact_ppr(&g, 0, 0.15, 1e-3);
        let fine = exact_ppr(&g, 0, 0.15, 1e-13);
        let diff = coarse
            .iter()
            .zip(&fine)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(diff < 1e-2);
        assert!(diff > 0.0 || coarse == fine);
    }
}
