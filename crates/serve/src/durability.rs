//! Checkpoints + WAL plumbing for the serving stack.
//!
//! The durable state of a serving instance is (a) the newest checkpoint
//! directory `ckpt-<epoch>` and (b) the WAL tail past that epoch. A
//! checkpoint captures everything recovery needs:
//!
//! * `MANIFEST` — version line, epoch, window bounds (logical stream
//!   positions), the open source list, and a CRC32 trailer over all
//!   preceding bytes;
//! * one `state-<source>.tsv` per open session, in the `core::persist`
//!   v2 format (its own CRC trailer).
//!
//! Checkpoints are written crash-atomically: everything goes into a
//! staging directory `ckpt.tmp-<epoch>` first, each file is fsynced, and
//! a single `rename(2)` publishes it — a crash at any point leaves
//! either the old checkpoint or the new one, never a half-written
//! hybrid. Loading walks `ckpt-*` newest-first and takes the first one
//! that validates, so a corrupt newest checkpoint silently falls back to
//! its predecessor (whose WAL tail is still retained, because segments
//! are pruned only up to the *acknowledged* durable epoch).

use dppr_core::persist::{read_state, write_state};
use dppr_core::{crc32, PprState};
use dppr_wal::{fault, FsyncPolicy};
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// First line of every checkpoint manifest.
const MANIFEST_MAGIC: &str = "dppr-ckpt v1";

/// Durability knobs for a serving instance.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root directory: WAL segments under `wal/`, checkpoints as
    /// `ckpt-<epoch>` subdirectories.
    pub data_dir: PathBuf,
    /// WAL flush discipline.
    pub fsync: FsyncPolicy,
    /// Checkpoint every N window slides (0 = only the initial and final
    /// checkpoints).
    pub checkpoint_every_slides: u64,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
}

impl DurabilityConfig {
    /// Defaults tuned for the serving write loop: interval fsync at
    /// 50 ms, a checkpoint every 64 slides, 8 MiB segments.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Interval(Duration::from_millis(50)),
            checkpoint_every_slides: 64,
            segment_bytes: 8 << 20,
        }
    }
}

/// What recovery did, surfaced on the handle and in `dppr serve` output.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// Epoch of the checkpoint recovery started from.
    pub checkpoint_epoch: u64,
    /// Batch records replayed from the WAL tail.
    pub replayed_batches: u64,
    /// Epoch the instance resumed publishing at.
    pub recovered_epoch: u64,
    /// Window bounds after replay.
    pub window_start: usize,
    /// Exclusive window end after replay.
    pub window_end: usize,
}

/// A checkpoint pulled back off disk.
pub struct LoadedCheckpoint {
    /// Epoch the checkpoint captured.
    pub epoch: u64,
    /// Window start at that epoch (logical stream position).
    pub window_start: usize,
    /// Window end at that epoch.
    pub window_end: usize,
    /// One converged state per open session, in manifest order.
    pub states: Vec<PprState>,
}

/// The WAL directory under a data dir.
pub fn wal_dir(data_dir: &Path) -> PathBuf {
    data_dir.join("wal")
}

fn ckpt_path(data_dir: &Path, epoch: u64) -> PathBuf {
    data_dir.join(format!("ckpt-{epoch}"))
}

fn parse_ckpt_epoch(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?.parse().ok()
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes the checkpoint for `epoch` crash-atomically under `data_dir`.
///
/// Crash-injection sites: `ckpt-state` (dies with only the first state
/// file staged), `ckpt-pre-rename` (staging complete, rename pending)
/// and `ckpt-post-rename` (checkpoint published, WAL marker pending).
pub fn write_checkpoint(
    data_dir: &Path,
    epoch: u64,
    window: (usize, usize),
    states: &[PprState],
) -> io::Result<()> {
    let stage = data_dir.join(format!("ckpt.tmp-{epoch}"));
    let _ = fs::remove_dir_all(&stage);
    fs::create_dir_all(&stage)?;

    let mut manifest = String::new();
    manifest.push_str(MANIFEST_MAGIC);
    manifest.push('\n');
    manifest.push_str(&format!("epoch {epoch}\n"));
    manifest.push_str(&format!("window {} {}\n", window.0, window.1));
    manifest.push_str(&format!("sources {}\n", states.len()));
    for (i, st) in states.iter().enumerate() {
        let source = st.config().source;
        manifest.push_str(&format!("source {source}\n"));
        let mut f = File::create(stage.join(format!("state-{source}.tsv")))?;
        write_state(st, &mut f)?;
        f.sync_data()?;
        if i == 0 {
            fault::maybe_crash("ckpt-state");
        }
    }
    manifest.push_str(&format!("crc32 {:08x}\n", crc32(manifest.as_bytes())));
    let mut f = File::create(stage.join("MANIFEST"))?;
    f.write_all(manifest.as_bytes())?;
    f.sync_data()?;
    sync_dir(&stage)?;

    fault::maybe_crash("ckpt-pre-rename");
    let target = ckpt_path(data_dir, epoch);
    let _ = fs::remove_dir_all(&target); // re-checkpointing an epoch is idempotent
    fs::rename(&stage, &target)?;
    sync_dir(data_dir)?;
    fault::maybe_crash("ckpt-post-rename");
    Ok(())
}

/// Loads one checkpoint directory, validating the manifest CRC, the
/// listed sources, and every per-state file (v2 trailer).
fn load_checkpoint_dir(dir: &Path) -> io::Result<LoadedCheckpoint> {
    let mut bytes = Vec::new();
    File::open(dir.join("MANIFEST"))?.read_to_end(&mut bytes)?;
    let text = std::str::from_utf8(&bytes).map_err(|_| bad("manifest is not UTF-8"))?;
    let body_end = text
        .trim_end_matches('\n')
        .rfind('\n')
        .ok_or_else(|| bad("manifest too short"))?;
    let (body, trailer) = text.split_at(body_end + 1);
    let stored = trailer
        .trim_end()
        .strip_prefix("crc32 ")
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| bad("manifest missing crc32 trailer"))?;
    if crc32(body.as_bytes()) != stored {
        return Err(bad("manifest checksum mismatch"));
    }

    let mut lines = body.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(bad("bad manifest magic"));
    }
    let field = |line: Option<&str>, key: &str| -> io::Result<String> {
        line.and_then(|l| l.strip_prefix(key))
            .map(str::to_string)
            .ok_or_else(|| bad(format!("manifest missing `{key}` line")))
    };
    let epoch: u64 =
        field(lines.next(), "epoch ")?.parse().map_err(|_| bad("bad epoch field"))?;
    let window_raw = field(lines.next(), "window ")?;
    let mut w = window_raw.split_whitespace();
    let window_start: usize = w
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| bad("bad window field"))?;
    let window_end: usize = w
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| bad("bad window field"))?;
    if window_start > window_end {
        return Err(bad("inverted window bounds"));
    }
    let count: usize =
        field(lines.next(), "sources ")?.parse().map_err(|_| bad("bad sources field"))?;
    let mut states = Vec::with_capacity(count);
    for _ in 0..count {
        let source: u32 =
            field(lines.next(), "source ")?.parse().map_err(|_| bad("bad source field"))?;
        let st = read_state(File::open(dir.join(format!("state-{source}.tsv")))?)?;
        if st.config().source != source {
            return Err(bad(format!(
                "state file claims source {}, manifest says {source}",
                st.config().source
            )));
        }
        states.push(st);
    }
    Ok(LoadedCheckpoint { epoch, window_start, window_end, states })
}

/// Finds and loads the newest valid checkpoint under `data_dir`:
/// candidates are tried newest-first and invalid ones are skipped with a
/// note on stderr (a crash mid-checkpoint must not block recovery from
/// the previous one). `Ok(None)` means a genuinely fresh data dir.
pub fn load_latest_checkpoint(data_dir: &Path) -> io::Result<Option<LoadedCheckpoint>> {
    let mut epochs: Vec<u64> = match fs::read_dir(data_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str().and_then(parse_ckpt_epoch))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    epochs.sort_unstable_by(|a, b| b.cmp(a));
    for epoch in epochs {
        match load_checkpoint_dir(&ckpt_path(data_dir, epoch)) {
            Ok(ck) => {
                debug_assert_eq!(ck.epoch, epoch);
                return Ok(Some(ck));
            }
            Err(e) => {
                eprintln!("dppr-serve: skipping invalid checkpoint ckpt-{epoch}: {e}");
            }
        }
    }
    Ok(None)
}

/// Deletes checkpoints older than `keep_epoch` and every leftover
/// staging directory.
pub fn prune_checkpoints(data_dir: &Path, keep_epoch: u64) -> io::Result<()> {
    for entry in fs::read_dir(data_dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_tmp = name.starts_with("ckpt.tmp-");
        let old_ckpt = parse_ckpt_epoch(name).is_some_and(|e| e < keep_epoch);
        if stale_tmp || old_ckpt {
            fs::remove_dir_all(entry.path())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dppr_core::persist::state_fingerprint;
    use dppr_core::{MultiSourcePpr, PushVariant};
    use dppr_graph::{generators::erdos_renyi, DynamicGraph, EdgeUpdate};
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_ID: AtomicU32 = AtomicU32::new(0);

    fn test_dir(tag: &str) -> PathBuf {
        let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir()
            .join(format!("dppr-durability-{}-{tag}-{id}", std::process::id()));
        fs::remove_dir_all(&d).ok();
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn converged_states(sources: &[u32]) -> Vec<PprState> {
        let mut g = DynamicGraph::new();
        let mut multi = MultiSourcePpr::new(sources, 0.2, 1e-3, PushVariant::OPT);
        let batch: Vec<EdgeUpdate> =
            erdos_renyi(40, 300, 11).into_iter().map(|(u, v)| EdgeUpdate::insert(u, v)).collect();
        multi.apply_batch(&mut g, &batch);
        (0..multi.num_sources()).map(|i| multi.state(i).clone_values()).collect()
    }

    #[test]
    fn checkpoint_roundtrips_bit_identically() {
        let dir = test_dir("roundtrip");
        let states = converged_states(&[0, 3, 9]);
        write_checkpoint(&dir, 12, (100, 400), &states).unwrap();
        let ck = load_latest_checkpoint(&dir).unwrap().expect("checkpoint present");
        assert_eq!(ck.epoch, 12);
        assert_eq!((ck.window_start, ck.window_end), (100, 400));
        assert_eq!(ck.states.len(), 3);
        for (a, b) in ck.states.iter().zip(&states) {
            assert_eq!(state_fingerprint(a), state_fingerprint(b));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newest_valid_checkpoint_wins() {
        let dir = test_dir("newest");
        let states = converged_states(&[0]);
        write_checkpoint(&dir, 3, (0, 50), &states).unwrap();
        write_checkpoint(&dir, 8, (50, 100), &states).unwrap();
        let ck = load_latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(ck.epoch, 8);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = test_dir("fallback");
        let states = converged_states(&[2]);
        write_checkpoint(&dir, 3, (0, 50), &states).unwrap();
        write_checkpoint(&dir, 8, (50, 100), &states).unwrap();
        // Flip a manifest byte in the newest.
        let m = dir.join("ckpt-8").join("MANIFEST");
        let mut bytes = fs::read(&m).unwrap();
        bytes[20] ^= 0x10;
        fs::write(&m, &bytes).unwrap();
        let ck = load_latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(ck.epoch, 3);

        // Corrupt a *state file* of epoch 3 too: nothing valid remains.
        let s = dir.join("ckpt-3").join("state-2.tsv");
        let mut bytes = fs::read(&s).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        fs::write(&s, &bytes).unwrap();
        assert!(load_latest_checkpoint(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_session_checkpoint_is_legal() {
        let dir = test_dir("empty");
        write_checkpoint(&dir, 5, (10, 20), &[]).unwrap();
        let ck = load_latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(ck.epoch, 5);
        assert!(ck.states.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_removes_old_and_staging() {
        let dir = test_dir("prune");
        let states = converged_states(&[0]);
        write_checkpoint(&dir, 2, (0, 10), &states).unwrap();
        write_checkpoint(&dir, 5, (10, 20), &states).unwrap();
        fs::create_dir_all(dir.join("ckpt.tmp-9")).unwrap();
        prune_checkpoints(&dir, 5).unwrap();
        assert!(!dir.join("ckpt-2").exists());
        assert!(dir.join("ckpt-5").exists());
        assert!(!dir.join("ckpt.tmp-9").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_is_fresh() {
        let dir = test_dir("fresh").join("does-not-exist");
        assert!(load_latest_checkpoint(&dir).unwrap().is_none());
    }

    #[test]
    fn truncated_manifest_is_skipped() {
        let dir = test_dir("trunc");
        let states = converged_states(&[1]);
        write_checkpoint(&dir, 4, (0, 30), &states).unwrap();
        let m = dir.join("ckpt-4").join("MANIFEST");
        let bytes = fs::read(&m).unwrap();
        fs::write(&m, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_latest_checkpoint(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }
}
