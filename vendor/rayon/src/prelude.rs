//! `rayon::prelude` — the traits callers import with `use rayon::prelude::*`.

pub use crate::iter::{
    IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
    ParallelSliceMut,
};
