//! Sampled structured tracing: a bounded ring of JSON-lines events.
//!
//! Producers decide *whether* to trace via [`Sampler`] (every Nth
//! occurrence; 0 disables) so untraced operations pay one relaxed
//! fetch_add and nothing else. Traced operations format one JSON line
//! and push it into the [`TraceRing`], which evicts the oldest line
//! when full — the ring is a flight recorder, not a log shipper.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Every-Nth sampler. `every == 0` samples nothing; `every == 1`
/// samples everything.
pub struct Sampler {
    every: u64,
    n: AtomicU64,
}

impl Sampler {
    pub fn new(every: u64) -> Self {
        Sampler { every, n: AtomicU64::new(0) }
    }

    pub fn enabled(&self) -> bool {
        self.every != 0
    }

    /// True when this occurrence should be traced.
    #[inline]
    pub fn sample(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.n.fetch_add(1, Relaxed).is_multiple_of(self.every)
    }
}

/// Fixed-capacity ring of trace lines (newest kept, oldest dropped).
pub struct TraceRing {
    cap: usize,
    lines: Mutex<VecDeque<String>>,
    dropped: AtomicU64,
}

impl TraceRing {
    pub fn new(cap: usize) -> Self {
        TraceRing { cap: cap.max(1), lines: Mutex::new(VecDeque::new()), dropped: AtomicU64::new(0) }
    }

    pub fn push(&self, line: String) {
        let mut lines = self.lines.lock().unwrap();
        if lines.len() == self.cap {
            lines.pop_front();
            self.dropped.fetch_add(1, Relaxed);
        }
        lines.push_back(line);
    }

    pub fn len(&self) -> usize {
        self.lines.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted to make room since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// The buffered events, oldest first, as one JSON-lines string.
    pub fn dump(&self) -> String {
        self.dump_with(usize::MAX, |_| true)
    }

    /// The newest `limit` events whose line passes `keep`, oldest
    /// first. The predicate sees the raw JSON line — callers own the
    /// schema, so e.g. a kind filter is `|l| l.contains("\"event\":\"slide\"")`.
    pub fn dump_with(&self, limit: usize, mut keep: impl FnMut(&str) -> bool) -> String {
        let lines = self.lines.lock().unwrap();
        // Walk newest→oldest so `limit` keeps the most recent matches,
        // then emit in chronological order.
        let mut kept: Vec<&String> = Vec::new();
        for l in lines.iter().rev() {
            if kept.len() >= limit {
                break;
            }
            if keep(l) {
                kept.push(l);
            }
        }
        let mut out = String::with_capacity(kept.iter().map(|l| l.len() + 1).sum());
        for l in kept.iter().rev() {
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_every_n() {
        let s = Sampler::new(3);
        let hits: Vec<bool> = (0..9).map(|_| s.sample()).collect();
        assert_eq!(hits, [true, false, false, true, false, false, true, false, false]);
        let off = Sampler::new(0);
        assert!(!off.enabled());
        assert!((0..10).all(|_| !off.sample()));
    }

    #[test]
    fn ring_evicts_oldest() {
        let r = TraceRing::new(3);
        for i in 0..5 {
            r.push(format!("{{\"i\":{i}}}"));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.dump(), "{\"i\":2}\n{\"i\":3}\n{\"i\":4}\n");
    }

    #[test]
    fn filtered_dump_keeps_newest_matches_in_order() {
        let r = TraceRing::new(8);
        for i in 0..6 {
            let kind = if i % 2 == 0 { "request" } else { "slide" };
            r.push(format!("{{\"event\":\"{kind}\",\"i\":{i}}}"));
        }
        // Newest 2 requests, chronological.
        let out = r.dump_with(2, |l| l.contains("\"event\":\"request\""));
        assert_eq!(out, "{\"event\":\"request\",\"i\":2}\n{\"event\":\"request\",\"i\":4}\n");
        // Limit only.
        let out = r.dump_with(1, |_| true);
        assert_eq!(out, "{\"event\":\"slide\",\"i\":5}\n");
        // No matches → empty string.
        assert_eq!(r.dump_with(10, |l| l.contains("nope")), "");
        // dump() delegates through the unfiltered path.
        assert_eq!(r.dump().lines().count(), 6);
    }
}
