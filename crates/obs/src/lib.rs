//! dppr-obs: std-only observability primitives for the dppr stack.
//!
//! Three pieces, mirroring how the paper instruments its kernels
//! (per-phase timing rather than end-to-end black boxes):
//!
//! - [`hist`]: fixed-bucket log-scale histograms (~×1.2 per bucket)
//!   with thread-local accumulation, exact merging across shards, and
//!   p50/p90/p99/p999 extraction at bucket resolution.
//! - [`registry`]: a named-metric registry (counters, gauges,
//!   histograms) with Prometheus text-format exposition.
//! - [`trace`]: every-Nth sampling and a bounded JSON-lines ring for
//!   end-to-end request/slide traces.
//! - [`series`]: a fixed-capacity ring of periodic metric snapshots
//!   with windowed last/min/max/avg/rate queries — the substrate the
//!   SLO burn-rate evaluation and `/series` endpoint read from.
//! - [`process`]: best-effort `/proc/self` gauges (RSS, open fds,
//!   thread count).
//!
//! Nothing here knows about PPR, HTTP, or the WAL — the serving layer
//! owns metric names and trace schemas; this crate owns the mechanics.

pub mod hist;
pub mod process;
pub mod registry;
pub mod series;
pub mod trace;

pub use hist::{bounds, bucket_index, HistSnapshot, Histogram, LocalHistogram};
pub use process::ProcessStats;
pub use registry::{escape_label_value, Counter, Gauge, PromText, Registry, Unit};
pub use series::{SeriesRing, SeriesWindow};
pub use trace::{Sampler, TraceRing};
