//! The mutable directed graph all engines run on.
//!
//! `DynamicGraph` maintains *both* adjacency directions because the local
//! push of the paper walks **in-neighbors** (`Nin(u)` in Algorithms 2–4)
//! while `RestoreInvariant` and the random-walk baseline need out-degrees and
//! out-neighbors. Edges are stored in unsorted adjacency vectors: insertion
//! is amortized O(1); deletion is O(deg) via `swap_remove`, which is the
//! standard trade-off for streaming graph stores (cf. STINGER [14]).

use crate::types::{EdgeOp, EdgeUpdate, VertexId};

/// An in-memory directed graph supporting the dynamic update model of §2.2.
///
/// Vertices are dense `u32` ids `0..num_vertices()`. Inserting an edge whose
/// endpoint exceeds the current vertex count grows the vertex set (the
/// paper: "an edge insertion may introduce new vertices"); deleting an edge
/// never shrinks ids, but [`DynamicGraph::active_vertices`] reports how many
/// vertices currently have non-zero degree (the paper's `|V^t|` accounting).
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    out_adj: Vec<Vec<VertexId>>,
    in_adj: Vec<Vec<VertexId>>,
    num_edges: usize,
}

impl DynamicGraph {
    /// Creates an empty graph with no vertices.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with `n` isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        DynamicGraph {
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph from a list of directed edges, inserting each with
    /// [`DynamicGraph::insert_edge`] (duplicates and self-loops are skipped).
    pub fn from_edges<I>(edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut g = DynamicGraph::new();
        for (u, v) in edges {
            g.insert_edge(u, v);
        }
        g
    }

    /// Number of vertex ids allocated (isolated vertices included).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of directed edges currently present.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of vertices with non-zero (in+out) degree.
    pub fn active_vertices(&self) -> usize {
        (0..self.num_vertices())
            .filter(|&v| !self.out_adj[v].is_empty() || !self.in_adj[v].is_empty())
            .count()
    }

    /// Average out-degree `d = m/n` over allocated vertices (the `d` of
    /// Theorem 1). Returns 0 for an empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges as f64 / self.num_vertices() as f64
        }
    }

    /// Grows the vertex set so `v` is a valid id.
    #[inline]
    pub fn ensure_vertex(&mut self, v: VertexId) {
        let need = v as usize + 1;
        if need > self.out_adj.len() {
            self.out_adj.resize_with(need, Vec::new);
            self.in_adj.resize_with(need, Vec::new);
        }
    }

    /// Out-degree `dout(u)`; zero for ids outside the current vertex set.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.out_adj.get(u as usize).map_or(0, Vec::len)
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: VertexId) -> usize {
        self.in_adj.get(u as usize).map_or(0, Vec::len)
    }

    /// The out-neighbor set `Nout(u)` (unsorted).
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        self.out_adj.get(u as usize).map_or(&[], Vec::as_slice)
    }

    /// The in-neighbor set `Nin(u)` (unsorted) — the direction the local
    /// push propagates residuals along.
    #[inline]
    pub fn in_neighbors(&self, u: VertexId) -> &[VertexId] {
        self.in_adj.get(u as usize).map_or(&[], Vec::as_slice)
    }

    /// Whether the directed edge `u → v` is present. O(dout(u)).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).contains(&v)
    }

    /// Inserts the directed edge `u → v`. Returns `false` (and leaves the
    /// graph unchanged) for self-loops and already-present edges — the
    /// paper's graphs are simple.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || self.has_edge(u, v) {
            return false;
        }
        self.insert_edge_unchecked(u, v);
        true
    }

    /// Inserts `u → v` without the duplicate check. Safe to use when the
    /// caller guarantees uniqueness (e.g. a random edge permutation, where
    /// each edge occurs once); produces a multigraph otherwise.
    #[inline]
    pub fn insert_edge_unchecked(&mut self, u: VertexId, v: VertexId) {
        self.ensure_vertex(u.max(v));
        self.out_adj[u as usize].push(v);
        self.in_adj[v as usize].push(u);
        self.num_edges += 1;
    }

    /// Deletes the directed edge `u → v`. Returns `false` if absent.
    /// Adjacency order is not preserved (`swap_remove`).
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let Some(out) = self.out_adj.get_mut(u as usize) else {
            return false;
        };
        let Some(pos) = out.iter().position(|&x| x == v) else {
            return false;
        };
        out.swap_remove(pos);
        let inn = &mut self.in_adj[v as usize];
        let pos = inn
            .iter()
            .position(|&x| x == u)
            .expect("in/out adjacency desynchronized");
        inn.swap_remove(pos);
        self.num_edges -= 1;
        true
    }

    /// Applies one [`EdgeUpdate`]; returns whether the graph changed.
    pub fn apply(&mut self, upd: EdgeUpdate) -> bool {
        match upd.op {
            EdgeOp::Insert => self.insert_edge(upd.src, upd.dst),
            EdgeOp::Delete => self.delete_edge(upd.src, upd.dst),
        }
    }

    /// Iterates over all directed edges `(u, v)` in unspecified order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.out_adj
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u as VertexId, v)))
    }

    /// The ids of the `k` vertices with the largest out-degree, sorted by
    /// descending degree (ties by ascending id). This is how the paper picks
    /// source vertices ("top-10, top-1K and top-1M out-degrees", Table 2).
    pub fn top_out_degree_vertices(&self, k: usize) -> Vec<VertexId> {
        let mut ids: Vec<VertexId> = (0..self.num_vertices() as VertexId).collect();
        ids.sort_unstable_by(|&a, &b| {
            self.out_degree(b).cmp(&self.out_degree(a)).then(a.cmp(&b))
        });
        ids.truncate(k);
        ids
    }

    /// Checks internal consistency between the two adjacency directions.
    /// O(n + m log m); intended for tests and debug assertions.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.out_adj.len() != self.in_adj.len() {
            return Err("vertex array length mismatch".into());
        }
        let mut fwd: Vec<(VertexId, VertexId)> = self.edges().collect();
        let mut bwd: Vec<(VertexId, VertexId)> = self
            .in_adj
            .iter()
            .enumerate()
            .flat_map(|(v, us)| us.iter().map(move |&u| (u, v as VertexId)))
            .collect();
        if fwd.len() != self.num_edges {
            return Err(format!(
                "edge count {} != out-adjacency total {}",
                self.num_edges,
                fwd.len()
            ));
        }
        fwd.sort_unstable();
        bwd.sort_unstable();
        if fwd != bwd {
            return Err("in/out adjacency disagree".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = DynamicGraph::new();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_degree(7), 0);
        assert_eq!(g.in_degree(7), 0);
        assert!(g.out_neighbors(7).is_empty());
        assert!(!g.has_edge(0, 1));
        g.check_consistency().unwrap();
    }

    #[test]
    fn insert_grows_vertex_set() {
        let mut g = DynamicGraph::new();
        assert!(g.insert_edge(2, 5));
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_degree(2), 1);
        assert_eq!(g.in_degree(5), 1);
        assert_eq!(g.out_neighbors(2), &[5]);
        assert_eq!(g.in_neighbors(5), &[2]);
        g.check_consistency().unwrap();
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut g = DynamicGraph::new();
        assert!(g.insert_edge(0, 1));
        assert!(!g.insert_edge(0, 1));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = DynamicGraph::new();
        assert!(!g.insert_edge(3, 3));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn delete_roundtrip() {
        let mut g = DynamicGraph::from_edges([(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 3);
        assert!(g.delete_edge(0, 1));
        assert!(!g.delete_edge(0, 1));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(1), 0);
        assert!(g.has_edge(0, 2));
        g.check_consistency().unwrap();
    }

    #[test]
    fn delete_absent_edge_is_noop() {
        let mut g = DynamicGraph::from_edges([(0, 1)]);
        assert!(!g.delete_edge(1, 0));
        assert!(!g.delete_edge(9, 9));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn apply_updates() {
        let mut g = DynamicGraph::new();
        assert!(g.apply(EdgeUpdate::insert(0, 1)));
        assert!(g.apply(EdgeUpdate::insert(1, 2)));
        assert!(g.apply(EdgeUpdate::delete(0, 1)));
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn active_vertices_counts_nonzero_degree() {
        let mut g = DynamicGraph::with_vertices(10);
        assert_eq!(g.active_vertices(), 0);
        g.insert_edge(0, 1);
        g.insert_edge(2, 1);
        assert_eq!(g.active_vertices(), 3);
        g.delete_edge(0, 1);
        assert_eq!(g.active_vertices(), 2);
    }

    #[test]
    fn top_out_degree_ordering() {
        let mut g = DynamicGraph::new();
        for v in 1..=4 {
            g.insert_edge(0, v); // dout(0)=4
        }
        for v in [0, 2, 3] {
            g.insert_edge(1, v); // dout(1)=3
        }
        g.insert_edge(2, 0); // dout(2)=1
        let top = g.top_out_degree_vertices(2);
        assert_eq!(top, vec![0, 1]);
        let all = g.top_out_degree_vertices(100);
        assert_eq!(all.len(), g.num_vertices());
        assert_eq!(all[0], 0);
    }

    #[test]
    fn edges_iterator_matches_count() {
        let g = DynamicGraph::from_edges([(0, 1), (1, 2), (2, 0), (0, 2)]);
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2), (2, 0)]);
    }

    #[test]
    fn average_degree() {
        let g = DynamicGraph::from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!((g.average_degree() - 1.0).abs() < 1e-12);
        assert_eq!(DynamicGraph::new().average_degree(), 0.0);
    }
}
