//! The serving instance: write loop + acceptor + event-loop shards.
//!
//! ```text
//!                     ┌────────────────────────────────────────────┐
//!  edge stream ──────▶│ write loop (owns StreamDriver+MultiSource) │
//!                     │  slide → apply batch → advance epoch ──────┼──▶ publish
//!                     └────────────▲───────────────────────────────┘    per-session
//!                                  │ control (open/close)               SnapshotCell
//!  TCP clients ──▶ acceptor ──▶ shard event loops ── lookup ──▶ registry
//!                  (bounded        │ poll(2), keep-alive,          │
//!                   hand-off,      │ per-conn state machines       └─▶ lock-free load
//!                   503 shed)      └── epoch-keyed QueryCache          of Arc<QuerySnapshot>
//! ```
//!
//! Readers never hold a lock while the writer works: a query takes one
//! brief `RwLock` read to find the session, then loads the published
//! snapshot lock-free ([`crate::SnapshotCell::load`]). Session open/close
//! requests travel over a channel and are applied by the write loop
//! *between* batches, which is what keeps `MultiSourcePpr`'s mutable state
//! single-threaded.
//!
//! The front end is event-driven (see [`crate::event`]): each shard
//! thread owns its connections and multiplexes them with `poll(2)`, so a
//! keep-alive client costs one registration instead of one thread, a
//! non-reading client is bounded by the write deadline instead of
//! pinning a worker, and overload surfaces as fast `503 Retry-After`
//! responses instead of an unbounded backlog.

use crate::cache::{CacheStats, QueryCache, QueryKind};
use crate::durability::{self, DurabilityConfig, RecoveryReport};
use crate::epoch::{EpochDomain, Reader};
use crate::event::{spawn_shard, ConnCounters, Router, ShardConfig, ShardGate, ShardHandle};
use crate::http::{render_response, Request, Response};
use crate::json::{error_body, JsonBuf};
use crate::metrics::{ServerMetrics, WriteShardStages};
use crate::registry::{OpenOutcome, SessionRegistry};
use crate::snapshot::QuerySnapshot;
use dppr_core::queries::BoundedScore;
use dppr_core::{CounterSnapshot, MultiSourcePpr, PprState, PushVariant};
use dppr_graph::{GraphStream, SubstrateStats, VertexId};
use dppr_obs::{Gauge, LocalHistogram, PromText};
use dppr_stream::StreamDriver;
use dppr_wal::{Wal, WalOptions, WalRecord, WalStats};
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::mpsc::{self, sync_channel, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// `Content-Type` of the Prometheus text exposition format.
const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Tuning for one serving instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// Event-loop shard threads.
    pub threads: usize,
    /// Query-cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Session budget; opening past it evicts the LRU session.
    pub session_capacity: usize,
    /// Teleport probability α.
    pub alpha: f64,
    /// Accuracy ε of every maintained vector.
    pub epsilon: f64,
    /// Window-slide batch size (logical edges per slide).
    pub batch: usize,
    /// Stop sliding after this many slides (0 = run the stream dry).
    pub max_slides: usize,
    /// Optional pause between slides, to throttle the update stream.
    pub slide_pause: Duration,
    /// Close a connection that completes no request for this long
    /// (keep-alive idle limit and slow-request limit in one).
    pub read_timeout: Duration,
    /// Close a connection whose peer stops draining responses for this
    /// long — a non-reading client must not pin server state forever.
    pub write_timeout: Duration,
    /// Shed query traffic with `503 Retry-After` while a window slide has
    /// been in flight longer than this (the published epoch is lagging
    /// the stream). Zero disables shedding.
    pub shed_after: Duration,
    /// Bound on each shard's accept hand-off queue; with every queue
    /// full, new connections are answered `503 Retry-After` and closed.
    pub conn_backlog: usize,
    /// Durability: `Some` logs every slide batch to a WAL and
    /// checkpoints session states, so a crashed instance recovers by
    /// loading the newest checkpoint and replaying the log tail. `None`
    /// serves purely in memory (the previous behavior).
    pub durability: Option<DurabilityConfig>,
    /// Trace every Nth request and every Nth slide end-to-end into the
    /// in-memory trace ring (`GET /trace`). 0 disables tracing.
    pub trace_sample: u64,
    /// Capacity of the trace ring in events (oldest evicted first).
    pub trace_capacity: usize,
    /// Independent write loops (0 and 1 both mean unsharded). Sessions
    /// are partitioned by a stable hash of their source vertex
    /// ([`shard_of`]); each write shard owns its own engine, session
    /// registry, query cache, epoch domain, and (with durability on) its
    /// own WAL directory and checkpoints under `data_dir/shard-<i>/`.
    pub write_shards: usize,
    /// Accuracy auditing: recompute ground-truth PPR for up to this many
    /// live sessions per audit tick (round-robin across write shards)
    /// and report estimate error as `dppr_audit_*` families. 0 disables
    /// auditing (the observer still samples the metrics time-series).
    pub audit_sample: usize,
    /// Observer tick period: the audit cadence, the time-series sampling
    /// period, and the SLO burn-rate evaluation interval.
    pub audit_interval: Duration,
    /// Latency SLO: target p99 for `dppr_http_request_seconds` per
    /// observer tick. Breaching the fast burn window sheds query
    /// traffic and flips `/healthz` to degraded. Zero disables.
    pub slo_p99: Duration,
    /// Availability SLO target as a success fraction (e.g. 0.999): the
    /// shed ratio `shed/requests` burns against the `1 − target` error
    /// budget. Zero disables.
    pub slo_availability: f64,
    /// Accuracy SLO: minimum audited top-10 overlap (e.g. 0.9). Burns
    /// against the `1 − target` budget. Zero disables (and it only
    /// fires when auditing is on).
    pub slo_topk_overlap: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            threads: 4,
            cache_capacity: 1024,
            session_capacity: 64,
            alpha: 0.15,
            epsilon: 1e-4,
            batch: 500,
            max_slides: 0,
            slide_pause: Duration::ZERO,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            shed_after: Duration::from_secs(1),
            conn_backlog: 256,
            durability: None,
            trace_sample: 0,
            trace_capacity: 1024,
            write_shards: 1,
            audit_sample: 0,
            audit_interval: Duration::from_millis(500),
            slo_p99: Duration::ZERO,
            slo_availability: 0.0,
            slo_topk_overlap: 0.0,
        }
    }
}

/// Stable assignment of a session source to a write shard: a splitmix64
/// finalizer over the vertex id, reduced mod `write_shards`. The mapping
/// depends only on `(source, write_shards)`, so a session lands on the
/// same shard across restarts and across processes (the recovery
/// harness and the router must agree on it).
pub fn shard_of(source: VertexId, write_shards: usize) -> usize {
    if write_shards <= 1 {
        return 0;
    }
    let mut x = (source as u64) ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % write_shards as u64) as usize
}

/// Where write shard `i` keeps its WAL + checkpoints. Unsharded
/// instances keep the historical layout (the root itself), so existing
/// durable directories stay recoverable; sharded instances get one
/// subdirectory per shard.
pub fn shard_data_dir(root: &Path, shard: usize, write_shards: usize) -> PathBuf {
    if write_shards <= 1 {
        root.to_path_buf()
    } else {
        root.join(format!("shard-{shard}"))
    }
}

/// Live counters of a serving instance (all monotone).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Window slides applied.
    pub slides: AtomicU64,
    /// Updates handed to the engine (inserts + deletes, arcs).
    pub updates_offered: AtomicU64,
    /// Updates that changed the graph.
    pub updates_applied: AtomicU64,
    /// Nanoseconds spent inside `apply_batch` (the paper's engine latency).
    pub update_nanos: AtomicU64,
    /// Query requests answered (any kind, any status).
    pub queries: AtomicU64,
    /// Query requests shed with 503 while the write loop lagged.
    pub shed: AtomicU64,
    /// Sessions opened over HTTP.
    pub sessions_opened: AtomicU64,
    /// Sessions closed over HTTP.
    pub sessions_closed: AtomicU64,
    /// Sessions evicted by the LRU budget.
    pub sessions_evicted: AtomicU64,
    /// Whether the update stream has been run dry.
    pub stream_done: AtomicBool,
    /// Start-relative nanos (+1) of the slide currently being applied;
    /// 0 while the write loop is idle/between slides. The shed check
    /// reads this to see how long the published epoch has been stale.
    pub slide_started_ns: AtomicU64,
    /// Epoch of the newest durable checkpoint (0 with durability off).
    pub durable_epoch: AtomicU64,
    /// Checkpoints written successfully (initial + periodic + final).
    pub checkpoints: AtomicU64,
    /// Checkpoint attempts that failed (serving continues; the WAL tail
    /// keeps growing until one succeeds).
    pub checkpoint_failures: AtomicU64,
    /// Records appended to the WAL.
    pub wal_records: AtomicU64,
    /// Live WAL segment count (sealed + active).
    pub wal_segments: AtomicU64,
    /// True once a WAL append failed: the write loop has stopped sliding
    /// and the instance serves read-only from the last published epoch.
    pub degraded: AtomicBool,
    /// Why the instance degraded to read-only (the WAL error text);
    /// `None` while healthy. Surfaced by `/healthz`.
    pub degraded_reason: Mutex<Option<String>>,
    /// Start-relative nanos (+1) of the last successful WAL fsync; 0 if
    /// none has completed yet. `/healthz` reports the age.
    pub last_fsync_ns: AtomicU64,
}

impl ServerStats {
    /// Sustained update throughput (updates offered per second of engine
    /// time), the same quantity as `RunSummary::throughput`. Reports 0
    /// until the first slide completes — before that the counters hold
    /// only the bootstrap window, which is warmup, not sustained rate.
    pub fn updates_per_sec(&self) -> f64 {
        if self.slides.load(Relaxed) == 0 {
            return 0.0;
        }
        let secs = self.update_nanos.load(Relaxed) as f64 * 1e-9;
        if secs == 0.0 {
            0.0
        } else {
            self.updates_offered.load(Relaxed) as f64 / secs
        }
    }
}

/// Final numbers reported by [`ServerHandle::join`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Last published epoch.
    pub epoch: u64,
    /// Window slides applied.
    pub slides: u64,
    /// Updates handed to the engine.
    pub updates_offered: u64,
    /// Updates that changed the graph.
    pub updates_applied: u64,
    /// Update throughput while serving (updates/second of engine time).
    pub updates_per_sec: f64,
    /// Query requests answered.
    pub queries: u64,
    /// HTTP requests answered (all endpoints, all statuses).
    pub http_requests: u64,
    /// Connections accepted by the shards.
    pub connections: u64,
    /// Malformed/oversized requests answered 400.
    pub bad_requests: u64,
    /// Connections reaped by the read deadline.
    pub read_timeouts: u64,
    /// Connections reaped by the write deadline.
    pub write_timeouts: u64,
    /// Queries shed 503 while the write loop lagged.
    pub shed: u64,
    /// Cache counters.
    pub cache: CacheStats,
    /// Sessions open at shutdown.
    pub sessions: usize,
    /// Whether the update stream had been run dry.
    pub stream_done: bool,
    /// Whether a WAL failure forced read-only serving.
    pub degraded: bool,
    /// Epoch of the newest durable checkpoint (0 with durability off).
    /// Sharded instances report the minimum across shards — the epoch
    /// every shard is durable through.
    pub durable_epoch: u64,
    /// Checkpoints written over the instance lifetime (all shards).
    pub checkpoints: u64,
    /// Independent write loops this instance ran.
    pub write_shards: usize,
}

pub(crate) enum Control {
    Open(VertexId),
    Close(VertexId),
    /// Accuracy-audit probe from the observer thread: the owning write
    /// loop (between batches, so its graph matches the published epoch)
    /// clones the graph plus up to `max_sessions` sessions' published
    /// snapshots and live states into an [`AuditJob`] and replies. The
    /// expensive ground-truth solve happens on the observer thread.
    Audit { max_sessions: usize, reply: SyncSender<crate::audit::AuditJob> },
}

/// Everything one write shard owns: its epoch domain, session registry,
/// query cache, and the per-shard view of the stats `/stats`, `/healthz`
/// and `/metrics` merge across shards. The engine, graph, and WAL live
/// on the shard's writer thread; the mutexed snapshots here are
/// refreshed by that thread after every slide.
pub(crate) struct WriteShardState {
    pub(crate) index: usize,
    pub(crate) domain: Arc<EpochDomain>,
    pub(crate) registry: Arc<SessionRegistry>,
    pub(crate) cache: Arc<QueryCache>,
    /// Slides this shard applied (the global counter sums all shards).
    pub(crate) slides: AtomicU64,
    /// Start-relative nanos (+1) of this shard's in-flight slide; 0
    /// while idle. Shedding is per shard: only queries routed to a
    /// lagging shard are answered 503.
    pub(crate) slide_started_ns: AtomicU64,
    /// Whether this shard ran its stream copy dry.
    pub(crate) stream_done: AtomicBool,
    /// True once this shard's WAL failed (shard serves read-only).
    pub(crate) degraded: AtomicBool,
    pub(crate) degraded_reason: Mutex<Option<String>>,
    /// Epoch of this shard's newest durable checkpoint.
    pub(crate) durable_epoch: AtomicU64,
    /// Start-relative nanos (+1) of this shard's last WAL fsync.
    pub(crate) last_fsync_ns: AtomicU64,
    pub(crate) wal_records: AtomicU64,
    pub(crate) wal_segments: AtomicU64,
    /// Engine push-work counters, refreshed per slide.
    pub(crate) engine: Mutex<CounterSnapshot>,
    /// Adjacency-substrate occupancy, refreshed per slide.
    pub(crate) graph: Mutex<SubstrateStats>,
    /// WAL counters as of the last append/sync.
    pub(crate) wal: Mutex<WalStats>,
    /// This shard's window bounds in logical stream positions.
    pub(crate) window_start: AtomicU64,
    pub(crate) window_end: AtomicU64,
    /// Round-robin cursor over this shard's sessions for audit probes
    /// (advanced by the write loop each time it serves an audit).
    pub(crate) audit_cursor: AtomicU64,
    /// Labelled `{write_shard="i"}` stage histograms.
    pub(crate) stage: WriteShardStages,
}

/// State shared by the shards, the acceptor, the write loops, and the
/// audit/SLO observer.
pub(crate) struct Ctx {
    /// One entry per write shard; length ≥ 1.
    pub(crate) shards: Vec<Arc<WriteShardState>>,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) conn: Arc<ConnCounters>,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) addr: SocketAddr,
    /// Instance birth; `slide_started_ns` is relative to this.
    pub(crate) start: Instant,
    /// See [`ServeConfig::shed_after`].
    pub(crate) shed_after: Duration,
    /// One past the largest vertex id the stream will ever mention; the
    /// upper bound for `/session/open` requests (an unchecked id would
    /// make `cold_start` allocate `source + 1` slots — a single request
    /// naming vertex 4e9 must not OOM the server).
    pub(crate) vertex_bound: usize,
    /// Whether this instance runs with a WAL + checkpoints.
    pub(crate) durability_enabled: bool,
    /// Pipeline histograms, trace ring, and the metric registry.
    pub(crate) metrics: Arc<ServerMetrics>,
    /// Per-shard `(connections, queue_depth)` gauges, indexed by shard.
    pub(crate) shard_gauges: Vec<(Arc<Gauge>, Arc<Gauge>)>,
    /// Total logical edges in the stream (constant per instance).
    pub(crate) stream_len: u64,
    /// Accuracy-audit scalars published by the observer thread.
    pub(crate) audit: Arc<crate::audit::AuditShared>,
    /// SLO burn-rate state (targets, burn gauges, breach counters, the
    /// latency shed flag).
    pub(crate) slo: Arc<crate::audit::SloEngine>,
    /// The in-process metrics time-series (`GET /series`).
    pub(crate) series: Arc<dppr_obs::SeriesRing>,
    /// Observer tick period (`/series` reports it so dashboards can
    /// convert rows to wall time).
    pub(crate) audit_interval: Duration,
}

impl Ctx {
    /// Nanoseconds write shard `ws`'s in-flight slide has been running,
    /// or `None` while that shard is between slides.
    pub(crate) fn slide_in_flight(&self, ws: &WriteShardState) -> Option<Duration> {
        match ws.slide_started_ns.load(Relaxed) {
            0 => None,
            marker => {
                let started = Duration::from_nanos(marker - 1);
                Some(self.start.elapsed().saturating_sub(started))
            }
        }
    }

    /// Whether queries routed to write shard `ws` should be shed.
    pub(crate) fn lagging(&self, ws: &WriteShardState) -> bool {
        !self.shed_after.is_zero()
            && self.slide_in_flight(ws).is_some_and(|d| d > self.shed_after)
    }

    /// Whether any write shard is currently behind (`/healthz`).
    pub(crate) fn any_lagging(&self) -> bool {
        self.shards.iter().any(|s| self.lagging(s))
    }

    /// The epoch every shard has published through — the instance-level
    /// epoch. (Unsharded: the one shard's epoch, unchanged semantics.)
    pub(crate) fn epoch_min(&self) -> u64 {
        self.shards.iter().map(|s| s.domain.epoch()).min().unwrap_or(0)
    }

    /// Re-derives the global durable epoch (min across shards) after any
    /// shard checkpoints: the instance is only durable through an epoch
    /// every shard has checkpointed or logged past.
    pub(crate) fn refresh_durable_epoch(&self) {
        let min = self.shards.iter().map(|s| s.durable_epoch.load(Relaxed)).min().unwrap_or(0);
        self.stats.durable_epoch.store(min, Relaxed);
    }

    /// Global stream-done flag: set once every shard ran its copy dry.
    pub(crate) fn refresh_stream_done(&self) {
        if self.shards.iter().all(|s| s.stream_done.load(Relaxed)) {
            self.stats.stream_done.store(true, Relaxed);
        }
    }

    /// Re-derives the global WAL totals (sums) and the oldest-flush
    /// marker after any shard appends or syncs.
    pub(crate) fn refresh_wal_totals(&self) {
        let mut records = 0;
        let mut segments = 0;
        let mut oldest = u64::MAX;
        for s in &self.shards {
            records += s.wal_records.load(Relaxed);
            segments += s.wal_segments.load(Relaxed);
            oldest = oldest.min(s.last_fsync_ns.load(Relaxed));
        }
        self.stats.wal_records.store(records, Relaxed);
        self.stats.wal_segments.store(segments, Relaxed);
        // The global marker is the *oldest* per-shard flush (largest
        // age): conservative for the `/healthz` staleness report. Any
        // shard that never flushed keeps the global marker at 0 (null).
        self.stats.last_fsync_ns.store(if oldest == u64::MAX { 0 } else { oldest }, Relaxed);
    }

    /// Merged cache counters across every shard's query cache.
    pub(crate) fn cache_stats(&self) -> CacheStats {
        self.shards
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merge(&s.cache.stats()))
    }

    /// Open sessions across all shards.
    pub(crate) fn sessions_len(&self) -> usize {
        self.shards.iter().map(|s| s.registry.len()).sum()
    }
}

/// A running serving instance. Dropping the handle without calling
/// [`ServerHandle::join`] detaches the threads (they exit on shutdown).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    write_shards: Vec<Arc<WriteShardState>>,
    stats: Arc<ServerStats>,
    conn: Arc<ConnCounters>,
    acceptor: Option<JoinHandle<()>>,
    shards: Vec<ShardHandle>,
    writers: Vec<JoinHandle<()>>,
    recoveries: Vec<Option<RecoveryReport>>,
    metrics: Arc<ServerMetrics>,
}

impl ServerHandle {
    /// The bound address (query it for the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Live connection-layer counters.
    pub fn conn_counters(&self) -> &ConnCounters {
        &self.conn
    }

    /// Write shard 0's query cache (the only one unsharded). Sharded
    /// callers wanting totals should sum [`ServerHandle::shard_cache`]
    /// stats across [`ServerHandle::write_shard_count`] shards.
    pub fn cache(&self) -> &QueryCache {
        &self.write_shards[0].cache
    }

    /// Write shard 0's session registry (the only one unsharded).
    pub fn registry(&self) -> &SessionRegistry {
        &self.write_shards[0].registry
    }

    /// Independent write loops this instance runs (≥ 1).
    pub fn write_shard_count(&self) -> usize {
        self.write_shards.len()
    }

    /// Write shard `i`'s session registry.
    pub fn shard_registry(&self, i: usize) -> &SessionRegistry {
        &self.write_shards[i].registry
    }

    /// Write shard `i`'s query cache.
    pub fn shard_cache(&self, i: usize) -> &QueryCache {
        &self.write_shards[i].cache
    }

    /// Write shard `i`'s published epoch.
    pub fn shard_epoch(&self, i: usize) -> u64 {
        self.write_shards[i].domain.epoch()
    }

    /// The instance's metric registry and pipeline histograms (what
    /// `GET /metrics` renders) — report generators read percentiles
    /// straight from here.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The buffered trace events as JSON lines (what `GET /trace`
    /// serves); empty when tracing is off.
    pub fn trace_dump(&self) -> String {
        self.metrics.trace.dump()
    }

    /// Current epoch: the minimum across write shards (every session is
    /// served at least this fresh).
    pub fn epoch(&self) -> u64 {
        self.write_shards.iter().map(|s| s.domain.epoch()).min().unwrap_or(0)
    }

    /// What recovery did at startup for write shard 0, if this instance
    /// resumed from a checkpoint (`None` for fresh starts and
    /// memory-only instances).
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recoveries.first().and_then(Option::as_ref)
    }

    /// Per-write-shard recovery reports, in shard order.
    pub fn recoveries(&self) -> &[Option<RecoveryReport>] {
        &self.recoveries
    }

    /// Whether shutdown has been requested (flag or `POST /shutdown`).
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(SeqCst)
    }

    /// Requests shutdown and wakes the acceptor and every shard.
    pub fn shutdown(&self) {
        self.shutdown.store(true, SeqCst);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for s in &self.shards {
            s.wake();
        }
    }

    /// Shuts down, joins every thread, and reports the final counters.
    pub fn join(mut self) -> ServeReport {
        self.shutdown();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for s in self.shards.drain(..) {
            s.join();
        }
        for h in self.writers.drain(..) {
            let _ = h.join();
        }
        ServeReport {
            epoch: self.write_shards.iter().map(|s| s.domain.epoch()).min().unwrap_or(0),
            slides: self.stats.slides.load(Relaxed),
            updates_offered: self.stats.updates_offered.load(Relaxed),
            updates_applied: self.stats.updates_applied.load(Relaxed),
            updates_per_sec: self.stats.updates_per_sec(),
            queries: self.stats.queries.load(Relaxed),
            http_requests: self.conn.requests.load(Relaxed),
            connections: self.conn.accepted.load(Relaxed),
            bad_requests: self.conn.bad_requests.load(Relaxed),
            read_timeouts: self.conn.read_timeouts.load(Relaxed),
            write_timeouts: self.conn.write_timeouts.load(Relaxed),
            shed: self.stats.shed.load(Relaxed),
            cache: self
                .write_shards
                .iter()
                .fold(CacheStats::default(), |acc, s| acc.merge(&s.cache.stats())),
            sessions: self.write_shards.iter().map(|s| s.registry.len()).sum(),
            stream_done: self.stats.stream_done.load(Relaxed),
            degraded: self.stats.degraded.load(Relaxed),
            durable_epoch: self.stats.durable_epoch.load(Relaxed),
            checkpoints: self.stats.checkpoints.load(Relaxed),
            write_shards: self.write_shards.len(),
        }
    }
}

/// Warms the initial window of `stream` and picks the `k` top-out-degree
/// vertices as serving sources — the paper's hub-vertex methodology.
///
/// Pass the **same** `init_fraction` here as to [`start`]: the probe must
/// replay exactly the window the server will bootstrap with, or the picked
/// hubs belong to a different graph than the one actually served (this
/// helper exists so the CLI, the load generator, and the examples cannot
/// drift apart on that pairing).
pub fn pick_top_degree_sources(
    stream: &GraphStream,
    init_fraction: f64,
    k: usize,
) -> Vec<VertexId> {
    let window = dppr_graph::SlidingWindow::new(stream.clone(), init_fraction);
    let mut probe = dppr_graph::DynamicGraph::new();
    for upd in window.initial_updates() {
        probe.apply(upd);
    }
    probe.top_out_degree_vertices(k)
}

/// Boots a serving instance over `stream`: applies the initial window for
/// every source in `sources` (so the returned handle is immediately
/// queryable), then starts the write loop, the acceptor, and the
/// event-loop shards. `init_fraction` is the sliding-window warmup share
/// (the paper uses 0.1).
pub fn start(
    stream: GraphStream,
    init_fraction: f64,
    sources: &[VertexId],
    cfg: ServeConfig,
) -> io::Result<ServerHandle> {
    let vertex_bound = stream.vertex_bound();
    if let Some(&s) = sources.iter().find(|&&s| (s as usize) >= vertex_bound) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("source {s} is outside the stream's vertex bound {vertex_bound}"),
        ));
    }
    let threads = cfg.threads.max(1);
    let n = cfg.write_shards.max(1);
    let stats = Arc::new(ServerStats::default());
    let conn_counters = Arc::new(ConnCounters::default());
    let shutdown = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(ServerMetrics::new(cfg.trace_sample, cfg.trace_capacity));

    // --- bootstrap every write shard synchronously: sessions are live
    // before we return. Each shard consumes its own copy of the whole
    // stream (the window slides identically everywhere) but maintains
    // only the sessions hashed to it — so a source's PPR state is
    // bit-identical under any shard count. Durable shards either recover
    // (their checkpoint + WAL tail) or bootstrap fresh and write their
    // epoch-1 base checkpoint.
    let mut boots: Vec<Boot> = Vec::with_capacity(n);
    let mut dcfgs: Vec<Option<DurabilityConfig>> = Vec::with_capacity(n);
    let mut shard_states: Vec<Arc<WriteShardState>> = Vec::with_capacity(n);
    for i in 0..n {
        // Event-loop shards each hold one Reader per write shard, + slack
        // for external Reader users (tests, in-process tools).
        let domain = EpochDomain::new(threads + 4);
        let shard_sources: Vec<VertexId> =
            sources.iter().copied().filter(|&s| shard_of(s, n) == i).collect();
        let registry = Arc::new(SessionRegistry::new(
            Arc::clone(&domain),
            cfg.session_capacity.div_ceil(n).max(shard_sources.len()).max(1),
        ));
        let cache = Arc::new(QueryCache::new(cfg.cache_capacity.div_ceil(n)));
        let dcfg = cfg.durability.as_ref().map(|d| DurabilityConfig {
            data_dir: shard_data_dir(&d.data_dir, i, n),
            ..d.clone()
        });
        let boot = match &dcfg {
            None => {
                let mut driver = StreamDriver::new(stream.clone(), init_fraction);
                let mut multi =
                    MultiSourcePpr::new(&shard_sources, cfg.alpha, cfg.epsilon, PushVariant::OPT);
                bootstrap_window(&mut driver, &mut multi, &domain, &registry, &stats);
                Boot { driver, multi, wal: None, recovery: None, durable_epoch: 0 }
            }
            Some(d) => durable_boot(
                stream.clone(),
                init_fraction,
                &shard_sources,
                &cfg,
                d,
                &domain,
                &registry,
                &stats,
            )?,
        };
        let (ws, we) = boot.driver.window_range();
        shard_states.push(Arc::new(WriteShardState {
            index: i,
            domain,
            registry,
            cache,
            slides: AtomicU64::new(0),
            slide_started_ns: AtomicU64::new(0),
            stream_done: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            degraded_reason: Mutex::new(None),
            durable_epoch: AtomicU64::new(boot.durable_epoch),
            last_fsync_ns: AtomicU64::new(0),
            wal_records: AtomicU64::new(0),
            wal_segments: AtomicU64::new(0),
            engine: Mutex::new(boot.multi.counters().snapshot()),
            graph: Mutex::new(boot.driver.graph().substrate_stats()),
            wal: Mutex::new(WalStats::default()),
            window_start: AtomicU64::new(ws as u64),
            window_end: AtomicU64::new(we as u64),
            audit_cursor: AtomicU64::new(0),
            stage: metrics.write_shard_stages(i),
        }));
        dcfgs.push(dcfg);
        boots.push(boot);
    }
    if cfg.durability.is_some() {
        let min = shard_states.iter().map(|s| s.durable_epoch.load(Relaxed)).min().unwrap_or(0);
        stats.durable_epoch.store(min, Relaxed);
    }

    let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
    let addr = listener.local_addr()?;

    let shard_gauges: Vec<(Arc<Gauge>, Arc<Gauge>)> = (0..threads)
        .map(|w| {
            (
                metrics.registry.gauge_with_label(
                    "dppr_shard_connections",
                    "Live connections owned by the shard",
                    "shard",
                    w.to_string(),
                ),
                metrics.registry.gauge_with_label(
                    "dppr_shard_queue_depth",
                    "Accepted connections awaiting adoption by the shard",
                    "shard",
                    w.to_string(),
                ),
            )
        })
        .collect();
    let stream_len = boots[0].driver.stream_len() as u64;
    let ctx = Arc::new(Ctx {
        shards: shard_states.clone(),
        stats: Arc::clone(&stats),
        conn: Arc::clone(&conn_counters),
        shutdown: Arc::clone(&shutdown),
        addr,
        start: Instant::now(),
        shed_after: cfg.shed_after,
        vertex_bound,
        durability_enabled: cfg.durability.is_some(),
        metrics: Arc::clone(&metrics),
        shard_gauges,
        stream_len,
        audit: Arc::new(crate::audit::AuditShared::new(&cfg)),
        slo: Arc::new(crate::audit::SloEngine::new(&cfg)),
        series: Arc::new(crate::audit::new_series_ring()),
        audit_interval: cfg.audit_interval.max(Duration::from_millis(10)),
    });

    // --- per-shard background checkpointer + write loop -------------------
    let mut ctl_txs: Vec<mpsc::Sender<Control>> = Vec::with_capacity(n);
    let mut writers: Vec<JoinHandle<()>> = Vec::with_capacity(n);
    let mut recoveries: Vec<Option<RecoveryReport>> = Vec::with_capacity(n);
    for (i, boot) in boots.into_iter().enumerate() {
        let (ctl_tx, ctl_rx) = mpsc::channel::<Control>();
        ctl_txs.push(ctl_tx);
        recoveries.push(boot.recovery);
        let dur = match (dcfgs[i].take(), boot.wal) {
            (Some(dcfg), Some(wal)) => Some(spawn_durable(
                dcfg,
                wal,
                boot.durable_epoch,
                Arc::clone(&ctx),
                Arc::clone(&shard_states[i]),
            )?),
            _ => None,
        };
        let writer = {
            let ctx = Arc::clone(&ctx);
            let shard = Arc::clone(&shard_states[i]);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name(format!("dppr-serve-writer-{i}"))
                .spawn(move || write_loop(boot.driver, boot.multi, ctl_rx, ctx, shard, cfg, dur))?
        };
        writers.push(writer);
    }

    // --- event-loop shards ------------------------------------------------
    let shard_cfg = ShardConfig {
        read_timeout: cfg.read_timeout,
        write_timeout: cfg.write_timeout,
    };
    let mut shards = Vec::with_capacity(threads);
    let mut gates: Vec<ShardGate> = Vec::with_capacity(threads);
    for w in 0..threads {
        let (conn_gauge, depth_gauge) = ctx.shard_gauges[w].clone();
        let router = RouterImpl {
            ctx: Arc::clone(&ctx),
            readers: shard_states.iter().map(|s| s.domain.register_reader()).collect(),
            ctl_txs: ctl_txs.clone(),
            shard: w,
            conn_gauge,
            depth_gauge,
            local_request: LocalHistogram::new(),
            local_parse: LocalHistogram::new(),
            local_route: LocalHistogram::new(),
            local_write: LocalHistogram::new(),
        };
        let (queue_tx, queue_rx) = sync_channel::<TcpStream>(cfg.conn_backlog.max(1));
        let shard = spawn_shard(
            format!("dppr-serve-shard-{w}"),
            shard_cfg.clone(),
            queue_rx,
            queue_tx,
            Arc::clone(&shutdown),
            Arc::clone(&conn_counters),
            router,
        )?;
        gates.push(shard.gate()?);
        shards.push(shard);
    }
    // --- audit + SLO observer --------------------------------------------
    // Always spawned: it samples the metrics time-series and evaluates
    // SLO burn rates every tick; the (optional) accuracy audit rides the
    // same ticker. It keeps its own control handles so audit probes can
    // reach the write loops.
    writers.push(crate::audit::spawn_observer(Arc::clone(&ctx), ctl_txs.clone(), &cfg)?);
    drop(ctl_txs);

    // --- acceptor ---------------------------------------------------------
    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        std::thread::Builder::new()
            .name("dppr-serve-acceptor".into())
            .spawn(move || {
                let mut next = 0usize;
                loop {
                    match listener.accept() {
                        Ok((conn, _)) => {
                            if shutdown.load(SeqCst) {
                                break; // wake-up connection, not a client
                            }
                            // Round-robin, falling through to any shard
                            // with room; every queue full → shed at the
                            // door with 503. A shard that adopted the
                            // connection leaves `pending` empty, which
                            // ends the probe loop gracefully (no panic
                            // path here: an acceptor abort would take the
                            // whole front end down with it).
                            let mut pending = Some(conn);
                            for probe in 0..gates.len() {
                                let Some(c) = pending.take() else { break };
                                match gates[(next + probe) % gates.len()].try_adopt(c) {
                                    Ok(()) => break,
                                    Err(back) => pending = Some(back),
                                }
                            }
                            if let Some(c) = pending {
                                stats.shed.fetch_add(1, Relaxed);
                                shed_at_door(c);
                            }
                            next = next.wrapping_add(1);
                        }
                        Err(_) => {
                            if shutdown.load(SeqCst) {
                                break;
                            }
                            // Persistent accept errors (e.g. fd
                            // exhaustion) must not busy-spin a core.
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        write_shards: shard_states,
        stats,
        conn: conn_counters,
        acceptor: Some(acceptor),
        shards,
        writers,
        recoveries,
        metrics,
    })
}

/// What bootstrapping produced, durable or not.
struct Boot {
    driver: StreamDriver,
    multi: MultiSourcePpr,
    wal: Option<Wal>,
    recovery: Option<RecoveryReport>,
    /// Epoch of the newest durable checkpoint at startup.
    durable_epoch: u64,
}

/// The original in-memory bootstrap: apply the initial window, advance to
/// epoch 1, open a session per source.
fn bootstrap_window(
    driver: &mut StreamDriver,
    multi: &mut MultiSourcePpr,
    domain: &EpochDomain,
    registry: &SessionRegistry,
    stats: &ServerStats,
) {
    let init = driver.take_initial_batch();
    let t = Instant::now();
    let applied = multi.apply_batch(driver.graph_mut(), &init);
    // Accumulate, don't overwrite: with several write shards every shard
    // bootstraps the same window, and the global counters sum them.
    stats.update_nanos.fetch_add(t.elapsed().as_nanos() as u64, Relaxed);
    stats.updates_offered.fetch_add(init.len() as u64, Relaxed);
    stats.updates_applied.fetch_add(applied as u64, Relaxed);
    let epoch = domain.advance();
    for i in 0..multi.num_sources() {
        registry.open(
            multi.source(i),
            Arc::new(QuerySnapshot::from_state(multi.state(i), epoch)),
        );
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Durable bootstrap: recover from the newest checkpoint + WAL tail when
/// one exists, else bootstrap fresh and write the epoch-1 base
/// checkpoint. Either way the returned WAL is open, repaired, and ready
/// for the write loop to append to.
#[allow(clippy::too_many_arguments)]
fn durable_boot(
    stream: GraphStream,
    init_fraction: f64,
    sources: &[VertexId],
    cfg: &ServeConfig,
    dcfg: &DurabilityConfig,
    domain: &Arc<EpochDomain>,
    registry: &SessionRegistry,
    stats: &ServerStats,
) -> io::Result<Boot> {
    std::fs::create_dir_all(&dcfg.data_dir)?;
    let checkpoint = durability::load_latest_checkpoint(&dcfg.data_dir)?;
    let wal_opts = WalOptions { segment_bytes: dcfg.segment_bytes, fsync: dcfg.fsync };
    let wdir = durability::wal_dir(&dcfg.data_dir);
    let (mut wal, tail) = Wal::open(&wdir, wal_opts.clone())?;

    let Some(ck) = checkpoint else {
        if !tail.is_empty() {
            // A log with no base checkpoint cannot be replayed (the
            // states it applies on top of are gone). Start over rather
            // than appending new epochs after stale ones.
            eprintln!(
                "dppr-serve: discarding {} WAL records with no checkpoint to anchor them",
                tail.len()
            );
            drop(wal);
            std::fs::remove_dir_all(&wdir)?;
            (wal, _) = Wal::open(&wdir, wal_opts)?;
        }
        let mut driver = StreamDriver::new(stream, init_fraction);
        let mut multi = MultiSourcePpr::new(sources, cfg.alpha, cfg.epsilon, PushVariant::OPT);
        bootstrap_window(&mut driver, &mut multi, domain, registry, stats);
        // The base checkpoint: recovery always has somewhere to start, so
        // the WAL never needs to hold the (large) initial window.
        let states: Vec<PprState> =
            (0..multi.num_sources()).map(|i| multi.state(i).clone_values()).collect();
        let (ws, we) = driver.window_range();
        durability::write_checkpoint(&dcfg.data_dir, 1, (ws, we), &states)?;
        wal.append(&WalRecord::Checkpoint { epoch: 1 })?;
        wal.sync()?;
        stats.checkpoints.fetch_add(1, Relaxed);
        return Ok(Boot { driver, multi, wal: Some(wal), recovery: None, durable_epoch: 1 });
    };

    // --- recovery: checkpoint + WAL-tail replay ---------------------------
    if ck.window_end > stream.len() {
        return Err(invalid(format!(
            "checkpoint window [{}, {}) exceeds the stream length {} — wrong graph or seed?",
            ck.window_start,
            ck.window_end,
            stream.len()
        )));
    }
    let checkpoint_epoch = ck.epoch;
    let (window_start, window_end) = (ck.window_start, ck.window_end);
    let mut driver = StreamDriver::resume_from(stream, window_start, window_end);
    let mut multi = if ck.states.is_empty() {
        MultiSourcePpr::new(&[], cfg.alpha, cfg.epsilon, PushVariant::OPT)
    } else {
        MultiSourcePpr::from_states(ck.states, PushVariant::OPT)
    };

    // Replay only the tail: batches at or below the checkpoint epoch are
    // the duplicated-tail case (checkpointed but not yet pruned) and are
    // skipped; an epoch gap means the log lost acknowledged records and
    // recovery must not fake the missing slides.
    let mut applied_epoch = checkpoint_epoch;
    let mut replayed = 0u64;
    for rec in &tail {
        let WalRecord::Batch { epoch, window_end: rec_end, updates, .. } = rec else {
            continue;
        };
        if *epoch <= applied_epoch {
            continue;
        }
        if *epoch != applied_epoch + 1 {
            return Err(invalid(format!(
                "WAL gap: next batch is epoch {epoch}, expected {}",
                applied_epoch + 1
            )));
        }
        let (_, cur_end) = driver.window_range();
        let k = (*rec_end as usize)
            .checked_sub(cur_end)
            .filter(|&k| k > 0)
            .ok_or_else(|| invalid(format!("batch epoch {epoch} rewinds the window")))?;
        let batch = driver
            .slide_batch(k)
            .ok_or_else(|| invalid(format!("stream exhausted replaying epoch {epoch}")))?;
        if batch != *updates {
            return Err(invalid(format!(
                "WAL batch for epoch {epoch} disagrees with the stream — graph or seed changed \
                 since the log was written"
            )));
        }
        let t = Instant::now();
        let applied = multi.apply_batch(driver.graph_mut(), &batch);
        stats.update_nanos.fetch_add(t.elapsed().as_nanos() as u64, Relaxed);
        stats.updates_offered.fetch_add(batch.len() as u64, Relaxed);
        stats.updates_applied.fetch_add(applied as u64, Relaxed);
        applied_epoch = *epoch;
        replayed += 1;
    }

    domain.resume_at(applied_epoch);
    for i in 0..multi.num_sources() {
        registry.open(
            multi.source(i),
            Arc::new(QuerySnapshot::from_state(multi.state(i), applied_epoch)),
        );
    }
    // Re-anchor retention: if the crash hit between the checkpoint rename
    // and its WAL marker, the marker is missing — append it now so the
    // covered segments can be pruned.
    wal.append(&WalRecord::Checkpoint { epoch: checkpoint_epoch })?;
    wal.sync()?;
    wal.prune_through(checkpoint_epoch)?;

    let (ws, we) = driver.window_range();
    let recovery = RecoveryReport {
        checkpoint_epoch,
        replayed_batches: replayed,
        recovered_epoch: applied_epoch,
        window_start: ws,
        window_end: we,
    };
    Ok(Boot {
        driver,
        multi,
        wal: Some(wal),
        recovery: Some(recovery),
        durable_epoch: checkpoint_epoch,
    })
}

/// What [`boot_probe`] observed: the booted epoch and a bit-exact
/// fingerprint per session state.
#[derive(Debug, Clone)]
pub struct BootProbe {
    /// Recovery outcome (`None` for a fresh durable start).
    pub recovery: Option<RecoveryReport>,
    /// The epoch the instance would serve at.
    pub epoch: u64,
    /// `(source, state_fingerprint)` per session, in session order.
    pub fingerprints: Vec<(VertexId, u64)>,
}

/// Runs the durable bootstrap exactly as [`start`] would — recovery or
/// fresh start, including WAL torn-tail repair, checkpoint-marker
/// re-append, and retention — but binds no port and spawns no threads,
/// so the returned state is frozen at the boot point instead of racing
/// the write loop. The crash-recovery harness uses this to prove a
/// recovered instance is bit-identical to a never-crashed replay.
pub fn boot_probe(
    stream: GraphStream,
    init_fraction: f64,
    sources: &[VertexId],
    cfg: &ServeConfig,
) -> io::Result<BootProbe> {
    let dcfg = cfg.durability.as_ref().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "boot_probe requires cfg.durability")
    })?;
    let domain = EpochDomain::new(1);
    let registry =
        SessionRegistry::new(Arc::clone(&domain), cfg.session_capacity.max(sources.len()).max(1));
    let stats = ServerStats::default();
    let boot =
        durable_boot(stream, init_fraction, sources, cfg, dcfg, &domain, &registry, &stats)?;
    let fingerprints = (0..boot.multi.num_sources())
        .map(|i| {
            (boot.multi.source(i), dppr_core::persist::state_fingerprint(boot.multi.state(i)))
        })
        .collect();
    Ok(BootProbe { recovery: boot.recovery, epoch: domain.epoch(), fingerprints })
}

/// [`boot_probe`] for every write shard of a sharded durable instance:
/// probes each shard's own data directory with the sources hashed to it,
/// exactly as [`start`] would boot them. The crash-recovery harness uses
/// this to assert per-shard bit-identical fingerprints after a kill.
pub fn boot_probe_shards(
    stream: GraphStream,
    init_fraction: f64,
    sources: &[VertexId],
    cfg: &ServeConfig,
) -> io::Result<Vec<BootProbe>> {
    let n = cfg.write_shards.max(1);
    let dcfg = cfg.durability.as_ref().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "boot_probe_shards requires cfg.durability")
    })?;
    (0..n)
        .map(|i| {
            let shard_sources: Vec<VertexId> =
                sources.iter().copied().filter(|&s| shard_of(s, n) == i).collect();
            let mut scfg = cfg.clone();
            scfg.durability = Some(DurabilityConfig {
                data_dir: shard_data_dir(&dcfg.data_dir, i, n),
                ..dcfg.clone()
            });
            boot_probe(stream.clone(), init_fraction, &shard_sources, &scfg)
        })
        .collect()
}

/// A snapshot of everything one checkpoint needs, handed to the
/// background checkpointer over a bounded channel.
struct CkptJob {
    epoch: u64,
    window: (usize, usize),
    states: Vec<PprState>,
}

/// The write loop's durability half: the WAL it owns exclusively, plus
/// the handles of the background checkpointer.
struct DurableState {
    wal: Wal,
    cfg: DurabilityConfig,
    /// Epoch of the newest durable checkpoint, published by the
    /// background checkpointer.
    durable: Arc<AtomicU64>,
    /// Newest durable epoch whose `Checkpoint` marker has been appended
    /// to the WAL (retention runs when this catches up to `durable`).
    acked: u64,
    ckpt_tx: Option<SyncSender<CkptJob>>,
    ckpt_thread: Option<JoinHandle<()>>,
    /// Set on the first WAL append failure: stop sliding, serve
    /// read-only.
    dead: bool,
    /// WAL counters as of the last [`note_wal`]; deltas against the live
    /// stats yield per-fsync latency.
    seen: WalStats,
}

/// Spawns the background checkpointer for one write shard and packages
/// the durable state for that shard's write loop.
fn spawn_durable(
    dcfg: DurabilityConfig,
    wal: Wal,
    durable_epoch: u64,
    ctx: Arc<Ctx>,
    shard: Arc<WriteShardState>,
) -> io::Result<DurableState> {
    let durable = Arc::new(AtomicU64::new(durable_epoch));
    let (ckpt_tx, ckpt_rx) = sync_channel::<CkptJob>(1);
    let ckpt_thread = {
        let durable = Arc::clone(&durable);
        let data_dir = dcfg.data_dir.clone();
        std::thread::Builder::new()
            .name(format!("dppr-serve-ckpt-{}", shard.index))
            .spawn(move || {
                while let Ok(job) = ckpt_rx.recv() {
                    let t = Instant::now();
                    match durability::write_checkpoint(
                        &data_dir,
                        job.epoch,
                        job.window,
                        &job.states,
                    ) {
                        Ok(()) => {
                            let ns = t.elapsed().as_nanos() as u64;
                            ctx.metrics.checkpoint.record(ns);
                            shard.stage.checkpoint.record(ns);
                            let _ = durability::prune_checkpoints(&data_dir, job.epoch);
                            durable.store(job.epoch, Relaxed);
                            shard.durable_epoch.store(job.epoch, Relaxed);
                            ctx.refresh_durable_epoch();
                            ctx.stats.checkpoints.fetch_add(1, Relaxed);
                        }
                        Err(e) => {
                            eprintln!(
                                "dppr-serve: checkpoint at epoch {} failed: {e}",
                                job.epoch
                            );
                            ctx.stats.checkpoint_failures.fetch_add(1, Relaxed);
                        }
                    }
                }
            })?
    };
    let seen = wal.stats();
    Ok(DurableState {
        wal,
        cfg: dcfg,
        durable,
        acked: durable_epoch,
        ckpt_tx: Some(ckpt_tx),
        ckpt_thread: Some(ckpt_thread),
        dead: false,
        seen,
    })
}

/// Publishes one shard's fresh WAL counters after appends/syncs: fsync
/// latency from the `sync_nanos` delta, the last-fsync timestamp for
/// `/healthz`, and the raw stats for `/stats` and `/metrics`. The global
/// totals (sums across shards) are re-derived afterwards.
fn note_wal(d: &mut DurableState, ctx: &Ctx, shard: &WriteShardState) {
    let s = d.wal.stats();
    let syncs = s.syncs - d.seen.syncs;
    if let Some(per_sync) = (s.sync_nanos - d.seen.sync_nanos).checked_div(syncs) {
        for _ in 0..syncs {
            ctx.metrics.wal_fsync.record(per_sync);
            shard.stage.wal_fsync.record(per_sync);
        }
        shard
            .last_fsync_ns
            .store(ctx.start.elapsed().as_nanos() as u64 + 1, Relaxed);
    }
    shard.wal_records.store(s.appends, Relaxed);
    shard.wal_segments.store(d.wal.segment_count() as u64, Relaxed);
    *shard.wal.lock().unwrap() = s;
    d.seen = s;
    ctx.refresh_wal_totals();
}

/// Records why a write shard degraded to read-only (shown by
/// `/healthz`): the shard's own flag plus the instance-level flag. The
/// first shard to degrade provides the instance-level reason.
fn mark_degraded(ctx: &Ctx, shard: &WriteShardState, reason: String) {
    shard.degraded.store(true, SeqCst);
    let global = if ctx.shards.len() == 1 {
        reason.clone()
    } else {
        format!("write shard {}: {reason}", shard.index)
    };
    *shard.degraded_reason.lock().unwrap() = Some(reason);
    ctx.stats.degraded.store(true, SeqCst);
    let mut g = ctx.stats.degraded_reason.lock().unwrap();
    if g.is_none() {
        *g = Some(global);
    }
}

/// Answers an un-adoptable connection with `503 Retry-After: 1`
/// (best-effort, non-blocking) and drops it.
fn shed_at_door(conn: TcpStream) {
    let mut out = Vec::with_capacity(160);
    render_response(
        &mut out,
        &Response {
            status: 503,
            body: error_body("server is at connection capacity").into(),
            retry_after: Some(1),
            content_type: None,
        },
        false,
    );
    let _ = conn.set_nonblocking(true);
    let _ = (&conn).write(&out);
}

fn write_loop(
    mut driver: StreamDriver,
    mut multi: MultiSourcePpr,
    ctl_rx: mpsc::Receiver<Control>,
    ctx: Arc<Ctx>,
    shard: Arc<WriteShardState>,
    cfg: ServeConfig,
    mut dur: Option<DurableState>,
) {
    // Baseline for per-slide counter deltas (push convergence metrics);
    // the boot/recovery work is already in the cumulative snapshot.
    let mut prev_counters = multi.counters().snapshot();
    // Epoch reader for audit probes: loading a session's published
    // snapshot must pin an epoch like any other reader. The domain is
    // sized `threads + 4`, so the write loop's own reader fits in the
    // slack.
    let reader = shard.domain.register_reader();
    loop {
        if ctx.shutdown.load(SeqCst) {
            break;
        }
        while let Ok(ctl) = ctl_rx.try_recv() {
            handle_control(ctl, &mut driver, &mut multi, &ctx, &shard, &reader);
        }
        // Retention follows the background checkpointer: once a newer
        // checkpoint is durable, append its marker and drop the WAL
        // segments it covers.
        if let Some(d) = dur.as_mut() {
            ack_durable(d, &ctx, &shard);
        }
        let frozen = dur.as_ref().is_some_and(|d| d.dead)
            || (cfg.max_slides != 0
                && shard.slides.load(Relaxed) >= cfg.max_slides as u64);
        if frozen || shard.stream_done.load(Relaxed) {
            // Nothing left to slide (stream dry, slide cap, or WAL
            // failure → read-only): serve from the frozen epoch, but stay
            // responsive to session control and shutdown.
            match ctl_rx.recv_timeout(Duration::from_millis(20)) {
                Ok(ctl) => handle_control(ctl, &mut driver, &mut multi, &ctx, &shard, &reader),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            continue;
        }
        let Some(batch) = driver.slide_batch(cfg.batch) else {
            shard.stream_done.store(true, Relaxed);
            ctx.refresh_stream_done();
            continue;
        };
        // Write-ahead point: the batch must be in the log *before* its
        // effects can be observed by any query. A failed append degrades
        // to read-only serving — the slide is abandoned (the window moved,
        // but the graph, the engine states, and the published epoch all
        // stay put, which is exactly the state the log describes).
        let slide_t = Instant::now();
        let mut wal_append_ns = 0u64;
        if let Some(d) = dur.as_mut() {
            let (ws, we) = driver.window_range();
            let rec = WalRecord::Batch {
                epoch: shard.domain.epoch() + 1,
                window_start: ws as u64,
                window_end: we as u64,
                updates: batch.clone(),
            };
            let t = Instant::now();
            if let Err(e) = d.wal.append(&rec) {
                eprintln!("dppr-serve: WAL append failed ({e}); serving read-only from here");
                d.dead = true;
                mark_degraded(&ctx, &shard, format!("WAL append failed: {e}"));
                continue;
            }
            wal_append_ns = t.elapsed().as_nanos() as u64;
            ctx.metrics.wal_append.record(wal_append_ns);
            shard.stage.wal_append.record(wal_append_ns);
            note_wal(d, &ctx, &shard);
        }
        // Lag marker: queries routed to this shard observe how long the
        // slide has been in flight and shed once it exceeds `shed_after`
        // (the snapshot they would serve is stale by at least that much).
        shard
            .slide_started_ns
            .store(ctx.start.elapsed().as_nanos() as u64 + 1, Relaxed);
        let t = Instant::now();
        let applied = multi.apply_batch(driver.graph_mut(), &batch);
        let apply_ns = t.elapsed().as_nanos() as u64;
        ctx.metrics.push_wall.record(apply_ns);
        shard.stage.push_wall.record(apply_ns);
        ctx.stats.update_nanos.fetch_add(apply_ns, Relaxed);
        ctx.stats.updates_offered.fetch_add(batch.len() as u64, Relaxed);
        ctx.stats.updates_applied.fetch_add(applied as u64, Relaxed);
        ctx.stats.slides.fetch_add(1, Relaxed);
        shard.slides.fetch_add(1, Relaxed);
        // Publication point: one epoch per batch, every session swapped to
        // a snapshot of the new converged state.
        let epoch = shard.domain.advance();
        let t = Instant::now();
        for i in 0..multi.num_sources() {
            if let Some(entry) = shard.registry.peek(multi.source(i)) {
                entry.publish(
                    &shard.domain,
                    Arc::new(QuerySnapshot::from_state(multi.state(i), epoch)),
                );
            }
        }
        let publish_ns = t.elapsed().as_nanos() as u64;
        ctx.metrics.snapshot_publish.record(publish_ns);
        shard.stage.snapshot_publish.record(publish_ns);
        shard.slide_started_ns.store(0, Relaxed);
        let slide_ns = slide_t.elapsed().as_nanos() as u64;
        ctx.metrics.slide_apply.record(slide_ns);
        shard.stage.slide_apply.record(slide_ns);

        // Refresh the engine/graph/stream views `/stats` and `/metrics`
        // read (this write loop is the only thread that can see them).
        let counters = multi.counters().snapshot();
        let delta = counters - prev_counters;
        ctx.metrics.push_iterations.record(delta.iterations);
        prev_counters = counters;
        *shard.engine.lock().unwrap() = counters;
        *shard.graph.lock().unwrap() = driver.graph().substrate_stats();
        let (ws, we) = driver.window_range();
        shard.window_start.store(ws as u64, Relaxed);
        shard.window_end.store(we as u64, Relaxed);

        if ctx.metrics.trace_slides.sample() {
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("event").str("slide");
            j.key("write_shard").uint(shard.index as u64);
            j.key("epoch").uint(epoch);
            j.key("batch_updates").uint(batch.len() as u64);
            j.key("applied").uint(applied as u64);
            j.key("iterations").uint(delta.iterations);
            j.key("pushes").uint(delta.pushes);
            j.key("wal_append_ns").uint(wal_append_ns);
            j.key("apply_ns").uint(apply_ns);
            j.key("publish_ns").uint(publish_ns);
            j.key("slide_ns").uint(slide_ns);
            j.end_obj();
            ctx.metrics.trace.push(j.finish());
        }

        if let Some(d) = dur.as_mut() {
            maybe_checkpoint(d, &shard, epoch, &driver, &multi);
        }
        if !cfg.slide_pause.is_zero() {
            std::thread::sleep(cfg.slide_pause);
        }
    }
    // Graceful shutdown: stop the background checkpointer, flush the WAL,
    // and leave a final checkpoint so the next start replays nothing.
    if let Some(d) = dur.as_mut() {
        finalize_durable(d, &ctx, &shard, &driver, &multi);
    }
}

/// Appends the `Checkpoint` marker for any newly durable checkpoint and
/// prunes the WAL segments it covers.
fn ack_durable(d: &mut DurableState, ctx: &Ctx, shard: &WriteShardState) {
    let e = d.durable.load(Relaxed);
    if d.dead || e <= d.acked {
        return;
    }
    let result = d
        .wal
        .append(&WalRecord::Checkpoint { epoch: e })
        .and_then(|()| d.wal.sync())
        .and_then(|()| d.wal.prune_through(e));
    match result {
        Ok(_) => {
            d.acked = e;
            note_wal(d, ctx, shard);
        }
        Err(err) => {
            eprintln!("dppr-serve: WAL checkpoint marker failed ({err}); serving read-only");
            d.dead = true;
            mark_degraded(ctx, shard, format!("WAL checkpoint marker failed: {err}"));
        }
    }
}

/// Hands a checkpoint job to the background checkpointer every
/// `checkpoint_every_slides` slides. A full channel means the previous
/// checkpoint is still being written — skip this round rather than stall
/// the write loop.
fn maybe_checkpoint(
    d: &mut DurableState,
    shard: &WriteShardState,
    epoch: u64,
    driver: &StreamDriver,
    multi: &MultiSourcePpr,
) {
    let every = d.cfg.checkpoint_every_slides;
    if every == 0 || !shard.slides.load(Relaxed).is_multiple_of(every) {
        return;
    }
    let Some(tx) = d.ckpt_tx.as_ref() else { return };
    let job = CkptJob {
        epoch,
        window: driver.window_range(),
        states: (0..multi.num_sources()).map(|i| multi.state(i).clone_values()).collect(),
    };
    match tx.try_send(job) {
        Ok(()) | Err(TrySendError::Full(_)) => {}
        Err(TrySendError::Disconnected(_)) => d.ckpt_tx = None,
    }
}

/// Shutdown path: drain the checkpointer, then write the final
/// checkpoint synchronously (every applied slide becomes part of the
/// base; the WAL tail for the next start is empty).
fn finalize_durable(
    d: &mut DurableState,
    ctx: &Ctx,
    shard: &WriteShardState,
    driver: &StreamDriver,
    multi: &MultiSourcePpr,
) {
    d.ckpt_tx = None; // close the channel → checkpointer drains and exits
    if let Some(h) = d.ckpt_thread.take() {
        let _ = h.join();
    }
    let _ = d.wal.sync();
    if d.dead {
        return;
    }
    let epoch = shard.domain.epoch();
    if epoch <= d.durable.load(Relaxed) {
        return; // nothing applied since the last durable checkpoint
    }
    let states: Vec<PprState> =
        (0..multi.num_sources()).map(|i| multi.state(i).clone_values()).collect();
    let t = Instant::now();
    match durability::write_checkpoint(&d.cfg.data_dir, epoch, driver.window_range(), &states) {
        Ok(()) => {
            let ns = t.elapsed().as_nanos() as u64;
            ctx.metrics.checkpoint.record(ns);
            shard.stage.checkpoint.record(ns);
            let _ = durability::prune_checkpoints(&d.cfg.data_dir, epoch);
            shard.durable_epoch.store(epoch, Relaxed);
            ctx.refresh_durable_epoch();
            ctx.stats.checkpoints.fetch_add(1, Relaxed);
            let _ = d
                .wal
                .append(&WalRecord::Checkpoint { epoch })
                .and_then(|()| d.wal.sync())
                .and_then(|()| d.wal.prune_through(epoch));
        }
        Err(e) => eprintln!("dppr-serve: final checkpoint at epoch {epoch} failed: {e}"),
    }
}

fn handle_control(
    ctl: Control,
    driver: &mut StreamDriver,
    multi: &mut MultiSourcePpr,
    ctx: &Ctx,
    shard: &WriteShardState,
    reader: &Reader,
) {
    match ctl {
        Control::Open(s) => {
            if shard.registry.peek(s).is_some() {
                return;
            }
            let i = multi.add_source(driver.graph(), s);
            let snap = QuerySnapshot::from_state(multi.state(i), shard.domain.epoch());
            if let OpenOutcome::Opened { evicted: Some(victim) } =
                shard.registry.open(s, Arc::new(snap))
            {
                remove_maintained(multi, victim);
                ctx.stats.sessions_evicted.fetch_add(1, Relaxed);
            }
            ctx.stats.sessions_opened.fetch_add(1, Relaxed);
        }
        Control::Close(s) => {
            if shard.registry.close(s) {
                remove_maintained(multi, s);
                ctx.stats.sessions_closed.fetch_add(1, Relaxed);
            }
        }
        Control::Audit { max_sessions, reply } => {
            // Between batches the graph, the live states, and the
            // published snapshots are mutually consistent — clone them
            // all here and let the observer pay for the exact solve.
            let sources = shard.registry.sources();
            let take = max_sessions.min(sources.len());
            let cursor = shard.audit_cursor.fetch_add(take as u64, Relaxed) as usize;
            let mut sessions = Vec::with_capacity(take);
            for k in 0..take {
                let source = sources[(cursor + k) % sources.len()];
                let (Some(entry), Some(i)) =
                    (shard.registry.peek(source), multi.index_of(source))
                else {
                    continue; // raced with a close; skip
                };
                sessions.push(crate::audit::AuditSession {
                    source,
                    snapshot: entry.load(reader),
                    state: multi.state(i).clone_values(),
                });
            }
            let job = crate::audit::AuditJob {
                epoch: shard.domain.epoch(),
                graph: driver.graph().clone(),
                sessions,
            };
            // The observer may have timed out and gone away; that's its
            // problem, not the write loop's.
            let _ = reply.send(job);
        }
    }
}

fn remove_maintained(multi: &mut MultiSourcePpr, source: VertexId) {
    if let Some(i) = multi.index_of(source) {
        multi.remove_source(i);
    }
}

// --- request routing ------------------------------------------------------

/// The per-shard router: shared state + this shard's epoch readers (one
/// per write-shard domain), control-channel handles (one per write
/// shard), and thread-local telemetry accumulators (flushed to the
/// shared histograms once per event-loop tick, so the per-request path
/// touches no shared atomics).
struct RouterImpl {
    ctx: Arc<Ctx>,
    readers: Vec<Reader>,
    ctl_txs: Vec<mpsc::Sender<Control>>,
    shard: usize,
    conn_gauge: Arc<Gauge>,
    depth_gauge: Arc<Gauge>,
    local_request: LocalHistogram,
    local_parse: LocalHistogram,
    local_route: LocalHistogram,
    local_write: LocalHistogram,
}

impl Router for RouterImpl {
    fn route(&mut self, req: &Request) -> Response {
        match route(req, &self.ctx, &self.readers, &self.ctl_txs) {
            Ok(resp) => resp,
            Err(msg) => Response::new(400, error_body(&msg)),
        }
    }

    fn observe_http(
        &mut self,
        req: &Request,
        status: u16,
        parse_ns: u64,
        route_ns: u64,
        write_ns: u64,
    ) {
        self.local_parse.record(parse_ns);
        self.local_route.record(route_ns);
        self.local_write.record(write_ns);
        self.local_request.record(parse_ns + route_ns + write_ns);
        if self.ctx.metrics.trace_requests.sample() {
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("event").str("request");
            j.key("shard").uint(self.shard as u64);
            j.key("path").str(&req.path);
            j.key("status").uint(status as u64);
            j.key("epoch").uint(self.ctx.epoch_min());
            j.key("parse_ns").uint(parse_ns);
            j.key("route_ns").uint(route_ns);
            j.key("write_ns").uint(write_ns);
            j.end_obj();
            self.ctx.metrics.trace.push(j.finish());
        }
    }

    fn on_tick(&mut self, live_conns: usize, queue_depth: u64) {
        let m = &self.ctx.metrics;
        self.local_request.flush(&m.http_request);
        self.local_parse.flush(&m.http_parse);
        self.local_route.flush(&m.http_route);
        self.local_write.flush(&m.http_write);
        self.conn_gauge.set(live_conns as i64);
        self.depth_gauge.set(queue_depth as i64);
    }
}

fn push_bounded(j: &mut JsonBuf, b: &BoundedScore) {
    j.begin_obj();
    j.key("vertex").uint(b.vertex as u64);
    j.key("estimate").num(b.estimate);
    j.key("lo").num(b.lo);
    j.key("hi").num(b.hi);
    j.end_obj();
}

/// Resolves a `source=` query parameter to its write shard and loads the
/// published snapshot: the 503 shed gate (that shard lagging) and the
/// 404 (no session) travel in the inner `Err`.
fn snapshot_for(
    req: &Request,
    ctx: &Ctx,
    readers: &[Reader],
) -> Result<Result<(Arc<QuerySnapshot>, usize), Response>, String> {
    let source: VertexId = req.require("source")?;
    let ws = shard_of(source, ctx.shards.len());
    if let Some(shed) = shed_check(ctx, ws) {
        return Ok(Err(shed));
    }
    Ok(match ctx.shards[ws].registry.lookup(source) {
        Some(entry) => Ok((entry.load(&readers[ws]), ws)),
        None => Err(Response::new(
            404,
            error_body(&format!("no open session for source {source}")),
        )),
    })
}

/// Load-shedding gate for the query endpoints: while write shard `ws`
/// has had a slide in flight longer than `shed_after`, answer `503
/// Retry-After` instead of serving a snapshot that lags the stream.
/// Shedding is per shard — a straggler does not shed traffic for
/// sessions owned by healthy shards.
fn shed_check(ctx: &Ctx, ws: usize) -> Option<Response> {
    // A fast-window latency SLO breach sheds globally: the error budget
    // is burning now, and queries are the load we can refuse.
    if ctx.slo.shed.load(Relaxed) {
        ctx.stats.shed.fetch_add(1, Relaxed);
        return Some(Response {
            status: 503,
            body: error_body("latency SLO fast burn; shedding load").into(),
            retry_after: Some(1),
            content_type: None,
        });
    }
    if !ctx.lagging(&ctx.shards[ws]) {
        return None;
    }
    ctx.stats.shed.fetch_add(1, Relaxed);
    Some(Response {
        status: 503,
        body: error_body("write loop is behind; retry shortly").into(),
        retry_after: Some(1),
        content_type: None,
    })
}

/// Routes a request to a [`Response`]. Bodies travel as `Arc<str>` so a
/// cache hit is returned without copying the rendered JSON.
fn route(
    req: &Request,
    ctx: &Ctx,
    readers: &[Reader],
    ctl_txs: &[mpsc::Sender<Control>],
) -> Result<Response, String> {
    match req.path.as_str() {
        "/healthz" => {
            let wal_degraded = ctx.stats.degraded.load(Relaxed);
            let slo_breaching = ctx.slo.any_breaching();
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("ok").bool(true);
            j.key("epoch").uint(ctx.epoch_min());
            j.key("degraded").bool(wal_degraded || slo_breaching);
            // Why the instance is degraded (null while healthy): a WAL
            // failure (read-only serving) wins over an SLO burn.
            j.key("degraded_reason");
            let wal_reason = ctx.stats.degraded_reason.lock().unwrap().as_deref().map(String::from);
            match wal_reason.or_else(|| ctx.slo.breach_reason()).as_deref() {
                Some(reason) => j.str(reason),
                None => j.null(),
            };
            // Per-SLO burn-rate detail (empty array with no targets).
            j.key("slos").begin_arr();
            for (spec, st) in ctx.slo.specs.iter().zip(&ctx.slo.status) {
                j.begin_obj();
                j.key("name").str(spec.name);
                j.key("target").num(spec.target);
                j.key("burn_fast").num(st.burn_fast.get());
                j.key("burn_slow").num(st.burn_slow.get());
                j.key("breaching").bool(st.breaching.load(Relaxed));
                j.key("breaches_total").uint(st.breaches.load(Relaxed));
                j.end_obj();
            }
            j.end_arr();
            j.key("last_fsync_age_seconds");
            match ctx.stats.last_fsync_ns.load(Relaxed) {
                0 => j.null(),
                marker => {
                    let age =
                        (ctx.start.elapsed().as_nanos() as u64).saturating_sub(marker - 1);
                    j.num(age as f64 / 1e9)
                }
            };
            j.key("lagging").bool(ctx.any_lagging());
            j.key("write_shards").begin_arr();
            for s in &ctx.shards {
                j.begin_obj();
                j.key("shard").uint(s.index as u64);
                j.key("epoch").uint(s.domain.epoch());
                j.key("degraded").bool(s.degraded.load(Relaxed));
                j.key("stream_done").bool(s.stream_done.load(Relaxed));
                j.key("lag_seconds");
                match ctx.slide_in_flight(s) {
                    Some(d) => j.num(d.as_secs_f64()),
                    None => j.num(0.0),
                };
                j.end_obj();
            }
            j.end_arr();
            j.end_obj();
            Ok(Response::new(200, j.finish()))
        }
        "/metrics" => {
            // Self-observation: time the render and count families. The
            // duration lands in a registered histogram, so it shows up
            // on the *next* scrape — acceptable for a gauge of scrape
            // cost, and it keeps this scrape's text consistent.
            let t = Instant::now();
            let mut text = render_metrics(ctx);
            let families = text.matches("# TYPE ").count() as u64 + 1;
            let mut tail = PromText::new();
            tail.gauge_u64(
                "dppr_metrics_families",
                "Metric families in this exposition (including this one)",
                families,
            );
            text.push_str(tail.as_str());
            ctx.metrics.metrics_scrape.record(t.elapsed().as_nanos() as u64);
            Ok(Response::with_content_type(200, PROMETHEUS_CONTENT_TYPE, text))
        }
        "/trace" => {
            let limit: usize = req.parsed_or("limit", usize::MAX)?;
            let body = match req.param("kind") {
                None => ctx.metrics.trace.dump_with(limit, |_| true),
                Some("request") => ctx
                    .metrics
                    .trace
                    .dump_with(limit, |l| l.contains("\"event\":\"request\"")),
                Some("slide") => ctx
                    .metrics
                    .trace
                    .dump_with(limit, |l| l.contains("\"event\":\"slide\"")),
                Some(other) => {
                    return Err(format!("unknown trace kind {other:?} (request|slide)"))
                }
            };
            Ok(Response::with_content_type(200, "application/x-ndjson", body))
        }
        "/series" => {
            let interval_ms = ctx.audit_interval.as_secs_f64() * 1e3;
            match req.param("name") {
                None => {
                    // Catalog: the column set plus sampling geometry.
                    let mut j = JsonBuf::new();
                    j.begin_obj();
                    j.key("interval_ms").num(interval_ms);
                    j.key("samples").uint(ctx.series.len() as u64);
                    j.key("names").begin_arr();
                    for name in ctx.series.names() {
                        j.str(name);
                    }
                    j.end_arr();
                    j.end_obj();
                    Ok(Response::new(200, j.finish()))
                }
                Some(name) => {
                    let window_s: f64 = req.parsed_finite_or("window", 60.0)?;
                    let window_nanos = (window_s.max(0.0) * 1e9) as u64;
                    let Some(w) = ctx.series.window(name, window_nanos) else {
                        return Ok(Response::new(
                            404,
                            error_body(&format!("unknown series {name}")),
                        ));
                    };
                    let mut j = JsonBuf::new();
                    j.begin_obj();
                    j.key("name").str(name);
                    j.key("window_seconds").num(window_s);
                    j.key("interval_ms").num(interval_ms);
                    j.key("last").num(w.last);
                    j.key("min").num(w.min);
                    j.key("max").num(w.max);
                    j.key("avg").num(w.avg);
                    j.key("rate_per_sec").num(w.rate_per_sec);
                    j.key("points").begin_arr();
                    for (at, v) in &w.points {
                        j.begin_arr();
                        j.num(*at as f64 / 1e9);
                        j.num(*v);
                        j.end_arr();
                    }
                    j.end_arr();
                    j.end_obj();
                    Ok(Response::new(200, j.finish()))
                }
            }
        }
        "/topk" => {
            ctx.stats.queries.fetch_add(1, Relaxed);
            let k: usize = req.parsed_or("k", 10)?;
            let (snap, ws) = match snapshot_for(req, ctx, readers)? {
                Ok(s) => s,
                Err(e) => return Ok(e),
            };
            let (body, _) = ctx.shards[ws].cache.get_or_render(
                snap.source(),
                QueryKind::TopK(k),
                snap.epoch(),
                || {
                    let ans = snap.top_k(k);
                    let mut j = JsonBuf::new();
                    j.begin_obj();
                    j.key("source").uint(snap.source() as u64);
                    j.key("epoch").uint(snap.epoch());
                    j.key("epsilon").num(snap.epsilon());
                    j.key("k").uint(k as u64);
                    j.key("set_is_certain").bool(ans.set_is_certain);
                    j.key("ranking").begin_arr();
                    for b in &ans.ranking {
                        push_bounded(&mut j, b);
                    }
                    j.end_arr();
                    j.end_obj();
                    j.finish()
                },
            );
            Ok(Response::new(200, body))
        }
        "/score" => {
            ctx.stats.queries.fetch_add(1, Relaxed);
            let v: VertexId = req.require("v")?;
            let (snap, ws) = match snapshot_for(req, ctx, readers)? {
                Ok(s) => s,
                Err(e) => return Ok(e),
            };
            let (body, _) = ctx.shards[ws].cache.get_or_render(
                snap.source(),
                QueryKind::Score(v),
                snap.epoch(),
                || {
                    let b = snap.score(v);
                    let mut j = JsonBuf::new();
                    j.begin_obj();
                    j.key("source").uint(snap.source() as u64);
                    j.key("epoch").uint(snap.epoch());
                    j.key("epsilon").num(snap.epsilon());
                    j.key("vertex").uint(v as u64);
                    j.key("estimate").num(b.estimate);
                    j.key("lo").num(b.lo);
                    j.key("hi").num(b.hi);
                    j.end_obj();
                    j.finish()
                },
            );
            Ok(Response::new(200, body))
        }
        "/threshold" => {
            ctx.stats.queries.fetch_add(1, Relaxed);
            // Finite by construction: NaN would make every comparison
            // false and silently return an empty answer.
            let delta: f64 = req.require_finite("delta")?;
            let (snap, ws) = match snapshot_for(req, ctx, readers)? {
                Ok(s) => s,
                Err(e) => return Ok(e),
            };
            let (body, _) = ctx.shards[ws].cache.get_or_render(
                snap.source(),
                QueryKind::Threshold(delta.to_bits()),
                snap.epoch(),
                || {
                    let ans = snap.above_threshold(delta);
                    let mut j = JsonBuf::new();
                    j.begin_obj();
                    j.key("source").uint(snap.source() as u64);
                    j.key("epoch").uint(snap.epoch());
                    j.key("delta").num(delta);
                    j.key("certain").begin_arr();
                    for b in &ans.certain {
                        push_bounded(&mut j, b);
                    }
                    j.end_arr();
                    j.key("possible").begin_arr();
                    for b in &ans.possible {
                        push_bounded(&mut j, b);
                    }
                    j.end_arr();
                    j.end_obj();
                    j.finish()
                },
            );
            Ok(Response::new(200, body))
        }
        "/compare" => {
            ctx.stats.queries.fetch_add(1, Relaxed);
            let a: VertexId = req.require("a")?;
            let b: VertexId = req.require("b")?;
            let (snap, ws) = match snapshot_for(req, ctx, readers)? {
                Ok(s) => s,
                Err(e) => return Ok(e),
            };
            let (body, _) = ctx.shards[ws].cache.get_or_render(
                snap.source(),
                QueryKind::Compare(a, b),
                snap.epoch(),
                || {
                    let order = match snap.compare(a, b) {
                        Some(std::cmp::Ordering::Greater) => "greater",
                        Some(std::cmp::Ordering::Less) => "less",
                        Some(std::cmp::Ordering::Equal) => "equal",
                        None => "undecidable",
                    };
                    let mut j = JsonBuf::new();
                    j.begin_obj();
                    j.key("source").uint(snap.source() as u64);
                    j.key("epoch").uint(snap.epoch());
                    j.key("a").uint(a as u64);
                    j.key("b").uint(b as u64);
                    j.key("order").str(order);
                    j.end_obj();
                    j.finish()
                },
            );
            Ok(Response::new(200, body))
        }
        // Cross-shard comparison: which of two *sessions* ranks vertex
        // `v` higher. The per-session `/compare` never leaves one
        // engine; this one loads both sessions' snapshots — potentially
        // owned by different write shards at different epochs — and
        // interval-compares their estimates. Not cached: the composite
        // key spans two epoch lines.
        "/compare_sessions" => {
            ctx.stats.queries.fetch_add(1, Relaxed);
            let a: VertexId = req.require("a")?;
            let b: VertexId = req.require("b")?;
            let v: VertexId = req.require("v")?;
            let n = ctx.shards.len();
            let (wa, wb) = (shard_of(a, n), shard_of(b, n));
            if let Some(shed) = shed_check(ctx, wa).or_else(|| shed_check(ctx, wb)) {
                return Ok(shed);
            }
            let load = |source: VertexId, ws: usize| {
                ctx.shards[ws].registry.lookup(source).map(|e| e.load(&readers[ws])).ok_or_else(
                    || {
                        Response::new(
                            404,
                            error_body(&format!("no open session for source {source}")),
                        )
                    },
                )
            };
            let sa = match load(a, wa) {
                Ok(s) => s,
                Err(e) => return Ok(e),
            };
            let sb = match load(b, wb) {
                Ok(s) => s,
                Err(e) => return Ok(e),
            };
            let (ba, bb) = (sa.score(v), sb.score(v));
            // Certain only when the ε-intervals are disjoint, same as
            // the in-session compare semantics.
            let order = if ba.lo > bb.hi {
                "greater"
            } else if ba.hi < bb.lo {
                "less"
            } else {
                "undecidable"
            };
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("a").uint(a as u64);
            j.key("b").uint(b as u64);
            j.key("v").uint(v as u64);
            j.key("epoch_a").uint(sa.epoch());
            j.key("epoch_b").uint(sb.epoch());
            j.key("estimate_a").num(ba.estimate);
            j.key("estimate_b").num(bb.estimate);
            j.key("order").str(order);
            j.end_obj();
            Ok(Response::new(200, j.finish()))
        }
        "/sessions" => {
            // The flat `sessions` array stays merged-and-sorted across
            // shards (the unsharded wire shape); the per-shard blocks
            // expose the partition.
            let mut all: Vec<VertexId> = Vec::new();
            for s in &ctx.shards {
                all.extend(s.registry.sources());
            }
            all.sort_unstable();
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("capacity")
                .uint(ctx.shards.iter().map(|s| s.registry.capacity() as u64).sum());
            j.key("sessions").begin_arr();
            for s in all {
                j.uint(s as u64);
            }
            j.end_arr();
            j.key("write_shards").begin_arr();
            for s in &ctx.shards {
                j.begin_obj();
                j.key("shard").uint(s.index as u64);
                j.key("capacity").uint(s.registry.capacity() as u64);
                j.key("sessions").begin_arr();
                for src in s.registry.sources() {
                    j.uint(src as u64);
                }
                j.end_arr();
                j.end_obj();
            }
            j.end_arr();
            j.end_obj();
            Ok(Response::new(200, j.finish()))
        }
        "/session/open" | "/session/close" => {
            let source: VertexId = req.require("source")?;
            let open = req.path == "/session/open";
            if open && source as usize >= ctx.vertex_bound {
                return Err(format!(
                    "source {source} is outside the graph's vertex bound {}",
                    ctx.vertex_bound
                ));
            }
            let ctl = if open {
                Control::Open(source)
            } else {
                Control::Close(source)
            };
            // Applied by the owning shard's write loop between batches;
            // the response acknowledges acceptance, not completion.
            let ws = shard_of(source, ctx.shards.len());
            let accepted = ctl_txs[ws].send(ctl).is_ok();
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("accepted").bool(accepted);
            j.key(if open { "opening" } else { "closing" }).uint(source as u64);
            j.key("write_shard").uint(ws as u64);
            j.end_obj();
            Ok(Response::new(200, j.finish()))
        }
        "/stats" => {
            let cache = ctx.cache_stats();
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("epoch").uint(ctx.epoch_min());
            j.key("slides").uint(ctx.stats.slides.load(Relaxed));
            j.key("updates_offered").uint(ctx.stats.updates_offered.load(Relaxed));
            j.key("updates_applied").uint(ctx.stats.updates_applied.load(Relaxed));
            j.key("updates_per_sec").num(ctx.stats.updates_per_sec());
            j.key("stream_done").bool(ctx.stats.stream_done.load(Relaxed));
            j.key("queries").uint(ctx.stats.queries.load(Relaxed));
            j.key("shed").uint(ctx.stats.shed.load(Relaxed));
            j.key("sessions").uint(ctx.sessions_len() as u64);
            j.key("sessions_opened").uint(ctx.stats.sessions_opened.load(Relaxed));
            j.key("sessions_closed").uint(ctx.stats.sessions_closed.load(Relaxed));
            j.key("sessions_evicted").uint(ctx.stats.sessions_evicted.load(Relaxed));
            j.key("http").begin_obj();
            j.key("connections").uint(ctx.conn.accepted.load(Relaxed));
            j.key("requests").uint(ctx.conn.requests.load(Relaxed));
            j.key("bad_requests").uint(ctx.conn.bad_requests.load(Relaxed));
            j.key("read_timeouts").uint(ctx.conn.read_timeouts.load(Relaxed));
            j.key("write_timeouts").uint(ctx.conn.write_timeouts.load(Relaxed));
            j.end_obj();
            j.key("cache").begin_obj();
            j.key("hits").uint(cache.hits);
            j.key("misses").uint(cache.misses);
            j.key("evictions").uint(cache.evictions);
            j.key("stale_purged").uint(cache.stale_purged);
            j.key("hit_rate").num(cache.hit_rate());
            j.end_obj();
            j.key("durability").begin_obj();
            j.key("enabled").bool(ctx.durability_enabled);
            j.key("degraded").bool(ctx.stats.degraded.load(Relaxed));
            j.key("durable_epoch").uint(ctx.stats.durable_epoch.load(Relaxed));
            j.key("checkpoints").uint(ctx.stats.checkpoints.load(Relaxed));
            j.key("checkpoint_failures")
                .uint(ctx.stats.checkpoint_failures.load(Relaxed));
            j.key("wal_records").uint(ctx.stats.wal_records.load(Relaxed));
            j.key("wal_segments").uint(ctx.stats.wal_segments.load(Relaxed));
            let wal = ctx.shards.iter().fold(WalStats::default(), |mut acc, s| {
                let w = *s.wal.lock().unwrap();
                acc.appends += w.appends;
                acc.syncs += w.syncs;
                acc.sync_nanos += w.sync_nanos;
                acc.bytes_written += w.bytes_written;
                acc.pruned_segments += w.pruned_segments;
                acc
            });
            j.key("wal_syncs").uint(wal.syncs);
            j.key("wal_bytes").uint(wal.bytes_written);
            j.key("wal_pruned_segments").uint(wal.pruned_segments);
            j.end_obj();
            // Engine push-work counters, cumulative, summed across write
            // shards (each refreshed by its own write loop per slide).
            let engine = merged_engine_fields(ctx);
            j.key("engine").begin_obj();
            for (name, v) in engine {
                j.key(name).uint(v);
            }
            j.end_obj();
            // Every shard applies the identical stream, so the graphs
            // are replicas — shard 0's occupancy stands for all.
            let graph = *ctx.shards[0].graph.lock().unwrap();
            j.key("graph").begin_obj();
            j.key("arena_slots").uint(graph.arena_slots as u64);
            j.key("live_slots").uint(graph.live_slots as u64);
            j.key("dead_slots").uint(graph.dead_slots as u64);
            j.key("hub_vertices").uint(graph.hub_vertices as u64);
            j.key("utilization").num(graph.utilization());
            j.end_obj();
            // The stream block reports the *laggard* shard's window —
            // the freshness floor every session is guaranteed.
            let laggard = ctx
                .shards
                .iter()
                .min_by_key(|s| s.window_end.load(Relaxed))
                .expect("at least one write shard");
            j.key("stream").begin_obj();
            let end = laggard.window_end.load(Relaxed);
            j.key("window_start").uint(laggard.window_start.load(Relaxed));
            j.key("window_end").uint(end);
            j.key("stream_len").uint(ctx.stream_len);
            j.key("fraction_consumed").num(if ctx.stream_len == 0 {
                1.0
            } else {
                end as f64 / ctx.stream_len as f64
            });
            j.end_obj();
            j.key("write_shards").begin_arr();
            for s in &ctx.shards {
                let c = s.cache.stats();
                j.begin_obj();
                j.key("shard").uint(s.index as u64);
                j.key("epoch").uint(s.domain.epoch());
                j.key("slides").uint(s.slides.load(Relaxed));
                j.key("sessions").uint(s.registry.len() as u64);
                j.key("session_capacity").uint(s.registry.capacity() as u64);
                j.key("stream_done").bool(s.stream_done.load(Relaxed));
                j.key("degraded").bool(s.degraded.load(Relaxed));
                j.key("durable_epoch").uint(s.durable_epoch.load(Relaxed));
                j.key("wal_records").uint(s.wal_records.load(Relaxed));
                j.key("wal_segments").uint(s.wal_segments.load(Relaxed));
                j.key("window_start").uint(s.window_start.load(Relaxed));
                j.key("window_end").uint(s.window_end.load(Relaxed));
                j.key("cache").begin_obj();
                j.key("hits").uint(c.hits);
                j.key("misses").uint(c.misses);
                j.key("evictions").uint(c.evictions);
                j.key("stale_purged").uint(c.stale_purged);
                j.end_obj();
                j.end_obj();
            }
            j.end_arr();
            j.key("shards").begin_arr();
            for (conns, depth) in &ctx.shard_gauges {
                j.begin_obj();
                j.key("connections").uint(conns.get().max(0) as u64);
                j.key("queue_depth").uint(depth.get().max(0) as u64);
                j.end_obj();
            }
            j.end_arr();
            // Stage-latency summaries out of the same histograms
            // `/metrics` exposes (seconds at bucket resolution).
            let m = &ctx.metrics;
            j.key("timings").begin_obj();
            for (name, h) in [
                ("http_request", &m.http_request),
                ("slide_apply", &m.slide_apply),
                ("push_wall", &m.push_wall),
                ("snapshot_publish", &m.snapshot_publish),
                ("wal_append", &m.wal_append),
                ("wal_fsync", &m.wal_fsync),
                ("checkpoint", &m.checkpoint),
            ] {
                let s = h.snapshot();
                j.key(name).begin_obj();
                j.key("count").uint(s.count);
                j.key("p50_s").num(s.p50() as f64 / 1e9);
                j.key("p99_s").num(s.p99() as f64 / 1e9);
                j.end_obj();
            }
            j.end_obj();
            j.key("trace").begin_obj();
            j.key("enabled").bool(m.trace_requests.enabled());
            j.key("buffered").uint(m.trace.len() as u64);
            j.key("dropped").uint(m.trace.dropped());
            j.end_obj();
            // Accuracy-audit scalars (zeros while auditing is off).
            let a = &ctx.audit;
            j.key("audit").begin_obj();
            j.key("enabled").bool(a.enabled);
            j.key("sample").uint(a.sample as u64);
            j.key("runs").uint(a.runs.load(Relaxed));
            j.key("sessions_audited").uint(a.sessions_audited.load(Relaxed));
            j.key("bound_violations").uint(a.bound_violations.load(Relaxed));
            j.key("cpu_seconds").num(a.cpu_nanos.load(Relaxed) as f64 / 1e9);
            j.key("last_epoch").uint(a.last_epoch.load(Relaxed));
            j.key("staleness_epochs").uint(a.staleness_epochs.load(Relaxed));
            j.key("last_l1_error").num(a.last_l1.get());
            j.key("last_linf_error").num(a.last_linf.get());
            j.key("max_linf_error").num(a.max_linf.get());
            j.key("last_topk_overlap_10").num(a.last_overlap10.get());
            j.key("last_topk_overlap_50").num(a.last_overlap50.get());
            j.key("last_invariant_residual").num(a.last_residual.get());
            j.end_obj();
            j.key("slos").begin_arr();
            for (spec, st) in ctx.slo.specs.iter().zip(&ctx.slo.status) {
                j.begin_obj();
                j.key("name").str(spec.name);
                j.key("target").num(spec.target);
                j.key("burn_fast").num(st.burn_fast.get());
                j.key("burn_slow").num(st.burn_slow.get());
                j.key("breaching").bool(st.breaching.load(Relaxed));
                j.key("breaches_total").uint(st.breaches.load(Relaxed));
                j.end_obj();
            }
            j.end_arr();
            let proc = dppr_obs::ProcessStats::sample();
            j.key("process").begin_obj();
            j.key("rss_bytes").uint(proc.rss_bytes);
            j.key("open_fds").uint(proc.open_fds);
            j.key("threads").uint(proc.threads);
            j.end_obj();
            j.key("series").begin_obj();
            j.key("interval_ms").num(ctx.audit_interval.as_secs_f64() * 1e3);
            j.key("samples").uint(ctx.series.len() as u64);
            j.end_obj();
            j.end_obj();
            Ok(Response::new(200, j.finish()))
        }
        "/shutdown" => {
            ctx.shutdown.store(true, SeqCst);
            // Wake the blocking accept so the acceptor can exit; shards
            // notice the flag within their poll ceiling.
            let _ = TcpStream::connect(ctx.addr);
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.key("shutting_down").bool(true);
            j.end_obj();
            Ok(Response::new(200, j.finish()))
        }
        other => Ok(Response::new(404, error_body(&format!("unknown endpoint {other}")))),
    }
}

/// Element-wise sum of every write shard's engine counters, in the
/// stable [`CounterSnapshot::fields`] order.
fn merged_engine_fields(ctx: &Ctx) -> [(&'static str, u64); 11] {
    let mut acc = ctx.shards[0].engine.lock().unwrap().fields();
    for s in &ctx.shards[1..] {
        for (slot, (_, v)) in acc.iter_mut().zip(s.engine.lock().unwrap().fields()) {
            slot.1 += v;
        }
    }
    acc
}

/// Renders the full Prometheus exposition: the registered histogram and
/// gauge families first, then every counter that already lives in
/// `ServerStats` / `ConnCounters` / the caches / the engines, emitted at
/// scrape time so nothing is double-counted. Cross-shard families keep
/// their unsharded meaning (sums for counters, the freshness floor for
/// epochs); the `dppr_write_shard_*` families expose each shard.
fn render_metrics(ctx: &Ctx) -> String {
    let stats = &ctx.stats;
    let cache = ctx.cache_stats();
    let mut extra = PromText::new();
    extra.gauge_f64(
        "dppr_uptime_seconds",
        "Seconds since the instance started serving",
        ctx.start.elapsed().as_secs_f64(),
    );
    extra.gauge_u64(
        "dppr_epoch",
        "Last published epoch (minimum across write shards)",
        ctx.epoch_min(),
    );
    extra.counter_u64("dppr_slides_total", "Window slides applied", stats.slides.load(Relaxed));
    extra.counter_u64(
        "dppr_updates_offered_total",
        "Updates handed to the engine (arcs)",
        stats.updates_offered.load(Relaxed),
    );
    extra.counter_u64(
        "dppr_updates_applied_total",
        "Updates that changed the graph",
        stats.updates_applied.load(Relaxed),
    );
    extra.counter_u64(
        "dppr_queries_total",
        "Query requests answered (any kind, any status)",
        stats.queries.load(Relaxed),
    );
    extra.counter_u64(
        "dppr_shed_total",
        "Requests shed 503 under lag or connection pressure",
        stats.shed.load(Relaxed),
    );
    extra.gauge_u64("dppr_sessions", "Open sessions", ctx.sessions_len() as u64);
    extra.counter_u64(
        "dppr_sessions_opened_total",
        "Sessions opened over HTTP",
        stats.sessions_opened.load(Relaxed),
    );
    extra.counter_u64(
        "dppr_sessions_closed_total",
        "Sessions closed over HTTP",
        stats.sessions_closed.load(Relaxed),
    );
    extra.counter_u64(
        "dppr_sessions_evicted_total",
        "Sessions evicted by the LRU budget",
        stats.sessions_evicted.load(Relaxed),
    );
    extra.counter_u64(
        "dppr_http_connections_total",
        "Connections adopted by the shards",
        ctx.conn.accepted.load(Relaxed),
    );
    extra.counter_u64(
        "dppr_http_requests_total",
        "HTTP requests answered",
        ctx.conn.requests.load(Relaxed),
    );
    extra.counter_u64(
        "dppr_http_bad_requests_total",
        "Malformed or oversized requests answered 400",
        ctx.conn.bad_requests.load(Relaxed),
    );
    extra.counter_u64(
        "dppr_http_read_timeouts_total",
        "Connections reaped by the read deadline",
        ctx.conn.read_timeouts.load(Relaxed),
    );
    extra.counter_u64(
        "dppr_http_write_timeouts_total",
        "Connections reaped by the write deadline",
        ctx.conn.write_timeouts.load(Relaxed),
    );
    extra.counter_u64("dppr_cache_hits_total", "Query-cache hits", cache.hits);
    extra.counter_u64("dppr_cache_misses_total", "Query-cache misses", cache.misses);
    extra.counter_u64("dppr_cache_evictions_total", "Query-cache evictions", cache.evictions);
    extra.counter_u64(
        "dppr_cache_stale_purged_total",
        "Dead-epoch cache entries purged at insert",
        cache.stale_purged,
    );
    extra.gauge_f64(
        "dppr_cache_hit_rate",
        "Query-cache hit rate (0 before any lookup)",
        cache.hit_rate(),
    );
    // Engine push-work counters (the paper's operation quantities),
    // summed across write shards.
    for (name, v) in merged_engine_fields(ctx) {
        let fam = format!("dppr_engine_{name}_total");
        extra.counter_u64(&fam, "Cumulative engine push-work counter", v);
    }
    let graph = *ctx.shards[0].graph.lock().unwrap();
    extra.gauge_u64(
        "dppr_graph_arena_slots",
        "Adjacency-arena slots (live + slack + garbage)",
        graph.arena_slots as u64,
    );
    extra.gauge_u64("dppr_graph_live_slots", "Live adjacency slots (2m)", graph.live_slots as u64);
    extra.gauge_u64(
        "dppr_graph_dead_slots",
        "Garbage slots awaiting compaction",
        graph.dead_slots as u64,
    );
    extra.gauge_u64(
        "dppr_graph_hub_vertices",
        "Vertices on the hash-membership (hub) path",
        graph.hub_vertices as u64,
    );
    extra.gauge_f64("dppr_graph_utilization", "Live fraction of the arena", graph.utilization());
    // The laggard shard's window: the freshness floor across sessions.
    let laggard = ctx
        .shards
        .iter()
        .min_by_key(|s| s.window_end.load(Relaxed))
        .expect("at least one write shard");
    let end = laggard.window_end.load(Relaxed);
    extra.gauge_u64(
        "dppr_stream_window_start",
        "Window start (stream position)",
        laggard.window_start.load(Relaxed),
    );
    extra.gauge_u64("dppr_stream_window_end", "Window end (stream position)", end);
    extra.gauge_u64("dppr_stream_len", "Total logical edges in the stream", ctx.stream_len);
    extra.gauge_f64(
        "dppr_stream_fraction_consumed",
        "Share of the stream that has arrived",
        if ctx.stream_len == 0 { 1.0 } else { end as f64 / ctx.stream_len as f64 },
    );
    extra.gauge_u64(
        "dppr_durability_enabled",
        "1 when a WAL and checkpoints are configured",
        ctx.durability_enabled as u64,
    );
    extra.gauge_u64(
        "dppr_degraded",
        "1 once a WAL failure forced read-only serving",
        stats.degraded.load(Relaxed) as u64,
    );
    extra.gauge_u64(
        "dppr_durable_epoch",
        "Epoch of the newest durable checkpoint",
        stats.durable_epoch.load(Relaxed),
    );
    extra.counter_u64(
        "dppr_checkpoints_total",
        "Checkpoints written successfully",
        stats.checkpoints.load(Relaxed),
    );
    extra.counter_u64(
        "dppr_checkpoint_failures_total",
        "Checkpoint attempts that failed",
        stats.checkpoint_failures.load(Relaxed),
    );
    let wal = ctx.shards.iter().fold(WalStats::default(), |mut acc, s| {
        let w = *s.wal.lock().unwrap();
        acc.appends += w.appends;
        acc.syncs += w.syncs;
        acc.sync_nanos += w.sync_nanos;
        acc.bytes_written += w.bytes_written;
        acc.pruned_segments += w.pruned_segments;
        acc
    });
    extra.counter_u64("dppr_wal_records_total", "Records appended to the WAL", wal.appends);
    extra.counter_u64("dppr_wal_syncs_total", "WAL device flushes issued", wal.syncs);
    extra.counter_u64("dppr_wal_bytes_total", "WAL bytes written (payload + framing)", wal.bytes_written);
    extra.counter_u64(
        "dppr_wal_pruned_segments_total",
        "WAL segments deleted by retention",
        wal.pruned_segments,
    );
    extra.gauge_u64(
        "dppr_wal_segments",
        "Live WAL segments (sealed + active)",
        stats.wal_segments.load(Relaxed),
    );
    // Accuracy-audit scalars (the error *distributions* are the
    // registered dppr_audit_* histograms below).
    let audit = &ctx.audit;
    extra.gauge_u64(
        "dppr_audit_enabled",
        "1 when online accuracy auditing is configured",
        audit.enabled as u64,
    );
    extra.counter_u64("dppr_audit_runs_total", "Audit ticks completed", audit.runs.load(Relaxed));
    extra.counter_u64(
        "dppr_audit_sessions_total",
        "Sessions audited against ground truth",
        audit.sessions_audited.load(Relaxed),
    );
    extra.counter_u64(
        "dppr_audit_bound_violations_total",
        "Audited sessions whose max error exceeded the epsilon contract",
        audit.bound_violations.load(Relaxed),
    );
    extra.family(
        "dppr_audit_cpu_seconds_total",
        "Observer wall time spent auditing (clone-free side only)",
        "counter",
    );
    extra.series_f64("dppr_audit_cpu_seconds_total", None, audit.cpu_nanos.load(Relaxed) as f64 / 1e9);
    extra.gauge_u64(
        "dppr_audit_last_epoch",
        "Epoch of the newest completed audit",
        audit.last_epoch.load(Relaxed),
    );
    extra.gauge_u64(
        "dppr_audit_staleness_epochs",
        "Shard epoch minus audited epoch at last report",
        audit.staleness_epochs.load(Relaxed),
    );
    extra.gauge_f64(
        "dppr_audit_last_linf_error",
        "Max per-vertex error in the newest audit",
        audit.last_linf.get(),
    );
    extra.gauge_f64(
        "dppr_audit_max_linf_error",
        "Largest per-vertex error ever audited",
        audit.max_linf.get(),
    );
    extra.gauge_f64(
        "dppr_audit_invariant_residual",
        "Largest Eq. 2 invariant violation in the newest audit",
        audit.last_residual.get(),
    );
    // SLO burn rates: one {slo,window} series per target and window.
    if !ctx.slo.specs.is_empty() {
        extra.family(
            "dppr_slo_burn_rate",
            "Error-budget burn rate per SLO and window (>= 1 on the fast window is a breach)",
            "gauge",
        );
        for (spec, st) in ctx.slo.specs.iter().zip(&ctx.slo.status) {
            extra.series_f64_multi(
                "dppr_slo_burn_rate",
                &[("slo", spec.name), ("window", "fast")],
                st.burn_fast.get(),
            );
            extra.series_f64_multi(
                "dppr_slo_burn_rate",
                &[("slo", spec.name), ("window", "slow")],
                st.burn_slow.get(),
            );
        }
        extra.family(
            "dppr_slo_breaching",
            "1 while the SLO's fast-window burn is at or above 1",
            "gauge",
        );
        extra.family("dppr_slo_breach_total", "Healthy-to-breaching transitions per SLO", "counter");
        for (spec, st) in ctx.slo.specs.iter().zip(&ctx.slo.status) {
            extra.series_u64_multi(
                "dppr_slo_breaching",
                &[("slo", spec.name)],
                st.breaching.load(Relaxed) as u64,
            );
            extra.series_u64_multi(
                "dppr_slo_breach_total",
                &[("slo", spec.name)],
                st.breaches.load(Relaxed),
            );
        }
    }
    // Process-level gauges out of /proc/self (all 0 without procfs).
    let proc = dppr_obs::ProcessStats::sample();
    extra.gauge_u64("dppr_process_rss_bytes", "Resident set size", proc.rss_bytes);
    extra.gauge_u64("dppr_process_open_fds", "Open file descriptors", proc.open_fds);
    extra.gauge_u64("dppr_process_threads", "OS threads", proc.threads);
    extra.gauge_u64(
        "dppr_metrics_series_samples",
        "Rows retained by the in-process metrics time-series",
        ctx.series.len() as u64,
    );
    extra.gauge_u64(
        "dppr_trace_buffered",
        "Trace events currently buffered",
        ctx.metrics.trace.len() as u64,
    );
    extra.counter_u64(
        "dppr_trace_dropped_total",
        "Trace events evicted from the ring",
        ctx.metrics.trace.dropped(),
    );
    // Per-write-shard scalar families: one labelled series per shard so
    // a straggling, degraded, or behind-on-checkpoints shard is visible
    // without scraping logs. (The labelled stage *histograms* come from
    // the registry render below.)
    struct ShardFam {
        name: &'static str,
        help: &'static str,
        kind: &'static str,
        get: fn(&WriteShardState) -> u64,
    }
    let fams = [
        ShardFam {
            name: "dppr_write_shard_epoch",
            help: "Published epoch per write shard",
            kind: "gauge",
            get: |s| s.domain.epoch(),
        },
        ShardFam {
            name: "dppr_write_shard_slides_total",
            help: "Window slides applied per write shard",
            kind: "counter",
            get: |s| s.slides.load(Relaxed),
        },
        ShardFam {
            name: "dppr_write_shard_sessions",
            help: "Open sessions per write shard",
            kind: "gauge",
            get: |s| s.registry.len() as u64,
        },
        ShardFam {
            name: "dppr_write_shard_durable_epoch",
            help: "Newest durable checkpoint epoch per write shard",
            kind: "gauge",
            get: |s| s.durable_epoch.load(Relaxed),
        },
        ShardFam {
            name: "dppr_write_shard_degraded",
            help: "1 once the shard's WAL failed (read-only)",
            kind: "gauge",
            get: |s| s.degraded.load(Relaxed) as u64,
        },
        ShardFam {
            name: "dppr_write_shard_stream_done",
            help: "1 once the shard ran its stream copy dry",
            kind: "gauge",
            get: |s| s.stream_done.load(Relaxed) as u64,
        },
        ShardFam {
            name: "dppr_write_shard_window_end",
            help: "Window end (stream position) per write shard",
            kind: "gauge",
            get: |s| s.window_end.load(Relaxed),
        },
    ];
    for fam in fams {
        extra.family(fam.name, fam.help, fam.kind);
        for s in &ctx.shards {
            let label = ("write_shard", s.index.to_string());
            extra.series_u64(fam.name, Some(&label), (fam.get)(s));
        }
    }
    ctx.metrics.registry.render_prometheus(&mut extra)
}
