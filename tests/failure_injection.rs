//! Pathological-batch robustness: the engines must stay correct (invariant
//! + ε-accuracy) through degenerate update patterns a stream can produce.

use dppr::core::{
    exact_ppr, max_invariant_violation, DynamicPprEngine, ParallelEngine, PprConfig,
    PushVariant, SeqEngine, UpdateMode,
};
use dppr::graph::{DynamicGraph, EdgeUpdate};

const EPS: f64 = 1e-3;

fn check_accurate(engine: &dyn DynamicPprEngine, g: &DynamicGraph) {
    let cfg = *engine.config();
    let truth = exact_ppr(g, cfg.source, cfg.alpha, 1e-13);
    for v in 0..g.num_vertices().max(truth.len()) as u32 {
        let t = truth.get(v as usize).copied().unwrap_or(0.0);
        assert!(
            (engine.estimate(v) - t).abs() <= cfg.epsilon + 1e-10,
            "{}: vertex {v}",
            engine.name()
        );
    }
}

fn engines() -> Vec<Box<dyn DynamicPprEngine>> {
    let cfg = PprConfig::new(0, 0.2, EPS);
    vec![
        Box::new(SeqEngine::new(cfg, UpdateMode::PerUpdate)),
        Box::new(SeqEngine::new(cfg, UpdateMode::Batched)),
        Box::new(ParallelEngine::new(cfg, PushVariant::OPT)),
        Box::new(ParallelEngine::new(cfg, PushVariant::VANILLA)),
    ]
}

#[test]
fn batch_full_of_noops() {
    for mut e in engines() {
        let mut g = DynamicGraph::new();
        e.apply_batch(&mut g, &[EdgeUpdate::insert(0, 1), EdgeUpdate::insert(1, 0)]);
        let stats = e.apply_batch(
            &mut g,
            &[
                EdgeUpdate::insert(0, 1),   // duplicate
                EdgeUpdate::insert(2, 2),   // self-loop
                EdgeUpdate::delete(5, 9),   // absent
                EdgeUpdate::delete(1, 2),   // absent
            ],
        );
        assert_eq!(stats.applied, 0, "{}", e.name());
        assert_eq!(g.num_edges(), 2);
        check_accurate(e.as_ref(), &g);
    }
}

#[test]
fn insert_then_delete_same_edge_in_one_batch() {
    for mut e in engines() {
        let mut g = DynamicGraph::new();
        e.apply_batch(&mut g, &[EdgeUpdate::insert(0, 1), EdgeUpdate::insert(1, 0)]);
        let stats = e.apply_batch(
            &mut g,
            &[
                EdgeUpdate::insert(0, 2),
                EdgeUpdate::delete(0, 2),
                EdgeUpdate::insert(0, 2),
            ],
        );
        assert_eq!(stats.applied, 3, "{}", e.name());
        assert!(g.has_edge(0, 2));
        check_accurate(e.as_ref(), &g);
    }
}

#[test]
fn source_loses_all_out_edges() {
    for mut e in engines() {
        let mut g = DynamicGraph::new();
        e.apply_batch(
            &mut g,
            &[
                EdgeUpdate::insert(0, 1),
                EdgeUpdate::insert(0, 2),
                EdgeUpdate::insert(1, 0),
                EdgeUpdate::insert(2, 1),
            ],
        );
        e.apply_batch(
            &mut g,
            &[EdgeUpdate::delete(0, 1), EdgeUpdate::delete(0, 2)],
        );
        assert_eq!(g.out_degree(0), 0);
        check_accurate(e.as_ref(), &g);
    }
}

#[test]
fn every_vertex_loses_last_out_edge() {
    // Tear the whole graph down to emptiness; estimates must return to the
    // empty-graph solution α·e_s.
    for mut e in engines() {
        let mut g = DynamicGraph::new();
        let edges = [(0u32, 1u32), (1, 2), (2, 0)];
        let ins: Vec<EdgeUpdate> =
            edges.iter().map(|&(u, v)| EdgeUpdate::insert(u, v)).collect();
        e.apply_batch(&mut g, &ins);
        let del: Vec<EdgeUpdate> =
            edges.iter().map(|&(u, v)| EdgeUpdate::delete(u, v)).collect();
        e.apply_batch(&mut g, &del);
        assert_eq!(g.num_edges(), 0);
        let cfg = *e.config();
        assert!((e.estimate(0) - cfg.alpha).abs() <= cfg.epsilon + 1e-10);
        assert!(e.estimate(1).abs() <= cfg.epsilon + 1e-10);
        assert!(e.estimate(2).abs() <= cfg.epsilon + 1e-10);
    }
}

#[test]
fn batch_of_deletions_only() {
    for mut e in engines() {
        let mut g = DynamicGraph::new();
        let mut ins = Vec::new();
        for u in 0..10u32 {
            for v in 0..10u32 {
                if u != v {
                    ins.push(EdgeUpdate::insert(u, v));
                }
            }
        }
        e.apply_batch(&mut g, &ins);
        let del: Vec<EdgeUpdate> = (1..10u32)
            .flat_map(|u| (0..u).map(move |v| EdgeUpdate::delete(u, v)))
            .collect();
        e.apply_batch(&mut g, &del);
        check_accurate(e.as_ref(), &g);
    }
}

#[test]
fn alternating_insert_delete_churn() {
    for mut e in engines() {
        let mut g = DynamicGraph::new();
        e.apply_batch(&mut g, &[EdgeUpdate::insert(0, 1), EdgeUpdate::insert(1, 0)]);
        for round in 0..20 {
            let upd = if round % 2 == 0 {
                EdgeUpdate::insert(0, 2)
            } else {
                EdgeUpdate::delete(0, 2)
            };
            e.apply_batch(&mut g, &[upd]);
        }
        check_accurate(e.as_ref(), &g);
    }
}

#[test]
fn empty_batch_is_free() {
    for mut e in engines() {
        let mut g = DynamicGraph::new();
        e.apply_batch(&mut g, &[EdgeUpdate::insert(0, 1), EdgeUpdate::insert(1, 0)]);
        let stats = e.apply_batch(&mut g, &[]);
        assert_eq!(stats.applied, 0);
        assert_eq!(stats.counters.pushes, 0);
        check_accurate(e.as_ref(), &g);
    }
}

#[test]
fn parallel_state_survives_invariant_audit_through_churn() {
    let cfg = PprConfig::new(0, 0.2, EPS);
    let mut e = ParallelEngine::new(cfg, PushVariant::OPT);
    let mut g = DynamicGraph::new();
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(123);
    for _ in 0..30 {
        let batch: Vec<EdgeUpdate> = (0..25)
            .map(|_| {
                let u = rng.gen_range(0..30u32);
                let v = rng.gen_range(0..30u32);
                if rng.gen_bool(0.6) {
                    EdgeUpdate::insert(u, v)
                } else {
                    EdgeUpdate::delete(u, v)
                }
            })
            .collect();
        e.apply_batch(&mut g, &batch);
        assert!(max_invariant_violation(&g, e.state()) < 1e-9);
        assert!(e.state().converged());
    }
    check_accurate(&e, &g);
}
