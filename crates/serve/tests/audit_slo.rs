//! End-to-end tests of the observability tentpole: online accuracy
//! auditing, the in-process metrics time-series, SLO burn-rate health,
//! and the trace-endpoint filters — all against a real server on an
//! ephemeral port.

use dppr_graph::generators::erdos_renyi;
use dppr_graph::GraphStream;
use dppr_serve::{start, QuerySnapshot, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(conn, "GET {target} HTTP/1.0\r\nHost: dppr\r\n\r\n").unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw.split_whitespace().nth(1).expect("status").parse().expect("numeric");
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// First sample of family `name` in a Prometheus exposition (skips
/// `# HELP`/`# TYPE` lines and labeled series of longer names).
fn metric_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|l| {
        let rest = l.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ').or_else(|| {
            rest.starts_with('{').then(|| rest.split_once("} ").map(|(_, v)| v)).flatten()
        })?;
        rest.trim().parse().ok()
    })
}

/// Polls `check` against a fresh scrape until it passes or `secs` elapse.
fn poll_metrics(addr: SocketAddr, secs: u64, check: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        if check(&body) || Instant::now() > deadline {
            return body;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn audit_reports_errors_within_bound_across_shards() {
    let epsilon = 1e-3;
    let stream = GraphStream::directed(erdos_renyi(120, 3_000, 9)).permuted(3);
    let handle = start(
        stream,
        0.1,
        &[0, 1, 2, 3, 4, 5, 6, 7],
        ServeConfig {
            threads: 2,
            write_shards: 4,
            batch: 500,
            epsilon,
            audit_sample: 8,
            audit_interval: Duration::from_millis(50),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    // Wait until audits have graded real sessions.
    let body = poll_metrics(addr, 20, |b| {
        metric_value(b, "dppr_audit_sessions_total").unwrap_or(0.0) >= 4.0
    });
    assert!(metric_value(&body, "dppr_audit_sessions_total").unwrap() >= 4.0, "{body}");
    // The error histograms are populated...
    assert!(metric_value(&body, "dppr_audit_l1_error_count").unwrap() >= 1.0, "{body}");
    assert!(body.contains("dppr_audit_topk_overlap_bucket{k=\"10\""), "{body}");
    assert!(body.contains("dppr_audit_topk_overlap_bucket{k=\"50\""), "{body}");
    assert!(metric_value(&body, "dppr_audit_solve_seconds_count").unwrap() >= 1.0, "{body}");
    // ...and the audited error honours the paper's ε contract.
    let max_linf = metric_value(&body, "dppr_audit_max_linf_error").expect("max linf gauge");
    assert!(max_linf <= epsilon + 1e-6, "audited error {max_linf} > epsilon {epsilon}\n{body}");
    assert_eq!(metric_value(&body, "dppr_audit_bound_violations_total"), Some(0.0), "{body}");
    assert_eq!(metric_value(&body, "dppr_audit_enabled"), Some(1.0));

    // /stats mirrors the audit scalars.
    let (status, stats) = get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(stats.contains("\"audit\":{\"enabled\":true"), "{stats}");
    assert!(stats.contains("\"bound_violations\":0"), "{stats}");

    get(addr, "/shutdown");
    handle.join();
}

#[test]
fn corrupted_snapshot_fires_bound_violation() {
    let epsilon = 1e-3;
    let stream = GraphStream::directed(erdos_renyi(80, 1_500, 5)).permuted(2);
    let handle = start(
        stream,
        0.1,
        &[0],
        ServeConfig {
            threads: 2,
            batch: 400,
            epsilon,
            max_slides: 2,
            audit_sample: 4,
            audit_interval: Duration::from_millis(50),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    // Let the instance freeze (slide cap) and at least one clean audit
    // land, so the write loop will not republish over our corruption.
    poll_metrics(addr, 20, |b| metric_value(b, "dppr_audit_runs_total").unwrap_or(0.0) >= 1.0);

    // Inject a corrupted published snapshot: every estimate 0.5 is
    // nowhere near any true PPR vector, so the next audit must flag it.
    let registry = handle.registry();
    let domain = registry.domain().clone();
    let entry = registry.peek(0).expect("session 0 open");
    let corrupt = QuerySnapshot::new(0, handle.epoch(), 0.15, epsilon, vec![0.5; 80]);
    entry.publish(&domain, Arc::new(corrupt));

    let body = poll_metrics(addr, 20, |b| {
        metric_value(b, "dppr_audit_bound_violations_total").unwrap_or(0.0) >= 1.0
    });
    assert!(
        metric_value(&body, "dppr_audit_bound_violations_total").unwrap() >= 1.0,
        "corruption never flagged:\n{body}"
    );
    let last_linf = metric_value(&body, "dppr_audit_last_linf_error").unwrap();
    assert!(last_linf > epsilon, "audited error {last_linf} should dwarf epsilon");

    get(addr, "/shutdown");
    handle.join();
}

#[test]
fn latency_slo_breach_degrades_health_and_sheds() {
    let stream = GraphStream::directed(erdos_renyi(100, 2_000, 7)).permuted(4);
    let handle = start(
        stream,
        0.1,
        &[0],
        ServeConfig {
            threads: 2,
            batch: 400,
            epsilon: 1e-3,
            audit_interval: Duration::from_millis(50),
            // 1ns: any answered request violates the target.
            slo_p99: Duration::from_nanos(1),
            slo_availability: 0.999,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    // Generate request samples, then wait for the fast window to burn.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut health = String::new();
    while Instant::now() < deadline {
        get(addr, "/sessions");
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        health = body;
        if health.contains("\"degraded\":true") {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(health.contains("\"degraded\":true"), "{health}");
    assert!(health.contains("SLO latency_p99 fast burn"), "{health}");
    assert!(health.contains("\"name\":\"latency_p99\""), "{health}");
    // The availability SLO is listed too, with its own state.
    assert!(health.contains("\"name\":\"availability\""), "{health}");

    let body = poll_metrics(addr, 10, |b| {
        metric_value(b, "dppr_slo_breach_total").unwrap_or(0.0) >= 1.0
    });
    assert!(
        body.contains("dppr_slo_burn_rate{slo=\"latency_p99\",window=\"fast\"}"),
        "{body}"
    );
    assert!(body.contains("dppr_slo_breach_total{slo=\"latency_p99\"}"), "{body}");

    // While the latency SLO burns, query endpoints shed with a distinct
    // reason; health endpoints stay reachable.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut shed = (0u16, String::new());
    while Instant::now() < deadline {
        shed = get(addr, "/topk?source=0&k=3");
        if shed.0 == 503 {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(shed.0, 503, "{}", shed.1);
    assert!(shed.1.contains("latency SLO"), "{}", shed.1);

    get(addr, "/shutdown");
    handle.join();
}

#[test]
fn series_endpoint_serves_catalog_and_windows() {
    let stream = GraphStream::directed(erdos_renyi(80, 1_500, 6)).permuted(5);
    let handle = start(
        stream,
        0.1,
        &[0],
        ServeConfig {
            threads: 2,
            batch: 400,
            epsilon: 1e-3,
            audit_interval: Duration::from_millis(50),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    // Wait for at least two observer ticks so windows have points.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (_, catalog) = get(addr, "/series");
        if catalog.contains("\"samples\":")
            && !catalog.contains("\"samples\":0")
            && !catalog.contains("\"samples\":1")
        {
            assert!(catalog.contains("\"epoch\""), "{catalog}");
            assert!(catalog.contains("\"http_request_p99_seconds\""), "{catalog}");
            assert!(catalog.contains("\"process_rss_bytes\""), "{catalog}");
            break;
        }
        assert!(Instant::now() < deadline, "series never sampled: {catalog}");
        std::thread::sleep(Duration::from_millis(50));
    }

    let (status, body) = get(addr, "/series?name=epoch&window=60");
    assert_eq!(status, 200);
    assert!(body.contains("\"name\":\"epoch\""), "{body}");
    assert!(body.contains("\"points\":[["), "{body}");
    assert!(body.contains("\"rate_per_sec\""), "{body}");

    let (status, body) = get(addr, "/series?name=nope");
    assert_eq!(status, 404, "{body}");

    // /metrics self-observation: scrape twice so the first render's
    // duration is visible, and the family gauge counts this exposition.
    get(addr, "/metrics");
    let (_, metrics) = get(addr, "/metrics");
    assert!(metric_value(&metrics, "dppr_metrics_scrape_seconds_count").unwrap() >= 1.0);
    let families = metric_value(&metrics, "dppr_metrics_families").expect("family gauge");
    let types = metrics.matches("# TYPE ").count() as f64;
    assert_eq!(families, types, "gauge must count every family including its own");
    assert!(metric_value(&metrics, "dppr_process_rss_bytes").unwrap() > 0.0);
    assert!(metric_value(&metrics, "dppr_process_threads").unwrap() >= 1.0);

    get(addr, "/shutdown");
    handle.join();
}

#[test]
fn trace_endpoint_filters_by_limit_and_kind() {
    let stream = GraphStream::directed(erdos_renyi(80, 1_500, 8)).permuted(6);
    let handle = start(
        stream,
        0.1,
        &[0],
        ServeConfig {
            threads: 2,
            batch: 400,
            epsilon: 1e-3,
            trace_sample: 1,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    for _ in 0..6 {
        get(addr, "/sessions");
    }
    let (status, body) = get(addr, "/trace?limit=2&kind=request");
    assert_eq!(status, 200);
    let lines: Vec<&str> = body.lines().collect();
    assert!(lines.len() <= 2, "limit ignored: {body}");
    assert!(!lines.is_empty(), "tracing produced nothing");
    assert!(lines.iter().all(|l| l.contains("\"event\":\"request\"")), "{body}");

    // Unfiltered dump is at least as long as the filtered one.
    let (_, all) = get(addr, "/trace");
    assert!(all.lines().count() >= lines.len());

    let (status, body) = get(addr, "/trace?kind=nonsense");
    assert_eq!(status, 400, "{body}");

    get(addr, "/shutdown");
    handle.join();
}
