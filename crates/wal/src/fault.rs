//! Deterministic crash injection for the durability tests.
//!
//! A process under test sets `DPPR_CRASH="<site>:<nth>"` in its
//! environment; the `nth` time execution passes the named site (1-based),
//! the process dies with [`CRASH_EXIT_CODE`] — after whatever *partial*
//! work the site deliberately performed first (e.g. half a frame). Bytes
//! already handed to the kernel survive the exit, exactly as they survive
//! a real process crash, so recovery sees an honestly torn file. (What
//! this does **not** simulate is loss of un-fsynced page cache on a
//! whole-machine power failure; the fsync policy knobs exist for that
//! threat model but the harness cannot exercise it in-process.)
//!
//! Sites are plain strings compiled into the production code path via
//! [`maybe_crash`] / [`crash_hit`]. With the env var unset the fast path
//! is a single relaxed atomic load of a cached "disabled" flag.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Exit status that marks an injected crash (distinguishes it from real
/// panics/aborts in the harness).
pub const CRASH_EXIT_CODE: i32 = 86;

/// Environment variable holding the crash plan, `"<site>:<nth>"`.
pub const CRASH_ENV: &str = "DPPR_CRASH";

struct Plan {
    site: String,
    nth: u64,
    hits: AtomicU64,
}

static PLAN: OnceLock<Option<Plan>> = OnceLock::new();

fn plan() -> Option<&'static Plan> {
    PLAN.get_or_init(|| {
        let raw = std::env::var(CRASH_ENV).ok()?;
        let (site, nth) = raw.rsplit_once(':')?;
        let nth: u64 = nth.parse().ok().filter(|&n| n > 0)?;
        Some(Plan { site: site.to_string(), nth, hits: AtomicU64::new(0) })
    })
    .as_ref()
}

/// Returns true exactly once: on the `nth` pass through `site` named by
/// the crash plan. The caller is expected to do its site-specific partial
/// damage and then call [`die`]. Returns false (cheaply) in production.
#[must_use]
pub fn crash_hit(site: &str) -> bool {
    let Some(p) = plan() else { return false };
    if p.site != site {
        return false;
    }
    p.hits.fetch_add(1, Ordering::Relaxed) + 1 == p.nth
}

/// Kills the process with [`CRASH_EXIT_CODE`] immediately.
pub fn die(site: &str) -> ! {
    eprintln!("dppr-wal: injected crash at {site}");
    std::process::exit(CRASH_EXIT_CODE);
}

/// Crash here (with no partial damage) if the plan says so.
pub fn maybe_crash(site: &str) {
    if crash_hit(site) {
        die(site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The plan is parsed from the environment once per process; unit tests
    // here run without DPPR_CRASH set, so every site must be inert. The
    // positive paths (actual injected deaths) are exercised by the
    // crash_recovery harness, which re-execs itself with the variable set.
    #[test]
    fn inert_without_env() {
        assert!(!crash_hit("append-done"));
        maybe_crash("append-done");
        assert!(!crash_hit("anything:weird"));
    }
}
