//! Walk storage, inverted index, and incremental maintenance.

use dppr_graph::{DynamicGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// `w` α-terminating random walks from one source, with the auxiliary
/// structures needed to maintain them under edge updates: per-walk traces,
/// a per-vertex inverted index of visiting walks (lazily cleaned), and
/// endpoint counts for O(1) estimates.
pub struct MonteCarloPpr {
    source: VertexId,
    alpha: f64,
    seed: u64,
    /// Walk traces; `walks[i][0] == source` always.
    walks: Vec<Vec<VertexId>>,
    /// Per-walk re-simulation epoch, so every re-simulation draws fresh,
    /// reproducible randomness.
    epochs: Vec<u64>,
    /// vertex → ids of walks that visit it. May contain stale or duplicate
    /// entries; reads validate against the trace, and the index is
    /// compacted when more than half its entries are dead weight.
    index: Vec<Vec<u32>>,
    /// Number of walks whose endpoint is each vertex.
    end_counts: Vec<u64>,
    /// Upper bound on dead index entries, for the compaction trigger.
    stale_entries: usize,
    /// Total index entries ever written since the last compaction.
    live_entries: usize,
}

impl MonteCarloPpr {
    /// Creates `num_walks` walks on the empty graph (every walk is the
    /// single vertex `source`). The first insertions touching the source
    /// will re-simulate them.
    pub fn new(source: VertexId, alpha: f64, num_walks: usize, seed: u64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0);
        assert!(num_walks > 0, "need at least one walk");
        let n = source as usize + 1;
        let mut index = vec![Vec::new(); n];
        index[source as usize] = (0..num_walks as u32).collect();
        let mut end_counts = vec![0u64; n];
        end_counts[source as usize] = num_walks as u64;
        MonteCarloPpr {
            source,
            alpha,
            seed,
            walks: vec![vec![source]; num_walks],
            epochs: vec![0; num_walks],
            index,
            end_counts,
            stale_entries: 0,
            live_entries: num_walks,
        }
    }

    /// Number of maintained walks.
    pub fn num_walks(&self) -> usize {
        self.walks.len()
    }

    /// Estimated PPR of `v`: the fraction of walks stopping at `v`.
    pub fn estimate(&self, v: VertexId) -> f64 {
        self.end_counts.get(v as usize).copied().unwrap_or(0) as f64
            / self.walks.len() as f64
    }

    /// The full estimate vector.
    pub fn estimates(&self) -> Vec<f64> {
        let w = self.walks.len() as f64;
        self.end_counts.iter().map(|&c| c as f64 / w).collect()
    }

    /// Sum of walk lengths (size of the trace store).
    pub fn total_trace_len(&self) -> usize {
        self.walks.iter().map(Vec::len).sum()
    }

    fn ensure(&mut self, n: usize) {
        if self.index.len() < n {
            self.index.resize_with(n, Vec::new);
            self.end_counts.resize(n, 0);
        }
    }

    /// Reacts to one applied edge update whose tail is `u`: every walk
    /// visiting `u` gets a fresh suffix from its first visit (the
    /// transition distribution at `u` changed; everything before the first
    /// visit is unaffected). Suffix simulation runs in parallel.
    pub fn on_update(&mut self, g: &DynamicGraph, u: VertexId) {
        self.ensure(g.num_vertices().max(u as usize + 1));
        // Validated, deduplicated set of affected walks.
        let mut affected = std::mem::take(&mut self.index[u as usize]);
        affected.sort_unstable();
        affected.dedup();
        let before = affected.len();
        affected.retain(|&id| self.walks[id as usize].contains(&u));
        self.stale_entries = self.stale_entries.saturating_sub(before - affected.len());
        // The retained ids stay indexed at u (their new suffix starts there).
        self.index[u as usize] = affected.clone();

        if affected.is_empty() {
            return;
        }

        // Parallel: draw each walk's new suffix.
        let alpha = self.alpha;
        let seed = self.seed;
        let walks = &self.walks;
        let epochs = &self.epochs;
        let new_suffixes: Vec<(u32, usize, Vec<VertexId>)> = affected
            .par_iter()
            .with_min_len(16)
            .map(|&id| {
                let trace = &walks[id as usize];
                let pos = trace
                    .iter()
                    .position(|&x| x == u)
                    .expect("validated above");
                let mut rng = SmallRng::seed_from_u64(mix(
                    seed,
                    id as u64,
                    epochs[id as usize] + 1,
                ));
                (id, pos, simulate_walk(g, u, alpha, &mut rng))
            })
            .collect();

        // Serial: splice the suffixes into the stores.
        for (id, pos, suffix) in new_suffixes {
            let idu = id as usize;
            let old_end = *self.walks[idu].last().expect("walks are non-empty");
            self.end_counts[old_end as usize] -= 1;
            // Entries for the replaced tail become stale in the index.
            self.stale_entries += self.walks[idu].len() - pos;
            self.walks[idu].truncate(pos);
            // Index the new suffix; its head `u` is already indexed.
            for &v in &suffix[1..] {
                self.index[v as usize].push(id);
                self.live_entries += 1;
            }
            let new_end = *suffix.last().expect("suffix starts at u");
            self.end_counts[new_end as usize] += 1;
            self.walks[idu].extend_from_slice(&suffix);
            self.epochs[idu] += 1;
        }

        if self.stale_entries * 2 > self.live_entries.max(64) {
            self.compact();
        }
    }

    /// Re-simulates **every** walk from scratch on the current graph and
    /// rebuilds all auxiliary structures. This is the offline
    /// initialization path: `O(w/α)` expected work, parallel across walks.
    /// Used to bootstrap on a pre-built graph instead of paying the
    /// per-update maintenance cost for every initial edge.
    pub fn rebuild(&mut self, g: &DynamicGraph) {
        self.ensure(g.num_vertices());
        let alpha = self.alpha;
        let seed = self.seed;
        let source = self.source;
        let epochs = &self.epochs;
        let traces: Vec<Vec<VertexId>> = (0..self.walks.len())
            .into_par_iter()
            .with_min_len(64)
            .map(|id| {
                let mut rng =
                    SmallRng::seed_from_u64(mix(seed, id as u64, epochs[id] + 1));
                simulate_walk(g, source, alpha, &mut rng)
            })
            .collect();
        self.walks = traces;
        for e in &mut self.epochs {
            *e += 1;
        }
        self.end_counts.iter_mut().for_each(|c| *c = 0);
        for trace in &self.walks {
            self.end_counts[*trace.last().unwrap() as usize] += 1;
        }
        self.compact();
    }

    /// Rebuilds the inverted index from the walk traces, dropping all stale
    /// and duplicate entries.
    pub fn compact(&mut self) {
        for list in &mut self.index {
            list.clear();
        }
        let mut live = 0usize;
        for (id, trace) in self.walks.iter().enumerate() {
            for &v in trace {
                let list = &mut self.index[v as usize];
                if list.last() != Some(&(id as u32)) {
                    list.push(id as u32);
                    live += 1;
                }
            }
        }
        self.stale_entries = 0;
        self.live_entries = live;
    }

    /// Internal consistency check for tests: endpoint counts match traces,
    /// and the index covers every visit.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut counts = vec![0u64; self.end_counts.len()];
        for trace in &self.walks {
            if trace.first() != Some(&self.source) {
                return Err("walk does not start at source".into());
            }
            counts[*trace.last().unwrap() as usize] += 1;
        }
        if counts != self.end_counts {
            return Err("endpoint counts drifted".into());
        }
        for (id, trace) in self.walks.iter().enumerate() {
            for &v in trace {
                if !self.index[v as usize].contains(&(id as u32)) {
                    return Err(format!("walk {id} visit to {v} missing from index"));
                }
            }
        }
        Ok(())
    }
}

/// One α-terminating walk from `start` (inclusive): at each vertex the walk
/// stops with probability α (or when dangling) and otherwise moves to a
/// uniform out-neighbor.
fn simulate_walk(
    g: &DynamicGraph,
    start: VertexId,
    alpha: f64,
    rng: &mut SmallRng,
) -> Vec<VertexId> {
    let mut trace = vec![start];
    let mut cur = start;
    loop {
        if rng.gen::<f64>() < alpha {
            break;
        }
        let d = g.out_degree(cur);
        if d == 0 {
            break;
        }
        cur = g.out_neighbors(cur)[rng.gen_range(0..d)];
        trace.push(cur);
    }
    trace
}

/// SplitMix64-style mixing for reproducible per-(walk, epoch) streams.
fn mix(seed: u64, id: u64, epoch: u64) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ epoch.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exact endpoint distribution of the α-terminating walk (the quantity the
/// Monte-Carlo engine estimates), by mass propagation until the residual
/// walking mass drops below `tol`.
pub fn endpoint_distribution(
    g: &DynamicGraph,
    source: VertexId,
    alpha: f64,
    tol: f64,
) -> Vec<f64> {
    let n = g.num_vertices().max(source as usize + 1);
    let mut walking = vec![0.0f64; n];
    walking[source as usize] = 1.0;
    let mut stopped = vec![0.0f64; n];
    let mut remaining = 1.0f64;
    while remaining > tol {
        let mut next = vec![0.0f64; n];
        for u in 0..n {
            let m = walking[u];
            if m == 0.0 {
                continue;
            }
            let d = g.out_degree(u as VertexId);
            if d == 0 {
                stopped[u] += m;
                remaining -= m;
            } else {
                stopped[u] += alpha * m;
                remaining -= alpha * m;
                let share = (1.0 - alpha) * m * g.inv_out_degree(u as VertexId);
                for &v in g.out_neighbors(u as VertexId) {
                    next[v as usize] += share;
                }
            }
        }
        walking = next;
    }
    stopped
}

#[cfg(test)]
mod tests {
    use super::*;
    use dppr_graph::generators::erdos_renyi;

    #[test]
    fn empty_graph_walks_stay_home() {
        let mc = MonteCarloPpr::new(2, 0.15, 100, 1);
        assert_eq!(mc.estimate(2), 1.0);
        assert_eq!(mc.estimate(0), 0.0);
        mc.check_consistency().unwrap();
    }

    #[test]
    fn estimates_sum_to_one() {
        let mut mc = MonteCarloPpr::new(0, 0.2, 5_000, 3);
        let mut g = DynamicGraph::new();
        for (u, v) in erdos_renyi(25, 120, 8) {
            g.insert_edge(u, v);
            mc.on_update(&g, u);
        }
        mc.check_consistency().unwrap();
        let total: f64 = mc.estimates().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_exact_endpoint_distribution() {
        let mut mc = MonteCarloPpr::new(0, 0.25, 80_000, 5);
        let mut g = DynamicGraph::new();
        for (u, v) in erdos_renyi(15, 60, 2) {
            g.insert_edge(u, v);
            mc.on_update(&g, u);
        }
        let exact = endpoint_distribution(&g, 0, 0.25, 1e-13);
        for v in 0..g.num_vertices() as VertexId {
            let err = (mc.estimate(v) - exact[v as usize]).abs();
            assert!(err < 0.015, "vertex {v}: {} vs {}", mc.estimate(v), exact[v as usize]);
        }
    }

    #[test]
    fn resimulation_is_deterministic_given_seed() {
        let build = || {
            let mut mc = MonteCarloPpr::new(0, 0.3, 500, 42);
            let mut g = DynamicGraph::new();
            for (u, v) in [(0, 1), (1, 2), (2, 0), (0, 2)] {
                g.insert_edge(u, v);
                mc.on_update(&g, u);
            }
            mc.estimates()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn deletion_reroutes_walks() {
        let mut mc = MonteCarloPpr::new(0, 0.2, 20_000, 17);
        let mut g = DynamicGraph::new();
        // A path 0 → 1 → 2 plus a detour 0 → 3.
        for (u, v) in [(0u32, 1u32), (1, 2), (0, 3)] {
            g.insert_edge(u, v);
            mc.on_update(&g, u);
        }
        let before_3 = mc.estimate(3);
        // Remove 0 → 1: all mass beyond the source must now flow through 3.
        g.delete_edge(0, 1);
        mc.on_update(&g, 0);
        mc.check_consistency().unwrap();
        assert!(mc.estimate(1) == 0.0);
        assert!(mc.estimate(2) == 0.0);
        assert!(mc.estimate(3) > before_3);
        let exact = endpoint_distribution(&g, 0, 0.2, 1e-13);
        assert!((mc.estimate(3) - exact[3]).abs() < 0.02);
    }

    #[test]
    fn compaction_preserves_semantics() {
        let mut mc = MonteCarloPpr::new(0, 0.3, 2_000, 9);
        let mut g = DynamicGraph::new();
        for (u, v) in erdos_renyi(10, 40, 4) {
            g.insert_edge(u, v);
            mc.on_update(&g, u);
        }
        let before = mc.estimates();
        mc.compact();
        mc.check_consistency().unwrap();
        assert_eq!(mc.estimates(), before);
    }

    #[test]
    fn endpoint_distribution_simple_chain() {
        // 0 → 1: stop at 0 w.p. α; else move to 1 and stop there (dangling).
        let g = DynamicGraph::from_edges([(0, 1)]);
        let e = endpoint_distribution(&g, 0, 0.4, 1e-15);
        assert!((e[0] - 0.4).abs() < 1e-12);
        assert!((e[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn mix_streams_are_distinct() {
        assert_ne!(mix(1, 2, 3), mix(1, 2, 4));
        assert_ne!(mix(1, 2, 3), mix(1, 3, 3));
        assert_ne!(mix(1, 2, 3), mix(2, 2, 3));
    }
}
