//! Serving: start the concurrent query-serving subsystem in-process,
//! issue live HTTP queries while the update stream slides in the
//! background, open a session mid-stream, and shut down cleanly.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use dppr::graph::generators::{barabasi_albert, undirected_to_directed};
use dppr::graph::GraphStream;
use dppr::serve::{start, ServeConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn get(addr: std::net::SocketAddr, target: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(conn, "GET {target} HTTP/1.0\r\nHost: dppr\r\n\r\n").unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or(raw)
}

fn main() {
    let n: u32 = match std::env::var("DPPR_EXAMPLE_N") {
        Ok(s) => s.parse().expect("DPPR_EXAMPLE_N must be a vertex count"),
        Err(_) => 2_000,
    };
    let edges = undirected_to_directed(&barabasi_albert(n, 4, 7));
    let stream = GraphStream::directed(edges).permuted(42);

    // Track the two highest-degree hubs of the warmed window (same 0.1
    // init fraction as the server below, so the probe sees the same graph).
    let sources = dppr::serve::pick_top_degree_sources(&stream, 0.1, 2);

    let handle = start(
        stream,
        0.1,
        &sources,
        ServeConfig {
            threads: 2,
            batch: 200,
            epsilon: 1e-4,
            slide_pause: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr = handle.addr();
    println!("serving sessions {sources:?} at http://{addr}");

    // Live queries race the background update stream; each response
    // carries the epoch it was answered at.
    let hub = sources[0];
    println!("topk    -> {}", get(addr, &format!("/topk?source={hub}&k=3")));
    println!("score   -> {}", get(addr, &format!("/score?source={hub}&v=0")));
    println!(
        "compare -> {}",
        get(addr, &format!("/compare?source={hub}&a=0&b=1"))
    );

    // Open a session for a brand-new source mid-stream; the write loop
    // cold-starts it between batches. (Picked to not already be tracked,
    // so this genuinely exercises the cold-start path.)
    let newcomer = (0..n).find(|v| !sources.contains(v)).expect("an untracked vertex");
    get(addr, &format!("/session/open?source={newcomer}"));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let body = get(addr, &format!("/topk?source={newcomer}&k=3"));
        if !body.contains("error") {
            println!("opened  -> {body}");
            break;
        }
        assert!(Instant::now() < deadline, "session never opened");
        std::thread::sleep(Duration::from_millis(10));
    }

    println!("stats   -> {}", get(addr, "/stats"));
    let report = handle.join();
    println!(
        "served {} queries over {} epochs ({} slides, {:.0} updates/s under load)",
        report.queries, report.epoch, report.slides, report.updates_per_sec
    );
    assert!(report.queries >= 4);
}
