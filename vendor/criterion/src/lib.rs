//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small API-compatible shim instead (see `vendor/README.md`).
//! It is a *functional* harness, not just a compile stub: `cargo bench`
//! runs each registered benchmark for a fixed number of timed samples
//! and prints median / mean per-iteration wall time as TSV. There is no
//! statistical analysis, outlier rejection, HTML report, or baseline
//! comparison — swap the real crate back in for publication-grade
//! numbers once a registry is reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted for compatibility. The
/// shim always re-runs setup per batch of one iteration, which is
/// `BatchSize::PerIteration` semantics — correct for every call site in
/// this workspace (they use setup to reset mutated state).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
}

/// Throughput annotation; recorded and echoed in the output line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", &id.to_string(), sample_size, None, &mut f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f` once per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
        self.iters_per_sample = 1;
    }

    /// Times `routine` on a fresh `setup()` input per sample; setup time
    /// is excluded.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.samples.capacity() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
        self.iters_per_sample = 1;
    }

    /// Like `iter_batched` but the routine mutates the input in place.
    pub fn iter_batched_ref<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> R,
    {
        for _ in 0..self.samples.capacity() {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
        self.iters_per_sample = 1;
    }

    /// The closure measures `iters` iterations itself and returns the
    /// total elapsed time.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        const ITERS: u64 = 3;
        for _ in 0..self.samples.capacity() {
            self.samples.push(f(ITERS));
        }
        self.iters_per_sample = ITERS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("{label}\t(no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let tp = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("\t{:.0} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) => format!("\t{:.0} B/s", n as f64 / median),
        None => String::new(),
    };
    println!(
        "{label}\tmedian {:.3} ms\tmean {:.3} ms\tsamples {}{tp}",
        median * 1e3,
        mean * 1e3,
        per_iter.len()
    );
}

/// Registers benchmark functions under a group name, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
