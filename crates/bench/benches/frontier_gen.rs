//! Ablation for §4.2: frontier-generation strategies.
//!
//! Isolates the three designs the paper discusses on one synthetic
//! neighbor-propagation round (same atomic adds, different discovery):
//!
//! * `local_dup_detect` — enqueue on threshold crossing (before/after pair);
//! * `atomic_flags`     — enqueue via a shared CAS-claim bitmap (the
//!   synchronizing `UniqueEnqueue`);
//! * `topology_scan`    — no tracking during the adds; rescan all vertices
//!   afterwards (the "not work-efficient" rejected design).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dppr_core::{AtomicF64, Phase};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

const N: usize = 100_000;
const UPDATES: usize = 400_000;
const EPS: f64 = 1e-4;

struct Fixture {
    residuals: Vec<AtomicF64>,
    base: Vec<f64>,
    updates: Vec<(u32, f64)>,
    flags: Vec<AtomicBool>,
}

fn fixture() -> Fixture {
    let mut rng = SmallRng::seed_from_u64(99);
    let base: Vec<f64> = (0..N).map(|_| rng.gen::<f64>() * EPS * 0.5).collect();
    let updates: Vec<(u32, f64)> = (0..UPDATES)
        .map(|_| {
            // Skewed targets: low ids act like hubs receiving many adds.
            let v = (rng.gen::<f64>().powi(3) * N as f64) as u32 % N as u32;
            (v, rng.gen::<f64>() * EPS * 0.4)
        })
        .collect();
    Fixture {
        residuals: base.iter().map(|&x| AtomicF64::new(x)).collect(),
        base,
        updates,
        flags: (0..N).map(|_| AtomicBool::new(false)).collect(),
    }
}

fn reset(f: &Fixture) {
    for (slot, &v) in f.residuals.iter().zip(&f.base) {
        slot.store(v);
    }
    for flag in &f.flags {
        flag.store(false, Ordering::Relaxed);
    }
}

fn apply_adds<E>(f: &Fixture, enqueue: E) -> Vec<u32>
where
    E: Fn(u32, f64, f64, &mut Vec<u32>) + Sync,
{
    f.updates
        .par_chunks(1024)
        .fold(Vec::new, |mut acc, chunk| {
            for &(v, inc) in chunk {
                let pre = f.residuals[v as usize].fetch_add(inc);
                enqueue(v, pre, pre + inc, &mut acc);
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        })
}

fn bench_frontier_gen(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("frontier_gen");
    group.sample_size(10);

    group.bench_function("local_dup_detect", |b| {
        b.iter_batched(
            || reset(&f),
            |_| apply_adds(&f, |v, pre, cur, acc| {
                if Phase::Pos.crossed(pre, cur, EPS) {
                    acc.push(v);
                }
            }),
            BatchSize::PerIteration,
        )
    });

    group.bench_function("atomic_flags", |b| {
        b.iter_batched(
            || reset(&f),
            |_| {
                apply_adds(&f, |v, _pre, cur, acc| {
                    if Phase::Pos.active(cur, EPS)
                        && !f.flags[v as usize].swap(true, Ordering::Relaxed)
                    {
                        acc.push(v);
                    }
                })
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("topology_scan", |b| {
        b.iter_batched(
            || reset(&f),
            |_| {
                apply_adds(&f, |_v, _pre, _cur, _acc| {});
                (0..N as u32)
                    .into_par_iter()
                    .filter(|&v| Phase::Pos.active(f.residuals[v as usize].load(), EPS))
                    .collect::<Vec<u32>>()
            },
            BatchSize::PerIteration,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_frontier_gen);
criterion_main!(benches);
