//! The epoch-invalidated query cache.
//!
//! Keys are `(source, query kind, parameters)`; values are fully rendered
//! response bodies tagged with the snapshot epoch they were computed from.
//! There is no explicit invalidation path: a hit requires the entry's
//! epoch to equal the *current* snapshot's epoch, so every publication
//! round implicitly invalidates the whole cache for that session — exactly
//! the freshness contract the snapshots themselves give. Entries are
//! sharded over independent mutexes to keep worker threads off each
//! other's locks.

use dppr_graph::VertexId;
use std::collections::HashMap;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

const SHARDS: usize = 16;

/// A query, as a cache key component. `Threshold` stores the δ bit
/// pattern so the key stays `Eq + Hash`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Top-k ranking.
    TopK(usize),
    /// Single-vertex score.
    Score(VertexId),
    /// Threshold selection, keyed by `delta.to_bits()`.
    Threshold(u64),
    /// Pairwise comparison.
    Compare(VertexId, VertexId),
}

#[derive(PartialEq, Eq, Hash)]
struct Key {
    source: VertexId,
    kind: QueryKind,
}

struct Entry {
    epoch: u64,
    body: std::sync::Arc<str>,
}

/// Hit/miss counters, exported into `/stats` and `BENCH_3.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Lookups answered from the cache at the current epoch.
    pub hits: u64,
    /// Lookups that had to render (absent or stale-epoch entry).
    pub misses: u64,
    /// Live (current-epoch) entries discarded by capacity pressure.
    pub evictions: u64,
    /// Dead-epoch entries purged at insert-at-capacity. These could
    /// never hit again, so dropping them is reclamation, not pressure —
    /// counted apart from `evictions` so a high eviction rate actually
    /// means live entries are fighting for capacity.
    pub stale_purged: u64,
}

impl CacheStats {
    /// Hits over lookups; 0 when no lookup happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Field-wise sum, for merging per-shard cache stats.
    pub fn merge(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            stale_purged: self.stale_purged + other.stale_purged,
        }
    }
}

/// Sharded, epoch-validated cache of rendered responses.
pub struct QueryCache {
    shards: Box<[Mutex<HashMap<Key, Entry>>]>,
    /// Max entries per shard; 0 disables the cache entirely.
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stale_purged: AtomicU64,
}

impl QueryCache {
    /// A cache holding roughly `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        let per_shard_cap = capacity.div_ceil(SHARDS);
        QueryCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            per_shard_cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_purged: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &Key) -> &Mutex<HashMap<Key, Entry>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Returns the cached body for `(source, kind)` if it was rendered at
    /// exactly `epoch`; otherwise renders, caches, and returns it. The
    /// second component reports whether it was a hit.
    pub fn get_or_render(
        &self,
        source: VertexId,
        kind: QueryKind,
        epoch: u64,
        render: impl FnOnce() -> String,
    ) -> (std::sync::Arc<str>, bool) {
        if self.per_shard_cap == 0 {
            self.misses.fetch_add(1, Relaxed);
            return (render().into(), false);
        }
        let key = Key { source, kind };
        let shard = self.shard(&key);
        {
            let guard = shard.lock().unwrap();
            if let Some(entry) = guard.get(&key) {
                if entry.epoch == epoch {
                    self.hits.fetch_add(1, Relaxed);
                    return (std::sync::Arc::clone(&entry.body), true);
                }
            }
        }
        // Render outside the lock: a slow top-k must not serialize the
        // shard's other queries.
        self.misses.fetch_add(1, Relaxed);
        let body: std::sync::Arc<str> = render().into();
        let mut guard = shard.lock().unwrap();
        if guard.len() >= self.per_shard_cap && !guard.contains_key(&key) {
            // Capacity pressure. A worker may arrive here holding a
            // snapshot from *before* the latest publication; its entry is
            // stale on arrival and must not displace fresher ones, so it
            // is simply not cached.
            let newest = guard.values().map(|e| e.epoch).max().unwrap_or(epoch);
            if epoch < newest {
                return (body, false);
            }
            // Dead-epoch entries can never hit again — purge those first
            // (reclamation, counted as `stale_purged`); only if the shard
            // is still full of current-epoch entries does a live entry
            // get dropped, and only that counts as capacity pressure
            // (epoch churn makes any retained entry short-lived anyway).
            let before = guard.len();
            guard.retain(|_, e| e.epoch == epoch);
            self.stale_purged.fetch_add((before - guard.len()) as u64, Relaxed);
            if guard.len() >= self.per_shard_cap {
                self.evictions.fetch_add(guard.len() as u64, Relaxed);
                guard.clear();
            }
        }
        // Same guard on the plain-insert path: a laggard's render must not
        // overwrite a fresher entry already cached under this key.
        match guard.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if o.get().epoch <= epoch {
                    o.insert(Entry { epoch, body: std::sync::Arc::clone(&body) });
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Entry { epoch, body: std::sync::Arc::clone(&body) });
            }
        }
        (body, false)
    }

    /// Current entry count across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
            stale_purged: self.stale_purged.load(Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_requires_matching_epoch() {
        let c = QueryCache::new(64);
        let (body, hit) =
            c.get_or_render(0, QueryKind::TopK(5), 1, || "v1".to_string());
        assert!(!hit);
        assert_eq!(&*body, "v1");
        let (body, hit) = c.get_or_render(0, QueryKind::TopK(5), 1, || {
            panic!("must not re-render at the same epoch")
        });
        assert!(hit);
        assert_eq!(&*body, "v1");
        // Epoch bump invalidates: the renderer runs again.
        let (body, hit) =
            c.get_or_render(0, QueryKind::TopK(5), 2, || "v2".to_string());
        assert!(!hit);
        assert_eq!(&*body, "v2");
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_queries_do_not_collide() {
        let c = QueryCache::new(64);
        c.get_or_render(0, QueryKind::TopK(5), 1, || "a".into());
        let (b, hit) = c.get_or_render(0, QueryKind::TopK(6), 1, || "b".into());
        assert!(!hit);
        assert_eq!(&*b, "b");
        let (b, hit) = c.get_or_render(1, QueryKind::TopK(5), 1, || "c".into());
        assert!(!hit);
        assert_eq!(&*b, "c");
        let (b, hit) = c.get_or_render(
            0,
            QueryKind::Threshold(0.5f64.to_bits()),
            1,
            || "d".into(),
        );
        assert!(!hit);
        assert_eq!(&*b, "d");
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = QueryCache::new(0);
        let (_, hit) = c.get_or_render(0, QueryKind::Score(1), 1, || "x".into());
        assert!(!hit);
        let (_, hit) = c.get_or_render(0, QueryKind::Score(1), 1, || "x".into());
        assert!(!hit);
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn laggard_epoch_insert_does_not_evict_fresh_entries() {
        // 64 entries per shard: the fresh keys all fit without pressure.
        let c = QueryCache::new(64 * SHARDS);
        for v in 0..64u32 {
            c.get_or_render(0, QueryKind::Score(v), 2, || format!("e2-{v}"));
        }
        // A worker still holding an epoch-1 snapshot renders a flood of
        // other keys, driving every shard into capacity pressure: its
        // stale-on-arrival entries must not displace the fresh ones.
        for v in 1_000..3_000u32 {
            c.get_or_render(0, QueryKind::Score(v), 1, || format!("e1-{v}"));
        }
        let mut fresh_hits = 0u64;
        for v in 0..64u32 {
            let (_, hit) = c.get_or_render(0, QueryKind::Score(v), 2, || {
                format!("rerendered-{v}")
            });
            fresh_hits += hit as u64;
        }
        assert_eq!(fresh_hits, 64, "laggard inserts wiped fresh entries");
    }

    #[test]
    fn stale_render_does_not_overwrite_fresher_entry_for_same_key() {
        let c = QueryCache::new(64);
        c.get_or_render(0, QueryKind::TopK(5), 2, || "fresh".into());
        // A laggard still at epoch 1 re-renders the same key: miss, but
        // the fresher cached body must survive.
        let (body, hit) = c.get_or_render(0, QueryKind::TopK(5), 1, || "stale".into());
        assert!(!hit);
        assert_eq!(&*body, "stale"); // the laggard gets its own answer...
        let (body, hit) = c.get_or_render(0, QueryKind::TopK(5), 2, || {
            panic!("fresh entry was overwritten")
        });
        assert!(hit); // ...but the fresh entry still serves epoch 2
        assert_eq!(&*body, "fresh");
    }

    #[test]
    fn capacity_pressure_prefers_dropping_stale_epochs() {
        let c = QueryCache::new(SHARDS); // one entry per shard
        for v in 0..64u32 {
            c.get_or_render(0, QueryKind::Score(v), 1, || format!("e1-{v}"));
        }
        // Insertions at a newer epoch push the stale ones out — as stale
        // purges, not pressure evictions.
        for v in 0..64u32 {
            c.get_or_render(0, QueryKind::Score(v), 2, || format!("e2-{v}"));
        }
        assert!(c.stats().stale_purged > 0);
        assert!(c.len() <= 2 * SHARDS);
    }

    #[test]
    fn stale_purge_is_counted_apart_from_pressure_evictions() {
        let c = QueryCache::new(SHARDS); // one entry per shard
        // Phase 1: flood epoch-1 keys until every shard holds exactly one
        // e1 entry. Same-epoch churn past capacity here is genuine
        // pressure and lands in `evictions`; nothing is stale yet.
        for v in 0..200u32 {
            c.get_or_render(0, QueryKind::Score(v), 1, || "old".into());
        }
        let s1 = c.stats();
        assert_eq!(s1.stale_purged, 0, "no dead epochs exist during phase 1");
        assert!(s1.evictions > 0, "e1-on-e1 churn is pressure");
        // Phase 2: epoch-2 keys. Each shard's first e2 insert lands on a
        // full shard whose only occupant is dead — that is reclamation
        // (`stale_purged`), at most one per shard; later e2-on-e2 churn
        // goes back to `evictions`.
        for v in 0..200u32 {
            c.get_or_render(0, QueryKind::Score(v), 2, || "new".into());
        }
        let s2 = c.stats();
        let stale_delta = s2.stale_purged - s1.stale_purged;
        assert!(stale_delta >= 1, "dead entries must be purged, not evicted");
        assert!(
            stale_delta <= SHARDS as u64,
            "each shard holds at most one dead entry to purge"
        );
        // And the merge helper sums field-wise.
        let doubled = s2.merge(&s2);
        assert_eq!(doubled.evictions, 2 * s2.evictions);
        assert_eq!(doubled.stale_purged, 2 * s2.stale_purged);
        assert_eq!(doubled.misses, 2 * s2.misses);
    }
}
