//! Local community detection via PPR + sweep cut (the application of
//! Andersen, Chung & Lang, FOCS'06 — reference [6] of the paper).
//!
//! Plants four communities, finds the one around a query vertex with a
//! forward push + conductance sweep, then shows the community surviving
//! structural drift as edges stream in and out.
//!
//! ```text
//! cargo run --release --example community_sweep
//! ```

use dppr::core::forward::{forward_push, sweep_cut};
use dppr::graph::generators::undirected_to_directed;
use dppr::graph::DynamicGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A planted-partition graph: `k` groups of `size` vertices, dense inside
/// (probability `p_in`), sparse across (`p_out`). Returns undirected edges.
fn planted_partition(
    k: usize,
    size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Vec<(u32, u32)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = (k * size) as u32;
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            let same = (a as usize / size) == (b as usize / size);
            let p = if same { p_in } else { p_out };
            if rng.gen_bool(p) {
                edges.push((a, b));
            }
        }
    }
    edges
}

fn community_of(g: &DynamicGraph, query: u32) -> (Vec<u32>, f64) {
    let fp = forward_push(g, query, 0.1, 1e-6);
    let cut = sweep_cut(g, &fp.p).expect("graph is non-empty");
    let mut members = cut.community;
    members.sort_unstable();
    (members, cut.conductance)
}

fn main() {
    let size = 30;
    let und = planted_partition(4, size, 0.4, 0.01, 2024);
    let mut g = DynamicGraph::from_edges(undirected_to_directed(&und));
    println!(
        "planted-partition graph: {} vertices, {} arcs, 4 communities of {size}",
        g.num_vertices(),
        g.num_edges()
    );

    let query = 7u32; // inside community 0 (vertices 0..30)
    let (members, phi) = community_of(&g, query);
    let inside = members.iter().filter(|&&v| (v as usize) < size).count();
    println!(
        "\nsweep cut around vertex {query}: {} members, conductance {phi:.4}",
        members.len()
    );
    println!(
        "  {inside}/{} members belong to the planted community",
        members.len()
    );
    assert!(inside * 10 >= members.len() * 9, "community should be >90% pure");

    // The graph drifts: community 0 and 1 merge through new bridges.
    let mut rng = SmallRng::seed_from_u64(7);
    let mut added = 0;
    for _ in 0..200 {
        let a = rng.gen_range(0..size as u32);
        let b = rng.gen_range(size as u32..(2 * size) as u32);
        if g.insert_edge(a, b) {
            g.insert_edge(b, a);
            added += 1;
        }
    }
    println!("\nafter inserting {added} bridge edges between communities 0 and 1:");
    let (members, phi) = community_of(&g, query);
    let in_01 = members.iter().filter(|&&v| (v as usize) < 2 * size).count();
    println!(
        "  sweep cut now has {} members (conductance {phi:.4}), {in_01} inside 0∪1",
        members.len()
    );
    assert!(
        members.len() > size,
        "the merged community should outgrow a single block"
    );
}
