//! Durable segmented write-ahead log for the dynamic-PPR serving stack.
//!
//! The serving write loop appends every applied slide batch here *before*
//! publishing its epoch, so that after a crash the engine state can be
//! reconstructed as: newest durable checkpoint + replay of the log tail.
//! The pieces:
//!
//! * [`record`] — the logical records ([`WalRecord::Batch`],
//!   [`WalRecord::Checkpoint`]) and their compact binary encoding.
//! * [`segment`] — the on-disk frame format (`[len][crc32][payload]`
//!   after an 8-byte magic) and the scanner that stops at the first
//!   invalid byte, making a torn final write recoverable by truncation.
//! * [`log`] — [`Wal`]: segment rotation, the [`FsyncPolicy`] spectrum
//!   (per-batch / interval / off), torn-tail repair on open, and
//!   retention that deletes segments wholly covered by the newest
//!   durable checkpoint.
//! * [`fault`] — deterministic, env-driven crash injection
//!   (`DPPR_CRASH="<site>:<nth>"`) used by the crash-recovery harness to
//!   kill the process mid-append, mid-checkpoint, and mid-rename.
//!
//! Recovery semantics are exactly "prefix durability": the log never
//! lies about what was applied, it only forgets an un-synced suffix. The
//! replay path tolerates a duplicated tail (epochs at or below the
//! recovered state's epoch are skipped) and treats any epoch gap as
//! corruption.

pub mod fault;
pub mod log;
pub mod record;
pub mod segment;

pub use fault::{crash_hit, die, maybe_crash, CRASH_ENV, CRASH_EXIT_CODE};
pub use log::{FsyncPolicy, Wal, WalOptions, WalStats};
pub use record::WalRecord;
