//! Theorem 3 — the parallel local update performs asymptotically the same
//! number of operations as the sequential one.
//!
//! For each batch size, runs CPU-Seq, CPU-MT[Vanilla] and CPU-MT[Opt] over
//! the same stream and reports total operations (restores + pushes +
//! traversals, the currency of Theorems 1/3) and the parallel/sequential
//! ratio, plus the closed-form bound Λ_u of Lemma 2/Theorem 3 for the
//! undirected arbitrary-update model:
//!
//! ```text
//! Λ_u ≤ d/(αε) + K·2/α + K·(4/α² + 4/(α²·n·ε))
//! ```
//!
//! Expected outcome: the ratio stays O(1) (slightly above 1 from parallel
//! loss, pulled back toward 1 by eager propagation), and both counts sit
//! far below the worst-case bound.
//!
//! Usage: `theory_ops [--full]`

use dppr_bench::{run_engine, EngineKind, ExperimentScale, Workload};
use dppr_core::PushVariant;
use std::time::Duration;

fn main() {
    let scale = ExperimentScale::from_args();
    let batches: &[usize] = match scale {
        ExperimentScale::Quick => &[10, 100, 1_000],
        ExperimentScale::Full => &[100, 1_000, 10_000],
    };
    let budget = Duration::from_secs(10);
    println!("# Theorem 3: operation counts, parallel vs sequential");
    println!(
        "dataset\tbatch\tK_updates\tops_seq\tops_vanilla\tops_opt\tvanilla_ratio\topt_ratio\tbound_lambda_u"
    );
    for ds in scale.datasets() {
        let eps = ds.default_epsilon;
        let alpha = 0.15f64;
        let workload = Workload::prepare(ds, 8, 0.1, 10);
        for &batch in batches {
            let mut ops = Vec::new();
            let mut updates = 0usize;
            for kind in [
                EngineKind::CpuSeq,
                EngineKind::CpuMt(PushVariant::VANILLA),
                EngineKind::CpuMt(PushVariant::OPT),
            ] {
                let summary =
                    run_engine(kind, &workload, eps, batch, scale.slides(), budget);
                updates = summary.total_updates;
                ops.push(summary.total_counters().total_operations());
            }
            if updates == 0 {
                continue;
            }
            let k = updates as f64;
            let n = workload.num_vertices as f64;
            let d = workload.window_len as f64 * 2.0 / n; // arcs per vertex
            let bound = d / (alpha * eps)
                + k * 2.0 / alpha
                + k * (4.0 / (alpha * alpha) + 4.0 / (alpha * alpha * n * eps));
            println!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{:.3}\t{:.3}\t{:.3e}",
                workload.name,
                batch,
                updates,
                ops[0],
                ops[1],
                ops[2],
                ops[1] as f64 / ops[0].max(1) as f64,
                ops[2] as f64 / ops[0].max(1) as f64,
                bound,
            );
        }
    }
}
