//! Hostile-client corpus against a live server: every case pins the
//! observable behaviour (status code or clean close) and, crucially, that
//! the instance keeps serving everyone else — no case may pin a shard.

use dppr_graph::generators::erdos_renyi;
use dppr_graph::GraphStream;
use dppr_serve::{start, ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering::Relaxed;
use std::time::{Duration, Instant};

fn boot() -> ServerHandle {
    let stream = GraphStream::directed(erdos_renyi(500, 12_000, 33)).permuted(2);
    start(
        stream,
        0.1,
        &[0],
        ServeConfig {
            threads: 2,
            batch: 500,
            epsilon: 1e-3,
            max_slides: 1,
            // Short deadlines so timeout cases resolve in test time.
            read_timeout: Duration::from_millis(400),
            write_timeout: Duration::from_millis(400),
            ..ServeConfig::default()
        },
    )
    .expect("server starts")
}

/// One well-formed request over a fresh connection (the health probe).
fn healthz(addr: SocketAddr) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(conn, "GET /healthz HTTP/1.1\r\nHost: dppr\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let status = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, raw)
}

/// Sends raw bytes, then reads whatever comes back until EOF (the server
/// closes every malformed connection after the 400, or silently on
/// timeout). A hung server fails the 10 s client read timeout instead of
/// hanging the suite.
fn send_raw(addr: SocketAddr, payload: &[u8]) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    conn.write_all(payload).expect("write payload");
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("read until close");
    String::from_utf8_lossy(&raw).into_owned()
}

#[test]
fn malformed_request_corpus() {
    let handle = boot();
    let addr = handle.addr();
    assert_eq!(healthz(addr).0, 200);

    // --- oversized request line: 400, then close -------------------------
    let mut huge = Vec::from(&b"GET /"[..]);
    huge.resize(20 * 1024, b'a'); // no terminator, just an endless target
    let resp = send_raw(addr, &huge);
    assert!(resp.starts_with("HTTP/1.1 400"), "oversized: {resp:?}");
    assert!(resp.contains("size limit"), "{resp}");

    // --- binary garbage (with a head terminator): 400, then close --------
    let resp = send_raw(addr, b"\x00\x01\xfe\xffnot http at all\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400"), "garbage: {resp:?}");

    // --- ASCII garbage that is not a request line: 400 -------------------
    let resp = send_raw(addr, b"EHLO mail.example.com\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400"), "non-http: {resp:?}");

    // --- missing blank line: no response, reaped by the read deadline ----
    let before = handle.conn_counters().read_timeouts.load(Relaxed);
    let resp = send_raw(addr, b"GET /healthz HTTP/1.1\r\nHost: dppr\r\n");
    assert!(resp.is_empty(), "half a head must get no response: {resp:?}");
    assert!(
        handle.conn_counters().read_timeouts.load(Relaxed) > before,
        "incomplete head should be reaped by the read deadline"
    );

    // --- mid-request disconnect: server shrugs ---------------------------
    {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(b"GET /to").unwrap();
    } // dropped mid-request-line
    assert_eq!(healthz(addr).0, 200, "disconnect mid-request hurt the server");

    // --- pipelined requests: answered in order on one connection ---------
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    conn.write_all(
        b"GET /healthz HTTP/1.1\r\nHost: dppr\r\n\r\n\
          GET /sessions HTTP/1.1\r\nHost: dppr\r\n\r\n\
          GET /healthz HTTP/1.1\r\nHost: dppr\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read pipelined responses");
    let ok = raw.match_indices("\"ok\":true").map(|(i, _)| i).collect::<Vec<_>>();
    let sessions = raw.find("\"sessions\":[0]").expect("sessions answer present");
    assert_eq!(ok.len(), 2, "{raw}");
    assert!(ok[0] < sessions && sessions < ok[1], "pipelined answers out of order: {raw}");

    // --- non-reading client: reaped by the WRITE deadline ----------------
    // Pipeline many large responses and never read; the server must give
    // up on the stalled socket instead of pinning a shard on it.
    let before = handle.conn_counters().write_timeouts.load(Relaxed);
    let mut sink = TcpStream::connect(addr).expect("connect");
    sink.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
    let req = b"GET /topk?source=0&k=500 HTTP/1.1\r\nHost: dppr\r\n\r\n";
    let mut jammed = false;
    for _ in 0..2_000 {
        if sink.write_all(req).is_err() {
            jammed = true; // both directions full — even better
            break;
        }
    }
    let _ = jammed;
    let deadline = Instant::now() + Duration::from_secs(15);
    while handle.conn_counters().write_timeouts.load(Relaxed) == before {
        assert!(Instant::now() < deadline, "non-reading client was never reaped");
        // The stalled connection must not block anyone else meanwhile.
        assert_eq!(healthz(addr).0, 200);
        std::thread::sleep(Duration::from_millis(25));
    }
    drop(sink);

    // --- after all of that: healthy, and the books balance ---------------
    assert_eq!(healthz(addr).0, 200);
    let report = handle.join();
    assert!(report.bad_requests >= 3, "{report:?}");
    assert!(report.read_timeouts >= 1, "{report:?}");
    assert!(report.write_timeouts >= 1, "{report:?}");
}
