//! Per-connection state machine for the event-driven front end.
//!
//! A [`Conn`] owns one non-blocking `TcpStream` plus its input and output
//! buffers. The event loop drives it edge by edge:
//!
//! * readable → [`Conn::fill`] pulls whatever bytes the kernel has, then
//!   [`Conn::next_request`] is called repeatedly to pop complete
//!   (possibly pipelined) requests out of the input buffer;
//! * a routed response is appended with [`Conn::enqueue`] (rendered
//!   straight into the output buffer — the "response queue" is the byte
//!   buffer itself, bounded by [`MAX_PIPELINED_BYTES`]);
//! * writable → [`Conn::flush`] pushes the output buffer out without
//!   blocking, tracking progress for the write-side deadline.
//!
//! Deadlines are the bug-fix half of this module: the old blocking front
//! end had only a read timeout, so a client that sent a request and never
//! read the response pinned a worker thread forever. Here both sides are
//! covered — [`Conn::deadline`] exposes the next instant at which the
//! connection must have made progress, and [`Conn::expired`] says whether
//! it blew it (the loop then drops the connection).

use crate::http::{self, Parsed, Request, Response, MAX_REQUEST_BYTES};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Cap on rendered-but-unflushed response bytes. While the output buffer
/// sits above this, the loop stops parsing further pipelined requests from
/// the connection (they stay buffered) — a client cannot turn a deep
/// pipeline into unbounded server memory.
pub const MAX_PIPELINED_BYTES: usize = 256 * 1024;

/// Why a connection was (or must be) torn down; feeds the server stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Close {
    /// Peer closed / protocol finished (`Connection: close` flushed).
    Done,
    /// I/O error on read or write.
    Error,
    /// No complete request arrived within the read deadline.
    ReadTimeout,
    /// The peer stopped draining our writes past the write deadline.
    WriteTimeout,
}

/// What the event loop should do with the connection after an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Keep polling.
    Continue,
    /// Tear down now.
    Close(Close),
}

/// One live client connection.
pub struct Conn {
    stream: TcpStream,
    in_buf: Vec<u8>,
    out_buf: Vec<u8>,
    /// Bytes of `out_buf` already written to the socket.
    out_pos: usize,
    /// Set once a `Connection: close` response (or a fatal protocol error
    /// response) is enqueued: flush what is queued, then close. No further
    /// requests are parsed.
    close_after_flush: bool,
    /// Peer sent EOF; serve what is already buffered, then close.
    peer_closed: bool,
    /// Last instant the read side made progress (bytes arrived or a
    /// request completed); the idle/read deadline counts from here.
    last_read: Instant,
    /// Last instant the write side made progress while output was
    /// pending; the write-stall deadline counts from here.
    last_write: Instant,
    /// Requests answered on this connection (keep-alive depth).
    pub served: u64,
    /// Set by the event loop when this connection hit its per-tick
    /// request budget with input possibly still buffered: the shard must
    /// come back next iteration without waiting for socket readiness
    /// (buffered-but-unparsed requests produce no poll edge).
    pub deferred: bool,
}

impl Conn {
    /// Adopts an accepted stream: non-blocking, Nagle off (responses are
    /// single writes; delaying them only hurts latency).
    pub fn new(stream: TcpStream, now: Instant) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            in_buf: Vec::new(),
            out_buf: Vec::new(),
            out_pos: 0,
            close_after_flush: false,
            peer_closed: false,
            last_read: now,
            last_write: now,
            served: 0,
            deferred: false,
        })
    }

    /// The underlying socket (for poll registration).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Whether response bytes are waiting to be flushed.
    pub fn has_pending_output(&self) -> bool {
        self.out_pos < self.out_buf.len()
    }

    /// Whether the loop should keep parsing requests out of the input
    /// buffer (stops while closing or while the pipeline cap is hit).
    pub fn wants_requests(&self) -> bool {
        !self.close_after_flush && self.out_buf.len() - self.out_pos < MAX_PIPELINED_BYTES
    }

    /// Poll interest for the current state: readable unless the
    /// connection is draining towards close, writable while output is
    /// pending.
    pub fn interest(&self) -> u8 {
        let mut i = 0;
        if !self.close_after_flush && !self.peer_closed {
            i |= minipoll::READABLE;
        }
        if self.has_pending_output() {
            i |= minipoll::WRITABLE;
        }
        i
    }

    /// Reads whatever the kernel has buffered. Returns `Continue` on
    /// `WouldBlock`; flags EOF so the loop can drain remaining requests
    /// and close.
    pub fn fill(&mut self, now: Instant) -> Step {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    return if self.in_buf.is_empty() && !self.has_pending_output() {
                        Step::Close(Close::Done)
                    } else {
                        Step::Continue
                    };
                }
                Ok(n) => {
                    self.last_read = now;
                    self.in_buf.extend_from_slice(&chunk[..n]);
                    // Oversized head: answered by next_request with a 400.
                    if self.in_buf.len() > MAX_REQUEST_BYTES {
                        return Step::Continue;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Step::Continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Step::Close(Close::Error),
            }
        }
    }

    /// Pops the next complete request off the input buffer.
    ///
    /// * `Ok(Some((req, keep_alive)))` — route it; `keep_alive` is what
    ///   the response's `Connection` header must say.
    /// * `Ok(None)` — nothing complete buffered (or parsing is paused).
    /// * `Err(msg)` — protocol violation; the caller should enqueue a 400
    ///   via [`Conn::enqueue`] with `keep_alive = false` and stop reading.
    pub fn next_request(&mut self, now: Instant) -> Result<Option<(Request, bool)>, String> {
        if !self.wants_requests() {
            return Ok(None);
        }
        match http::try_parse(&self.in_buf) {
            Ok(Parsed::Complete { req, consumed, keep_alive }) => {
                self.in_buf.drain(..consumed);
                self.last_read = now;
                self.served += 1;
                Ok(Some((req, keep_alive)))
            }
            Ok(Parsed::Partial) => {
                if self.in_buf.len() > MAX_REQUEST_BYTES {
                    Err("request head exceeds the size limit".to_string())
                } else {
                    Ok(None)
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Renders `resp` onto the output buffer. With `keep_alive = false`
    /// the connection drains and closes; no further requests are parsed.
    pub fn enqueue(&mut self, resp: &Response, keep_alive: bool) {
        http::render_response(&mut self.out_buf, resp, keep_alive);
        if !keep_alive {
            self.close_after_flush = true;
        }
    }

    /// Writes as much pending output as the socket accepts. Returns
    /// `Close(Done)` once a draining connection has fully flushed.
    pub fn flush(&mut self, now: Instant) -> Step {
        while self.has_pending_output() {
            match self.stream.write(&self.out_buf[self.out_pos..]) {
                Ok(0) => return Step::Close(Close::Error),
                Ok(n) => {
                    self.out_pos += n;
                    self.last_write = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Step::Continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Step::Close(Close::Error),
            }
        }
        // Fully flushed: reclaim the buffer instead of growing forever.
        self.out_buf.clear();
        self.out_pos = 0;
        if self.close_after_flush || (self.peer_closed && self.in_buf.is_empty()) {
            Step::Close(Close::Done)
        } else {
            Step::Continue
        }
    }

    /// The instant at which this connection, unchanged, must be reaped:
    /// write-stall deadline while output is pending, idle/read deadline
    /// otherwise. Drives the poll timeout.
    pub fn deadline(&self, read_timeout: Duration, write_timeout: Duration) -> Instant {
        if self.has_pending_output() {
            self.last_write + write_timeout
        } else {
            self.last_read + read_timeout
        }
    }

    /// Whether the deadline has passed, and which side blew it.
    pub fn expired(
        &self,
        now: Instant,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Option<Close> {
        if now < self.deadline(read_timeout, write_timeout) {
            return None;
        }
        Some(if self.has_pending_output() {
            Close::WriteTimeout
        } else {
            Close::ReadTimeout
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// A loopback pair: (server-side Conn, client stream).
    fn pair() -> (Conn, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (Conn::new(server, Instant::now()).unwrap(), client)
    }

    fn wait_readable(conn: &Conn) {
        use std::os::fd::AsRawFd;
        let mut fds = [minipoll::PollFd::new(
            conn.stream().as_raw_fd(),
            minipoll::READABLE,
        )];
        minipoll::poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
    }

    #[test]
    fn parses_requests_across_segments_and_pipelines() {
        let (mut conn, mut client) = pair();
        let now = Instant::now();
        client.write_all(b"GET /a HTTP/1.1\r\n").unwrap();
        wait_readable(&conn);
        assert_eq!(conn.fill(now), Step::Continue);
        assert!(conn.next_request(now).unwrap().is_none(), "head incomplete");
        client
            .write_all(b"\r\nGET /b?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        wait_readable(&conn);
        assert_eq!(conn.fill(now), Step::Continue);
        let (r1, ka1) = conn.next_request(now).unwrap().unwrap();
        assert_eq!((r1.path.as_str(), ka1), ("/a", true));
        let (r2, ka2) = conn.next_request(now).unwrap().unwrap();
        assert_eq!((r2.path.as_str(), ka2), ("/b", false));
        assert!(conn.next_request(now).unwrap().is_none());
        assert_eq!(conn.served, 2);
    }

    #[test]
    fn close_after_flush_and_buffer_reset() {
        let (mut conn, mut client) = pair();
        let now = Instant::now();
        conn.enqueue(&Response::new(200, "{}"), true);
        assert!(conn.has_pending_output());
        assert_eq!(conn.flush(now), Step::Continue, "keep-alive stays open");
        assert!(!conn.has_pending_output());
        conn.enqueue(&Response::new(200, "{}"), false);
        assert_eq!(conn.flush(now), Step::Close(Close::Done));
        drop(conn); // the loop drops a Close(..) connection; EOF for the client
        let mut raw = Vec::new();
        client.read_to_end(&mut raw).unwrap();
        let s = String::from_utf8(raw).unwrap();
        assert!(s.contains("Connection: keep-alive"), "{s}");
        assert!(s.contains("Connection: close"), "{s}");
    }

    #[test]
    fn oversized_head_is_a_protocol_error() {
        let (mut conn, mut client) = pair();
        let now = Instant::now();
        // A newline-free stream larger than the cap.
        let junk = vec![b'a'; MAX_REQUEST_BYTES + 1024];
        client.write_all(&junk).unwrap();
        loop {
            wait_readable(&conn);
            assert_eq!(conn.fill(now), Step::Continue);
            if conn.in_buf.len() > MAX_REQUEST_BYTES {
                break;
            }
        }
        assert!(conn.next_request(now).is_err());
    }

    #[test]
    fn deadlines_split_read_and_write_sides() {
        let (mut conn, _client) = pair();
        let now = Instant::now();
        let rt = Duration::from_millis(50);
        let wt = Duration::from_millis(80);
        assert!(conn.expired(now, rt, wt).is_none());
        assert_eq!(conn.expired(now + rt, rt, wt), Some(Close::ReadTimeout));
        conn.enqueue(&Response::new(200, "{}"), true);
        // With pending output the *write* deadline governs.
        assert!(conn.expired(now + rt, rt, wt).is_none());
        assert_eq!(conn.expired(now + wt, rt, wt), Some(Close::WriteTimeout));
    }

    #[test]
    fn eof_with_clean_buffers_closes() {
        let (mut conn, client) = pair();
        drop(client);
        wait_readable(&conn);
        assert_eq!(conn.fill(Instant::now()), Step::Close(Close::Done));
    }
}
