use dppr_cli::args::Args;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match dppr_cli::dispatch(&parsed) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
